"""Telemetry report CLI: ``python -m repro.obs report capture.jsonl``.

Renders per-rank timelines, access breakdowns and top-N virtual-time
contributors from a JSONL capture written by :class:`repro.obs.JSONLSink`.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="render a report from a JSONL capture")
    rep.add_argument("capture", help="path to the JSONL capture file")
    rep.add_argument(
        "--top", type=int, default=10, help="rows in the cost-contributor table"
    )
    rep.add_argument(
        "--rank", type=int, default=None, help="restrict to one rank's events"
    )
    rep.add_argument(
        "--breakdown",
        action="store_true",
        help="print only the per-rank access breakdown (machine-friendly)",
    )

    args = parser.parse_args(argv)

    # Lazy import: repro.obs.report pulls in repro.core (see its docstring).
    from repro.obs import report

    try:
        events = report.load_events(args.capture)
    except OSError as exc:
        print(f"cannot read capture: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(f"malformed capture {args.capture}: {exc}", file=sys.stderr)
        return 2
    if args.rank is not None:
        events = [e for e in events if e.rank == args.rank]

    if args.breakdown:
        for r in report.ranks_of(events):
            bd = report.access_breakdown(events, rank=r)
            if not any(bd.values()):
                continue
            cells = " ".join(f"{k}={v:.6f}" for k, v in bd.items())
            print(f"rank {r}: {cells}")
        return 0

    print(report.render_report(events, top=args.top), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
