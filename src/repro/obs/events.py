"""Typed telemetry events.

Every event is stamped with the emitting rank, the rank's *virtual* time
(seconds on the simulated clock — never wall time) and the window epoch
counter at emission, matching the measurement axes of the paper's
evaluation (per-get classification, Fig. 13/16/18; virtual-time latency,
Fig. 1/7; adaptation timeline, Fig. 9).

Two shapes share one class:

* **counter events** — a point occurrence (``duration == 0``), e.g. one
  classified cached get (``cache.access``);
* **span events** — an occurrence with a virtual-time extent
  (``duration > 0``), e.g. one network transfer (``net.transfer``).

Events are immutable and JSON-serialisable (``to_json``/``from_json``),
which is what the JSONL sink and the ``python -m repro.obs report`` CLI
build on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

# ---------------------------------------------------------------------------
# Event kinds.  Dotted names group by emitting layer.
# ---------------------------------------------------------------------------
RMA_GET = "rma.get"                  #: a one-sided get was posted
RMA_GET_BATCH = "rma.get_batch"      #: a batch of gets issued in one pass
RMA_PUT = "rma.put"                  #: a one-sided put was posted
RMA_ACCUMULATE = "rma.accumulate"    #: an accumulate was applied
RMA_FLUSH = "rma.flush"              #: flush/flush_all completed operations
RMA_FENCE = "rma.fence"              #: an active-target fence completed
RMA_LOCK = "rma.lock"                #: a passive-target epoch opened
RMA_UNLOCK = "rma.unlock"            #: a passive-target epoch closed
NET_TRANSFER = "net.transfer"        #: the network model charged a transfer
SCHED_SWITCH = "sched.switch"        #: the scheduler dispatched another rank
CACHE_ACCESS = "cache.access"        #: one classified get_c (hit/miss/...)
CACHE_ACCESS_BATCH = "cache.access_batch"  #: one accounting pass for a get_batch
CACHE_EVICT = "cache.evict"          #: a cache entry was evicted
CACHE_ADMIT = "cache.admit"          #: the admission policy ruled on a miss
CACHE_INVALIDATE = "cache.invalidate"  #: the cache content was dropped
CACHE_ADAPT = "cache.adapt"          #: the adaptive controller resized C_w
CACHE_EPOCH = "cache.epoch"          #: per-epoch-closure stats sample
CACHE_DEGRADED = "cache.degraded"    #: the cache quarantined / re-enabled itself
TRACE_GET = "trace.get"              #: a TracingWindow recorded a get
FAULT_INJECTED = "fault.injected"    #: the fault injector fired at a site
FAULT_RETRY = "fault.retry"          #: a faulted RMA op was retried (backoff)
ANALYSIS_VIOLATION = "analysis.violation"  #: the RMA sanitizer found a hazard
RANK_CRASHED = "rank.crashed"        #: a rank died permanently (crash-stop)
WINDOW_REVOKED = "window.revoked"    #: a window was revoked after a failure
CACHE_RECOVERED = "cache.recovered"  #: the cache recovered a dead rank's entries

ALL_KINDS = frozenset(
    {
        ANALYSIS_VIOLATION,
        RMA_GET,
        RMA_GET_BATCH,
        RMA_PUT,
        RMA_ACCUMULATE,
        RMA_FLUSH,
        RMA_FENCE,
        RMA_LOCK,
        RMA_UNLOCK,
        NET_TRANSFER,
        SCHED_SWITCH,
        CACHE_ACCESS,
        CACHE_ACCESS_BATCH,
        CACHE_EVICT,
        CACHE_ADMIT,
        CACHE_INVALIDATE,
        CACHE_ADAPT,
        CACHE_EPOCH,
        CACHE_DEGRADED,
        TRACE_GET,
        FAULT_INJECTED,
        FAULT_RETRY,
        RANK_CRASHED,
        WINDOW_REVOKED,
        CACHE_RECOVERED,
    }
)


@dataclass(frozen=True)
class Event:
    """One telemetry event, stamped ``(rank, virtual time, epoch)``.

    ``win`` identifies the originating window (``Window.win_id``) when the
    event is window-scoped, else ``None``.  ``attrs`` carries kind-specific
    payload (target rank, byte counts, access classification, ...).
    """

    kind: str
    rank: int
    time: float                      #: virtual seconds of the emitting rank
    epoch: int = 0                   #: window epoch counter (w.eph)
    win: int | None = None
    duration: float = 0.0            #: virtual extent; 0 for counter events
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        return self.duration > 0.0

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "kind": self.kind,
            "rank": self.rank,
            "time": self.time,
            "epoch": self.epoch,
        }
        if self.win is not None:
            d["win"] = self.win
        if self.duration:
            d["duration"] = self.duration
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Event":
        return cls(
            kind=d["kind"],
            rank=int(d["rank"]),
            time=float(d["time"]),
            epoch=int(d.get("epoch", 0)),
            win=d.get("win"),
            duration=float(d.get("duration", 0.0)),
            attrs=dict(d.get("attrs", {})),
        )

    @classmethod
    def from_json(cls, line: str) -> "Event":
        return cls.from_dict(json.loads(line))
