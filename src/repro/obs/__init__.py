"""``repro.obs`` — the structured telemetry subsystem.

One pipeline for every measurement in the reproduction: the MPI window
layer, the CLaMPI caching engine, the network cost model and the
deterministic scheduler all publish typed events — stamped with
``(rank, virtual_time, epoch)`` — to an :class:`EventBus`; pluggable sinks
(ring buffer, JSONL file, null) consume them, and the
``python -m repro.obs report`` CLI renders per-rank timelines, access
breakdowns and top-N cost contributors from a JSONL capture.

Typical capture::

    from repro import obs
    from repro.mpi import SimMPI

    with obs.capture(obs.JSONLSink("capture.jsonl")):
        SimMPI(nprocs=4).run(program)

    # later: python -m repro.obs report capture.jsonl

When nothing is attached (or only a :class:`NullSink`), the global bus
stays disabled and instrumented hot paths pay a single boolean check —
cache decisions and virtual-time results are bit-identical either way,
which the test suite asserts.

Layering note: this package imports nothing from the rest of ``repro``
(the report module, which needs :class:`repro.core.stats.AccessType`,
is imported lazily by the CLI) so every layer may instrument itself
without import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.bus import EventBus
from repro.obs.events import (
    ALL_KINDS,
    ANALYSIS_VIOLATION,
    CACHE_ACCESS,
    CACHE_ACCESS_BATCH,
    CACHE_ADAPT,
    CACHE_ADMIT,
    CACHE_DEGRADED,
    CACHE_EPOCH,
    CACHE_EVICT,
    CACHE_INVALIDATE,
    CACHE_RECOVERED,
    FAULT_INJECTED,
    FAULT_RETRY,
    NET_TRANSFER,
    RANK_CRASHED,
    RMA_ACCUMULATE,
    RMA_FENCE,
    RMA_FLUSH,
    RMA_GET,
    RMA_GET_BATCH,
    RMA_LOCK,
    RMA_PUT,
    RMA_UNLOCK,
    SCHED_SWITCH,
    TRACE_GET,
    WINDOW_REVOKED,
    Event,
)
from repro.obs.sinks import CallbackSink, JSONLSink, NullSink, RingBufferSink, Sink

__all__ = [
    "ALL_KINDS",
    "ANALYSIS_VIOLATION",
    "CACHE_ACCESS",
    "CACHE_ACCESS_BATCH",
    "CACHE_ADAPT",
    "CACHE_ADMIT",
    "CACHE_DEGRADED",
    "CACHE_EPOCH",
    "CACHE_EVICT",
    "CACHE_INVALIDATE",
    "CACHE_RECOVERED",
    "CallbackSink",
    "Event",
    "EventBus",
    "FAULT_INJECTED",
    "FAULT_RETRY",
    "JSONLSink",
    "NET_TRANSFER",
    "NullSink",
    "RANK_CRASHED",
    "RMA_ACCUMULATE",
    "RMA_FENCE",
    "RMA_FLUSH",
    "RMA_GET",
    "RMA_GET_BATCH",
    "RMA_LOCK",
    "RMA_PUT",
    "RMA_UNLOCK",
    "RingBufferSink",
    "SCHED_SWITCH",
    "Sink",
    "TRACE_GET",
    "WINDOW_REVOKED",
    "capture",
    "get_bus",
    "virtual_time",
]

#: The process-global bus all instrumented layers publish to by default.
_GLOBAL_BUS = EventBus()


def get_bus() -> EventBus:
    """The process-global :class:`EventBus` singleton."""
    return _GLOBAL_BUS


@contextmanager
def capture(
    sink: Sink | None = None, bus: EventBus | None = None
) -> Iterator[Sink]:
    """Attach ``sink`` (default: a fresh ring buffer) for the duration.

    Yields the sink; detaches and closes it on exit, so a JSONL capture is
    flushed and complete as soon as the ``with`` block ends.
    """
    b = bus if bus is not None else _GLOBAL_BUS
    s = sink if sink is not None else RingBufferSink()
    b.attach(s)
    try:
        yield s
    finally:
        b.detach(s)
        s.close()


class VirtualTimeLedger:
    """Accumulates the virtual makespan of completed simulated runs.

    :class:`repro.runtime.SimWorld` notes every successful run here, giving
    wall-clock-independent "how much simulated time did this figure cover"
    accounting (used by ``python -m repro.bench``).
    """

    def __init__(self) -> None:
        self.total = 0.0   #: sum of run makespans (virtual seconds)
        self.last = 0.0    #: makespan of the most recent run
        self.runs = 0      #: number of completed runs

    def note_run(self, makespan: float) -> None:
        self.last = makespan
        self.total += makespan
        self.runs += 1


#: Process-global virtual-time ledger (always on; one float add per run).
virtual_time = VirtualTimeLedger()
