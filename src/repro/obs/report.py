"""Offline analysis of JSONL telemetry captures.

Loads the event stream written by :class:`repro.obs.JSONLSink` and
reconstructs the paper's measurement views without re-running anything:

* :func:`access_breakdown` — the Fig. 13/16/18 normalised per-get
  classification, computed with *identical arithmetic* to
  :meth:`repro.core.stats.CacheStats.breakdown` (integer count divided by
  integer total), so a capture-derived breakdown matches the live one
  exactly;
* :func:`per_rank_timeline` — the ``(epoch, gets, hits)`` samples of every
  rank (Fig. 9-style adaptation/warm-up timelines);
* :func:`top_contributors` — span events aggregated by kind (and transfer
  distance / peer), ranked by total virtual time;
* :func:`render_report` — the human-readable report the
  ``python -m repro.obs report`` CLI prints.

This module intentionally lives outside ``repro.obs.__init__``'s import
surface: it imports :class:`repro.core.stats.AccessType` (for the stable
breakdown key set) while ``repro.core`` instruments itself through
``repro.obs`` — keeping the CLI import lazy avoids the cycle.
"""

from __future__ import annotations

import io
from collections import defaultdict
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.stats import AccessType
from repro.obs.events import (
    CACHE_ACCESS,
    CACHE_EPOCH,
    NET_TRANSFER,
    SCHED_SWITCH,
    Event,
)
from repro.util import format_bytes, format_time


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------
def iter_events(fh: io.TextIOBase) -> Iterator[Event]:
    """Yield events from an open JSONL stream, skipping blank lines."""
    for line in fh:
        line = line.strip()
        if line:
            yield Event.from_json(line)


def load_events(path: str | Path) -> list[Event]:
    """Read a whole JSONL capture into memory."""
    with open(path, encoding="utf-8") as fh:
        return list(iter_events(fh))


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------
def ranks_of(events: Iterable[Event]) -> list[int]:
    return sorted({e.rank for e in events})


def access_counts(
    events: Iterable[Event], rank: int | None = None, win: int | None = None
) -> dict[str, int]:
    """Raw per-classification counts of ``cache.access`` events."""
    counts = {a.value: 0 for a in AccessType}
    for e in events:
        if e.kind != CACHE_ACCESS:
            continue
        if rank is not None and e.rank != rank:
            continue
        if win is not None and e.win != win:
            continue
        access = e.attrs["access"]
        if access in counts:
            counts[access] += 1
    return counts


def access_breakdown(
    events: Iterable[Event], rank: int | None = None, win: int | None = None
) -> dict[str, float]:
    """Normalised access breakdown, keyed exactly like ``AccessType``.

    Uses the same integer-count / integer-total division as
    :meth:`repro.core.stats.CacheStats.breakdown`, so for a capture that
    saw every get of a window the two dictionaries compare equal.
    """
    counts = access_counts(events, rank=rank, win=win)
    gets = sum(counts.values())
    return {k: (v / gets if gets else 0.0) for k, v in counts.items()}


def per_rank_timeline(
    events: Iterable[Event], win: int | None = None
) -> dict[int, list[tuple[int, int, int]]]:
    """``rank -> [(epoch, cumulative gets, cumulative hits), ...]``."""
    out: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
    for e in events:
        if e.kind != CACHE_EPOCH:
            continue
        if win is not None and e.win != win:
            continue
        out[e.rank].append(
            (int(e.attrs["eph"]), int(e.attrs["gets"]), int(e.attrs["hits"]))
        )
    return dict(out)


def _contributor_label(e: Event) -> str:
    if "distance" in e.attrs:
        return f"{e.kind}[{e.attrs['distance']}]"
    return e.kind


def top_contributors(
    events: Iterable[Event], n: int = 10
) -> list[tuple[str, float, int]]:
    """Span events grouped by label: ``(label, total duration, count)``.

    Sorted by total virtual time, descending; at most ``n`` rows.
    """
    totals: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for e in events:
        if not e.is_span:
            continue
        label = _contributor_label(e)
        totals[label] += e.duration
        counts[label] += 1
    rows = [(label, totals[label], counts[label]) for label in totals]
    rows.sort(key=lambda r: (-r[1], r[0]))
    return rows[:n]


def summarize(events: list[Event]) -> dict[int, dict[str, float]]:
    """Per-rank event count, virtual-time extent and bytes moved."""
    out: dict[int, dict[str, float]] = {}
    for r in ranks_of(events):
        mine = [e for e in events if e.rank == r]
        times = [e.time for e in mine]
        nbytes = sum(
            int(e.attrs.get("nbytes", 0))
            for e in mine
            if e.kind == CACHE_ACCESS or e.kind == NET_TRANSFER
        )
        out[r] = {
            "events": len(mine),
            "t_first": min(times),
            "t_last": max(times),
            "switches": sum(1 for e in mine if e.kind == SCHED_SWITCH),
            "bytes": nbytes,
        }
    return out


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def _render_timeline_row(samples: list[tuple[int, int, int]], width: int = 40) -> str:
    """A coarse hit-ratio sparkline over the epoch samples."""
    if not samples:
        return "(no epoch samples)"
    shades = " .:-=+*#%@"
    step = max(1, len(samples) // width)
    cells = []
    prev_gets = prev_hits = 0
    for i in range(0, len(samples), step):
        _, gets, hits = samples[min(i + step - 1, len(samples) - 1)]
        dg, dh = gets - prev_gets, hits - prev_hits
        prev_gets, prev_hits = gets, hits
        ratio = dh / dg if dg else 0.0
        cells.append(shades[min(len(shades) - 1, int(ratio * (len(shades) - 1)))])
    return "".join(cells)


def render_report(events: list[Event], top: int = 10) -> str:
    """The full multi-section text report of one capture."""
    lines: list[str] = []
    if not events:
        return "empty capture (no events)\n"

    lines.append(f"capture: {len(events)} events, ranks {ranks_of(events)}")
    lines.append("")

    lines.append("== per-rank summary ==")
    lines.append(
        f"{'rank':>4}  {'events':>8}  {'switches':>8}  {'bytes':>10}  "
        f"{'first':>10}  {'last':>10}"
    )
    for r, s in summarize(events).items():
        lines.append(
            f"{r:>4}  {int(s['events']):>8}  {int(s['switches']):>8}  "
            f"{format_bytes(int(s['bytes'])):>10}  "
            f"{format_time(s['t_first']):>10}  {format_time(s['t_last']):>10}"
        )
    lines.append("")

    if any(e.kind == CACHE_ACCESS for e in events):
        lines.append("== access breakdown (fraction of gets, per rank) ==")
        keys = [a.value for a in AccessType]
        lines.append(f"{'rank':>4}  " + "  ".join(f"{k:>11}" for k in keys))
        for r in ranks_of(events):
            bd = access_breakdown(events, rank=r)
            if not any(bd.values()):
                continue
            lines.append(
                f"{r:>4}  " + "  ".join(f"{bd[k]:>11.4f}" for k in keys)
            )
        lines.append("")

    timelines = per_rank_timeline(events)
    if timelines:
        lines.append("== per-rank timeline (hit-ratio per epoch bucket) ==")
        for r in sorted(timelines):
            samples = timelines[r]
            eph, gets, hits = samples[-1]
            lines.append(
                f"rank {r:>3} |{_render_timeline_row(samples)}| "
                f"epochs={eph} gets={gets} hits={hits}"
            )
        lines.append("")

    contributors = top_contributors(events, n=top)
    if contributors:
        lines.append(f"== top-{top} virtual-time contributors (span events) ==")
        lines.append(f"{'label':<32}  {'total':>10}  {'count':>8}  {'mean':>10}")
        for label, total, count in contributors:
            lines.append(
                f"{label:<32}  {format_time(total):>10}  {count:>8}  "
                f"{format_time(total / count):>10}"
            )
        lines.append("")

    return "\n".join(lines)
