"""Event sinks: where telemetry events go.

A sink implements ``handle(event)`` (and optionally ``close()``).  The
deterministic scheduler serialises rank threads — exactly one rank runs at
any instant — so sinks need no internal locking.

* :class:`NullSink` — swallows everything and, crucially, does **not**
  enable its bus: instrumented call sites check ``bus.enabled`` before even
  constructing an :class:`~repro.obs.events.Event`, so the disabled path
  costs one attribute check per operation.
* :class:`RingBufferSink` — bounded in-memory capture (``deque(maxlen)``),
  the default for tests and interactive use.
* :class:`JSONLSink` — streams one JSON object per line to a file; the
  format the ``python -m repro.obs report`` CLI consumes.
* :class:`CallbackSink` — adapter invoking a callable, optionally filtered
  by event kind (used e.g. to feed ``CachedWindow.timeline``).
"""

from __future__ import annotations

import io
from collections import deque
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.obs.events import Event


class Sink:
    """Base class: receives events; ``close`` releases resources."""

    #: Event kinds this sink consumes; ``None`` means every kind.  The
    #: bus unions these over attached enabling sinks into its per-kind
    #: gate (``bus.wants``), so hot paths skip constructing events no
    #: sink would keep.  ``handle`` may still see other kinds (delivery
    #: is per-bus, not per-sink) and must self-filter if it cares.
    kinds: frozenset[str] | None = None

    #: A passive sink receives whatever events *other* sinks caused to be
    #: constructed but contributes nothing to the bus kind-gate: attaching
    #: it never widens ``bus.wants`` (nor enables a disabled bus).  Used
    #: by piggybacking observers like the scheduler's failure-report
    #: recorder, which must not change hot-path allocation behaviour.
    passive: bool = False

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class NullSink(Sink):
    """Discards events — and keeps the bus *disabled* (zero-cost path)."""

    #: marker consulted by :class:`~repro.obs.bus.EventBus`
    enables_bus = False

    def handle(self, event: Event) -> None:
        pass


class RingBufferSink(Sink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int | None = 65536):
        self._buf: deque[Event] = deque(maxlen=capacity)

    def handle(self, event: Event) -> None:
        self._buf.append(event)

    def events(
        self, kind: str | None = None, rank: int | None = None
    ) -> list[Event]:
        """Captured events, optionally filtered by kind and/or rank."""
        return [
            e
            for e in self._buf
            if (kind is None or e.kind == kind)
            and (rank is None or e.rank == rank)
        ]

    def clear(self) -> None:
        self._buf.clear()

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._buf)


class CallbackSink(Sink):
    """Calls ``fn(event)`` for every event (of the given kinds)."""

    def __init__(
        self,
        fn: Callable[[Event], None],
        kinds: Iterable[str] | None = None,
        passive: bool = False,
    ):
        self._fn = fn
        self._kinds = frozenset(kinds) if kinds is not None else None
        #: advertised to the bus kind-gate: only these kinds need exist
        self.kinds = self._kinds
        self.passive = passive

    def handle(self, event: Event) -> None:
        if self._kinds is None or event.kind in self._kinds:
            self._fn(event)


class JSONLSink(Sink):
    """Writes one JSON object per line to ``path`` (or an open text file)."""

    def __init__(self, path: str | Path | io.TextIOBase):
        if isinstance(path, io.TextIOBase):
            self._fh: io.TextIOBase | None = path
            self._owns = False
        else:
            self._fh = open(path, "w", encoding="utf-8")
            self._owns = True

    def handle(self, event: Event) -> None:
        assert self._fh is not None, "sink already closed"
        self._fh.write(event.to_json())
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is None:
            return
        self._fh.flush()
        if self._owns:
            self._fh.close()
        self._fh = None
