"""The event bus: one measurement pipeline for the whole stack.

Emitting layers (``repro.mpi``, ``repro.core``, ``repro.runtime``,
``repro.trace``) publish :class:`~repro.obs.events.Event` objects to a bus;
sinks attached to the bus consume them.  Buses can be *chained*: a child
bus (e.g. one per :class:`~repro.core.window.CachedWindow`, carrying its
private timeline sink) forwards every event to its parent — normally the
process-global bus returned by :func:`repro.obs.get_bus` — so a single
JSONL capture sees the merged stream of all layers.

The overhead contract: ``bus.enabled`` is ``False`` while no enabling sink
is attached anywhere up the chain, and instrumented hot paths check it
*before constructing the event*.  Attaching only :class:`NullSink` keeps
the bus disabled, which is the near-zero-overhead mode the tests pin down.
"""

from __future__ import annotations

from repro.obs.events import Event
from repro.obs.sinks import Sink


class EventBus:
    """Fan-out of telemetry events to attached sinks (plus a parent bus)."""

    def __init__(self, parent: "EventBus | None" = None):
        self._sinks: list[Sink] = []
        self._parent = parent
        self._local_enabled = False

    # ------------------------------------------------------------------
    @property
    def parent(self) -> "EventBus | None":
        return self._parent

    @property
    def enabled(self) -> bool:
        """True when at least one enabling sink listens here or upstream."""
        return self._local_enabled or (
            self._parent is not None and self._parent.enabled
        )

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    # ------------------------------------------------------------------
    def attach(self, sink: Sink) -> Sink:
        """Register ``sink``; returns it (handy for inline construction)."""
        self._sinks.append(sink)
        self._refresh()
        return sink

    def detach(self, sink: Sink) -> None:
        """Unregister ``sink`` (must be attached)."""
        self._sinks.remove(sink)
        self._refresh()

    def _refresh(self) -> None:
        self._local_enabled = any(
            getattr(s, "enables_bus", True) for s in self._sinks
        )

    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """Deliver ``event`` to local sinks, then forward to the parent."""
        if self._local_enabled:
            for s in self._sinks:
                s.handle(event)
        p = self._parent
        if p is not None and p.enabled:
            p.emit(event)
