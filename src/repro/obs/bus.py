"""The event bus: one measurement pipeline for the whole stack.

Emitting layers (``repro.mpi``, ``repro.core``, ``repro.runtime``,
``repro.trace``) publish :class:`~repro.obs.events.Event` objects to a bus;
sinks attached to the bus consume them.  Buses can be *chained*: a child
bus (e.g. one per :class:`~repro.core.window.CachedWindow`, carrying its
private timeline sink) forwards every event to its parent — normally the
process-global bus returned by :func:`repro.obs.get_bus` — so a single
JSONL capture sees the merged stream of all layers.

The overhead contract is *per kind*: every bus precomputes the set of
event kinds some enabling sink — here or anywhere up the parent chain —
actually consumes, and instrumented hot paths check ``bus.wants(kind)``
*before constructing the event*.  A sink declares its interest through a
``kinds`` attribute (``None`` means "every kind"); attaching only
:class:`NullSink` keeps the bus disabled, and attaching e.g. a timeline
sink with ``kinds=(CACHE_EPOCH,)`` enables *only* that kind — the
per-get ``cache.access`` events are then never constructed at all.

Kind-gates propagate both ways along the chain: each bus tracks its child
buses (weakly — windows create one child bus each) and re-derives the
effective wanted-kind set whenever any bus on the chain attaches or
detaches a sink, so a child never constructs an event only its parent
would drop.
"""

from __future__ import annotations

import weakref

from repro.obs.events import Event
from repro.obs.sinks import Sink

#: Sentinel wanted-set meaning "every kind" (sink without a ``kinds`` attr).
_ALL = None


class EventBus:
    """Fan-out of telemetry events to attached sinks (plus a parent bus)."""

    def __init__(self, parent: "EventBus | None" = None):
        self._sinks: list[Sink] = []
        self._parent = parent
        self._children: "weakref.WeakSet[EventBus]" = weakref.WeakSet()
        self._local_enabled = False
        #: kinds wanted by enabling sinks attached *here* (None = all)
        self._local_kinds: frozenset[str] | None = frozenset()
        #: effective gate: local ∪ parent-effective (the hot-path fields)
        self._wants_all = False
        self._wanted: frozenset[str] = frozenset()
        if parent is not None:
            parent._children.add(self)
            self._recompute()

    # ------------------------------------------------------------------
    @property
    def parent(self) -> "EventBus | None":
        return self._parent

    @property
    def enabled(self) -> bool:
        """True when some enabling sink (here or upstream) wants any kind."""
        return self._wants_all or bool(self._wanted)

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    # ------------------------------------------------------------------
    def wants(self, kind: str) -> bool:
        """True when some attached sink — local or upstream — consumes
        events of ``kind``.  O(1); hot paths call this *before* paying
        for ``Event`` construction."""
        return self._wants_all or kind in self._wanted

    def wanted_kinds(self) -> frozenset[str] | None:
        """Effective wanted-kind set (``None`` = every kind)."""
        return _ALL if self._wants_all else self._wanted

    # ------------------------------------------------------------------
    def attach(self, sink: Sink) -> Sink:
        """Register ``sink``; returns it (handy for inline construction)."""
        self._sinks.append(sink)
        self._refresh()
        return sink

    def detach(self, sink: Sink) -> None:
        """Unregister ``sink`` (must be attached)."""
        self._sinks.remove(sink)
        self._refresh()

    def _refresh(self) -> None:
        """Recompute the local gate from attached sinks, then re-derive
        the effective gate here and in every (transitive) child bus."""
        enabled = False
        kinds: set[str] | None = set()
        for s in self._sinks:
            if not getattr(s, "enables_bus", True):
                continue
            if getattr(s, "passive", False):
                # piggybacking observer: receives what other sinks caused
                # to exist, never widens the gate or enables the bus
                continue
            enabled = True
            sink_kinds = getattr(s, "kinds", _ALL)
            if sink_kinds is _ALL:
                kinds = _ALL
            elif kinds is not None:
                kinds.update(sink_kinds)
        self._local_enabled = enabled
        self._local_kinds = _ALL if kinds is _ALL else frozenset(kinds)
        self._recompute()

    def _recompute(self) -> None:
        """Re-derive ``_wants_all``/``_wanted`` = local ∪ parent-effective
        and push the result down the child chain."""
        p = self._parent
        parent_all = p is not None and p._wants_all
        if self._local_kinds is _ALL or parent_all:
            self._wants_all = True
            self._wanted = frozenset()
        else:
            self._wants_all = False
            wanted = self._local_kinds
            if p is not None and p._wanted:
                wanted = wanted | p._wanted
            self._wanted = wanted
        for child in self._children:
            child._recompute()

    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """Deliver ``event`` to local sinks, then forward to the parent."""
        if self._local_enabled:
            for s in self._sinks:
                s.handle(event)
        p = self._parent
        if p is not None and p.enabled:
            p.emit(event)
