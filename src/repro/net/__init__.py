"""Interconnect and memory performance models.

This package replaces the Cray Aries / Dragonfly testbed of the paper with a
parametric virtual-time model:

* :class:`~repro.net.topology.Topology` places ranks on nodes, chassis and
  groups (Dragonfly-like hierarchy) and classifies rank pairs into
  :class:`~repro.net.topology.Distance` classes.
* :class:`~repro.net.model.NetworkModel` charges
  ``latency(distance) + nbytes / bandwidth(distance)`` for an RMA transfer —
  the alpha-beta (LogGP-inspired) cost family behind the Fig. 1 curves.
* :class:`~repro.net.model.MemoryModel` charges local DRAM copies and is the
  source of the cache-hit cost (lookup + memcpy) in Fig. 7.

Default constants are calibrated against the paper's reported ratios, not
absolute Piz Daint numbers; see ``DEFAULT_*`` in :mod:`repro.net.model`.
"""

from repro.net.model import MemoryModel, NetworkModel, PerfModel
from repro.net.topology import Distance, Topology

__all__ = ["Distance", "MemoryModel", "NetworkModel", "PerfModel", "Topology"]
