"""Alpha-beta performance models for network transfers and local memory.

Calibration
-----------
The defaults reproduce the *ratios* reported in the paper rather than
absolute Piz Daint timings:

* Fig. 1: latency hierarchy spanning ~100 ns (local DRAM) to 2-3 us
  (remote-group get) for small messages.
* Fig. 7: a cache *hit* (lookup + local memcpy) is ~9.3x faster than a foMPI
  get at 4 KiB and ~3.7x at 16 KiB.  With ``REMOTE_GROUP`` alpha = 2.0 us,
  network bandwidth = 10 GiB/s, memcpy bandwidth = 20 GiB/s and a 120 ns
  lookup these ratios fall out naturally:

  ====  ==========  ==============  =====
  size  get (foMPI)  hit (CLaMPI)    ratio
  ====  ==========  ==============  =====
  4Ki   2.38 us      0.28 us         ~8.5x
  16Ki  3.53 us      0.88 us         ~4.0x
  ====  ==========  ==============  =====
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.topology import Distance, Topology

#: Default per-distance base latency in seconds (alpha term).
DEFAULT_LATENCY: dict[Distance, float] = {
    Distance.SELF: 90e-9,
    Distance.SAME_NODE: 350e-9,
    Distance.SAME_CHASSIS: 1.4e-6,
    Distance.SAME_GROUP: 1.7e-6,
    Distance.REMOTE_GROUP: 2.0e-6,
}

#: Default per-distance bandwidth in bytes/second (1/beta term).
DEFAULT_BANDWIDTH: dict[Distance, float] = {
    Distance.SELF: 20e9,
    Distance.SAME_NODE: 14e9,
    Distance.SAME_CHASSIS: 10.5e9,
    Distance.SAME_GROUP: 10e9,
    Distance.REMOTE_GROUP: 10e9,
}


@dataclass(frozen=True)
class NetworkModel:
    """Charges ``alpha(distance) + nbytes / beta(distance)`` per transfer."""

    latency: dict[Distance, float] = field(
        default_factory=lambda: dict(DEFAULT_LATENCY)
    )
    bandwidth: dict[Distance, float] = field(
        default_factory=lambda: dict(DEFAULT_BANDWIDTH)
    )

    def _params(self, distance: Distance) -> tuple[float, float]:
        """The (alpha, beta) pair for one distance, validated.

        A custom model with a missing class or a zero/negative bandwidth
        would otherwise surface as a bare ``KeyError`` or a division by
        zero (or, worse, a negative time) deep inside a run.
        """
        try:
            alpha = self.latency[distance]
            bw = self.bandwidth[distance]
        except KeyError:
            raise ValueError(
                f"network model has no parameters for {distance!r}; "
                f"latency covers {sorted(d.name for d in self.latency)}, "
                f"bandwidth covers {sorted(d.name for d in self.bandwidth)}"
            ) from None
        if bw <= 0:
            raise ValueError(
                f"bandwidth for {distance!r} must be > 0, got {bw}"
            )
        return alpha, bw

    def transfer_time(self, distance: Distance, nbytes: int) -> float:
        """Time for a one-sided transfer of ``nbytes`` over ``distance``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        alpha, bw = self._params(distance)
        return alpha + nbytes / bw

    def injection_time(self, distance: Distance, nbytes: int) -> float:
        """CPU-side time to *issue* a non-blocking transfer.

        RDMA gets are posted by the initiator NIC; the initiating CPU only
        pays descriptor injection, which is what enables the overlap study of
        Fig. 8.  We model it as a small fraction of the base latency.
        """
        del nbytes
        alpha, _bw = self._params(distance)
        return 0.15 * alpha


@dataclass(frozen=True)
class MemoryModel:
    """Local memory-system costs: DRAM copies and cache management steps.

    Copies out of the contiguous cache storage benefit from hardware
    prefetching (paper Sec. III-C2); small copies additionally stay within
    the CPU caches.  We model this with two bandwidth regimes around
    ``hot_threshold``.
    """

    dram_latency: float = 60e-9          #: latency of touching DRAM once
    copy_bandwidth_hot: float = 25e9     #: memcpy bw for cache-resident sizes
    copy_bandwidth_cold: float = 18e9    #: memcpy bw past the CPU caches
    hot_threshold: int = 8 * 1024        #: bytes below which copies stay hot
    lookup_time: float = 100e-9          #: full cuckoo lookup (p probes)
    probe_time: float = 18e-9            #: single hash-table probe
    avl_step_time: float = 22e-9         #: one AVL search/rebalance step
    eviction_visit_time: float = 25e-9   #: scoring one sampled victim
    descriptor_update_time: float = 15e-9  #: linked-list/d_c bookkeeping

    def copy_time(self, nbytes: int) -> float:
        """Time to memcpy ``nbytes`` within local DRAM."""
        if nbytes < 0:
            raise ValueError(f"negative copy size: {nbytes}")
        if nbytes == 0:
            return 0.0
        bw = (
            self.copy_bandwidth_hot
            if nbytes <= self.hot_threshold
            else self.copy_bandwidth_cold
        )
        if bw <= 0:
            regime = "hot" if nbytes <= self.hot_threshold else "cold"
            raise ValueError(
                f"copy_bandwidth_{regime} must be > 0, got {bw}"
            )
        return self.dram_latency + nbytes / bw


@dataclass(frozen=True)
class PerfModel:
    """Bundle of topology + network + memory models for one simulated job."""

    topology: Topology
    network: NetworkModel = field(default_factory=NetworkModel)
    memory: MemoryModel = field(default_factory=MemoryModel)

    @classmethod
    def default(cls, nprocs: int, ranks_per_node: int = 1) -> "PerfModel":
        return cls(topology=Topology(nprocs=nprocs, ranks_per_node=ranks_per_node))

    @classmethod
    def spread(cls, nprocs: int) -> "PerfModel":
        """Every rank in its own group: all pairs at REMOTE_GROUP distance.

        This is the placement of the paper's micro-benchmarks ("two
        processes mapped on different physical nodes") and the conservative
        choice for application runs, where job schedulers rarely provide
        compact allocations.
        """
        return cls(
            topology=Topology(
                nprocs=nprocs,
                ranks_per_node=1,
                nodes_per_chassis=1,
                chassis_per_group=1,
            )
        )

    def get_time(self, src: int, dst: int, nbytes: int) -> float:
        """End-to-end blocking get latency between two ranks."""
        return self.network.transfer_time(self.topology.distance(src, dst), nbytes)

    def issue_time(self, src: int, dst: int, nbytes: int) -> float:
        """Initiator CPU time to post a non-blocking get."""
        return self.network.injection_time(self.topology.distance(src, dst), nbytes)

    def link(self, src: int, dst: int) -> tuple[Distance, float, float, float]:
        """``(distance, issue, alpha, bandwidth)`` for one rank pair.

        Everything here is a pure function of the pair, so per-op hot
        paths may compute it once per target and reuse it: ``issue`` is
        exactly :meth:`issue_time` and ``alpha + nbytes / bandwidth`` is
        exactly :meth:`get_time` for any size.
        """
        dist = self.topology.distance(src, dst)
        alpha, bw = self.network._params(dist)
        return dist, self.network.injection_time(dist, 0), alpha, bw
