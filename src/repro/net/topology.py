"""Dragonfly-like placement and distance classification.

The paper's Fig. 1 shows get latency for several initiator/target mappings on
a Cray Cascade (Dragonfly) machine: two ranks on the same node, on different
nodes of the same chassis, of the same group, and in different groups.  We
model exactly that hierarchy: ranks are packed onto nodes, nodes into
chassis, chassis into groups, and a rank pair maps to a
:class:`Distance` class.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class Distance(IntEnum):
    """Distance class between two ranks, ordered by increasing latency."""

    SELF = 0          #: same rank (pure local memory access)
    SAME_NODE = 1     #: different ranks sharing a node (shared memory)
    SAME_CHASSIS = 2  #: different nodes, same chassis (1 router hop)
    SAME_GROUP = 3    #: different chassis, same group (intra-group links)
    REMOTE_GROUP = 4  #: different groups (global optical links)


@dataclass(frozen=True)
class Topology:
    """Hierarchical rank placement.

    Parameters
    ----------
    nprocs:
        Total number of ranks.
    ranks_per_node:
        Ranks packed per node ("we map one MPI rank per node" in the paper's
        default, so 1).
    nodes_per_chassis, chassis_per_group:
        Dragonfly geometry (Cray XC: 16 blades x 4 nodes per chassis, 6
        chassis per group; we default to round numbers).
    """

    nprocs: int
    ranks_per_node: int = 1
    nodes_per_chassis: int = 16
    chassis_per_group: int = 6

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        for name in ("ranks_per_node", "nodes_per_chassis", "chassis_per_group"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    # -- placement -----------------------------------------------------
    def node_of(self, rank: int) -> int:
        self._check(rank)
        return rank // self.ranks_per_node

    def chassis_of(self, rank: int) -> int:
        return self.node_of(rank) // self.nodes_per_chassis

    def group_of(self, rank: int) -> int:
        return self.chassis_of(rank) // self.chassis_per_group

    # -- classification ------------------------------------------------
    def distance(self, src: int, dst: int) -> Distance:
        """Distance class between two ranks."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return Distance.SELF
        if self.node_of(src) == self.node_of(dst):
            return Distance.SAME_NODE
        if self.chassis_of(src) == self.chassis_of(dst):
            return Distance.SAME_CHASSIS
        if self.group_of(src) == self.group_of(dst):
            return Distance.SAME_GROUP
        return Distance.REMOTE_GROUP

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")
