"""Deterministic cooperative multi-rank runtime with virtual time.

This package is the execution substrate that replaces a real MPI launcher:
``P`` rank programs run as Python threads, but **exactly one thread executes
at any moment** and control is handed over only at well-defined blocking
points (collectives, waits).  Among runnable ranks the scheduler always picks
the one with the smallest ``(virtual_clock, rank)`` pair, so every run is
bit-reproducible regardless of OS scheduling.

Each rank owns a *virtual clock* (seconds).  Compute and communication costs
are charged with :meth:`SimProcess.advance`; synchronising collectives align
clocks to the maximum participant time, exactly like a barrier on a real
machine.
"""

from repro.runtime.scheduler import (
    DeadlockError,
    RankFailedError,
    RankRevokedError,
    SimProcess,
    SimWorld,
)

__all__ = [
    "DeadlockError",
    "RankFailedError",
    "RankRevokedError",
    "SimProcess",
    "SimWorld",
]
