"""Cooperative deterministic scheduler for simulated multi-rank programs.

Design
------
* A :class:`SimWorld` owns ``nprocs`` :class:`SimProcess` handles and one
  thread per rank.  One shared lock serialises execution: the thread whose
  rank equals ``world._current`` runs, everyone else waits.
* Waiting is *targeted* by default: every rank thread sleeps on its own
  condition variable (all sharing the one lock), and the dispatcher wakes
  exactly the chosen rank — O(1) wakeups per switch instead of the O(P)
  broadcast storm of a single shared condition, where every switch woke
  all P threads just for P-1 of them to re-check a predicate and sleep
  again.  ``wakeup="broadcast"`` keeps the legacy single-condition mode;
  both produce byte-identical ``sched.switch`` traces because the
  *selection* rule below is untouched.
* Threads voluntarily release control only inside :meth:`SimProcess.sync`
  (the generic payload-carrying barrier) or when they finish.  Everything
  else — including remote-memory reads, which need no target-side CPU — runs
  straight through while charging the local virtual clock.
* The next thread to run is always the READY process with the smallest
  ``(clock, rank)``, which makes runs deterministic and gives collectives
  max-time semantics identical to a real barrier.

Failure semantics: an exception in any rank aborts the world; the original
traceback is re-raised from :meth:`SimWorld.run` wrapped in
:class:`RankFailedError`.  A sync point that can never complete (some ranks
finished, others waiting) raises :class:`DeadlockError`.

Crash-stop semantics (the ``crashes`` map): a rank whose virtual clock
reaches its crash time dies *permanently* — its thread unwinds, its result
slot stays ``None``, and the world keeps running on the survivors.  Any
sync point the victim would have joined is *revoked*: every live rank
observes the failure exactly once as :class:`RankRevokedError` raised out
of its next (or current) :meth:`SimProcess.sync`, after which survivor
barriers require only the live ranks — the ULFM revoke/agree model (see
:mod:`repro.recovery` for the user-facing helpers).
"""

from __future__ import annotations

import random
import threading
import time
from enum import Enum
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.obs import RANK_CRASHED, SCHED_SWITCH, CallbackSink, Event, get_bus, virtual_time


class DeadlockError(RuntimeError):
    """Raised when blocked ranks can never be released, or hang outright."""


class RankFailedError(RuntimeError):
    """Raised by :meth:`SimWorld.run` when a rank program raised."""

    def __init__(self, rank: int, original: BaseException, detail: str = ""):
        msg = f"rank {rank} failed: {original!r}"
        if detail:
            msg += "\n" + detail
        super().__init__(msg)
        self.rank = rank
        self.original = original


class RankRevokedError(RuntimeError):
    """A sync point was revoked because a participant crashed permanently.

    Raised *inside* surviving rank programs (out of :meth:`SimProcess.sync`)
    exactly once per crash observation — the simulated analogue of ULFM's
    ``MPI_ERR_PROC_FAILED``/``MPI_ERR_REVOKED``.  Survivors are expected to
    agree on the failed set and continue over the remaining ranks via the
    :mod:`repro.recovery` helpers rather than handling this ad hoc (lint
    rule ANL008 enforces that).
    """

    def __init__(self, crashed: Iterable[int]):
        self.crashed = frozenset(crashed)
        ranks = ", ".join(str(r) for r in sorted(self.crashed))
        super().__init__(
            f"sync point revoked: rank(s) {ranks} crashed permanently; "
            "continue over the survivors (repro.recovery)"
        )


class _Abort(BaseException):
    """Internal: unwinds sibling rank threads after another rank failed.

    Derives from BaseException so user-level ``except Exception`` blocks in
    rank programs cannot swallow the abort.
    """


class _Crashed(BaseException):
    """Internal: unwinds the thread of a rank that hit its crash time.

    BaseException for the same reason as :class:`_Abort`; additionally the
    per-process ``_crashing`` flag keeps ``finally:`` cleanup on the dying
    rank (epoch closes, flushes) from re-charging time or re-blocking while
    the stack unwinds.
    """


class _State(Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class SimProcess:
    """Per-rank handle: virtual clock plus synchronisation primitives.

    Rank programs receive their :class:`SimProcess` as first argument and
    use it (usually through the :mod:`repro.mpi` layer) to charge time and
    synchronise.
    """

    def __init__(self, world: "SimWorld", rank: int):
        self._world = world
        self.rank = rank
        self.clock = 0.0
        self._state = _State.READY
        self._sync_gen = -1
        self._crash_at: float | None = None
        self._crashing = False
        self._diagnostics: list[Callable[[], str]] = []

    @property
    def nprocs(self) -> int:
        return self._world.nprocs

    @property
    def can_fail(self) -> bool:
        """True when the world has a crash plan (any rank may die)."""
        return self._world.can_fail

    @property
    def failed_ranks(self) -> frozenset[int]:
        """Ranks this process observes as crashed: crash time <= own clock.

        Observation is *causal in virtual time*, not in execution order:
        between sync points the scheduler runs each rank's segment as one
        atomic slice, so the set of *actually unwound* threads at any
        wall-clock instant depends on dispatch order.  Crash times are
        resolved up front (deterministically) though, so "has rank r
        failed?" is answered the way a real failure detector would: r's
        planned death lies in this rank's past.  A failure detector built
        on this is deterministic and dispatch-order independent.
        """
        world = self._world
        if not world._crashes:
            return frozenset()
        clock = self.clock
        return frozenset(r for r, t in world._crashes.items() if t <= clock)

    def add_diagnostic(self, fn: Callable[[], str]) -> None:
        """Register a callable whose string is appended to failure reports.

        Layers above the scheduler (e.g. the MPI window) register their
        open-state summaries here so :class:`DeadlockError` /
        :class:`RankFailedError` messages can show what each rank was in
        the middle of.
        """
        self._diagnostics.append(fn)

    def advance(self, dt: float) -> None:
        """Charge ``dt`` virtual seconds to this rank's clock.

        Non-blocking: control is *not* released, so pure local/remote-read
        sequences run without thread switches.
        """
        if dt < 0:
            raise ValueError(f"negative time advance: {dt}")
        if self._crashing:
            return  # dead rank unwinding through cleanup: time stands still
        self.clock += dt
        if self._crash_at is not None and self.clock >= self._crash_at:
            self._crashing = True
            raise _Crashed()

    def sync(self, payload: Any = None, extra_time: float = 0.0) -> list[Any]:
        """Payload-carrying barrier over all live ranks.

        Blocks until every non-finished rank has called :meth:`sync`; all
        participants leave with ``clock = max(participant clocks) +
        extra_time`` and receive the list of payloads indexed by rank
        (``None`` for ranks that already finished).

        This single primitive is the substrate for every MPI collective
        (barrier, bcast, allgather, allreduce, ...) in :mod:`repro.mpi`.

        Under a crash plan, a sync may instead raise
        :class:`RankRevokedError` (once per crash observation); afterwards
        the barrier spans only the surviving ranks.
        """
        if self._crashing:
            raise _Crashed()
        if self._crash_at is not None and self.clock >= self._crash_at:
            # A sync-released clock can overshoot the death time without an
            # intervening advance(); the victim dies at the sync entry.
            self._crashing = True
            raise _Crashed()
        return self._world._sync(self, payload, extra_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimProcess(rank={self.rank}, clock={self.clock:.3e}, state={self._state})"


class SimWorld:
    """Runs one program per rank under deterministic cooperative scheduling.

    ``schedule="deterministic"`` (default) always runs the READY process
    with the smallest ``(clock, rank)``.  ``schedule="random"`` picks a
    seeded-random READY process instead — virtual times are unaffected
    (clocks are per-rank and collectives take the max), but shared-state
    interleavings differ, which the test suite uses to verify that programs
    do not depend on scheduling order.  ``schedule="trace"`` replays a
    previously recorded dispatch order (``trace=``): at each switch the
    next recorded rank is run if it is READY, falling back to the
    deterministic rule otherwise — the interleaving-stable replay mode the
    transparency fuzzer's shrinker uses (a shrunk program has fewer sync
    points, so re-running the *seed* of a random schedule would explore a
    different interleaving; replaying the *trace* pins the surviving
    ranks to their original relative order).

    ``record_trace=True`` appends every dispatched rank to
    :attr:`schedule_trace`, which can be fed back as ``trace=``.
    """

    def __init__(
        self,
        nprocs: int,
        schedule: str = "deterministic",
        seed: int = 0,
        join_timeout: float = 30.0,
        wakeup: str = "targeted",
        crashes: Mapping[int, float] | None = None,
        record_trace: bool = False,
        trace: Sequence[int] | None = None,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if schedule not in ("deterministic", "random", "trace"):
            raise ValueError(f"unknown schedule: {schedule}")
        if schedule == "trace" and trace is None:
            raise ValueError('schedule="trace" requires a recorded trace')
        if wakeup not in ("targeted", "broadcast"):
            raise ValueError(f"unknown wakeup mode: {wakeup}")
        if join_timeout <= 0:
            raise ValueError("join_timeout must be > 0")
        crashes = dict(crashes) if crashes else {}
        for rank, t in crashes.items():
            if not 0 <= rank < nprocs:
                raise ValueError(f"crash rank {rank} out of range [0, {nprocs})")
            if t < 0:
                raise ValueError(f"crash time for rank {rank} must be >= 0, got {t}")
        #: wall-clock budget for rank threads to terminate after the run
        #: settles; a rank still alive past it is reported, never ignored
        self.join_timeout = join_timeout
        self._schedule = schedule
        self._wakeup = wakeup
        self._rng = random.Random(seed)
        #: dispatch order of this run (appended only when record_trace)
        self.schedule_trace: list[int] = []
        self._record_trace = record_trace
        self._trace = list(trace) if trace is not None else None
        self._trace_pos = 0
        self.nprocs = nprocs
        self._procs = [SimProcess(self, r) for r in range(nprocs)]
        #: resolved crash plan ({rank: virtual death time}); empty = no crashes
        self._crashes = crashes
        for rank, t in crashes.items():
            self._procs[rank]._crash_at = t
        #: ranks that have died so far (crash-stop; populated during run)
        self.crashed: set[int] = set()
        # Live ranks that have not yet observed the latest revocation; each
        # gets exactly one RankRevokedError out of its next/current sync.
        self._revoke_unobserved: set[int] = set()
        #: last obs event seen per rank (failure diagnostics; only
        #: populated while an obs capture is active)
        self._last_events: dict[int, Event] = {}
        # One lock, many conditions: rank threads sleep on their own
        # condition so a dispatch wakes exactly one thread; the driver
        # (run()) sleeps on self._cond.  Broadcast mode aliases every
        # per-rank condition to self._cond, restoring the legacy storm.
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        if wakeup == "targeted":
            self._rank_conds = [
                threading.Condition(self._lock) for _ in range(nprocs)
            ]
        else:
            self._rank_conds = [self._cond] * nprocs
        self._current: int | None = None
        self._failure: tuple[int, BaseException] | None = None
        self._deadlock: str | None = None
        # sync-point bookkeeping (generation counter allows reuse)
        self._sync_gen = 0
        self._sync_payloads: dict[int, Any] = {}
        self._sync_results: list[Any] | None = None
        self._pending_extra = 0.0
        self._started = False
        self._obs = get_bus()
        self._last_dispatched: int | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        program: Callable[..., Any],
        *args: Any,
        programs: Sequence[Callable[..., Any]] | None = None,
        **kwargs: Any,
    ) -> list[Any]:
        """Execute ``program(proc, *args, **kwargs)`` on every rank.

        ``programs`` may instead provide one callable per rank (MPMD).
        Returns the per-rank return values.  A :class:`SimWorld` is
        single-shot: create a fresh world for every run.
        """
        if self._started:
            raise RuntimeError("SimWorld instances are single-shot; create a new one")
        self._started = True
        if programs is not None:
            if len(programs) != self.nprocs:
                raise ValueError("programs must have one entry per rank")
            targets = list(programs)
        else:
            targets = [program] * self.nprocs

        results: list[Any] = [None] * self.nprocs
        threads = []
        for proc, target in zip(self._procs, targets):
            t = threading.Thread(
                target=self._thread_main,
                args=(proc, target, args, kwargs, results),
                name=f"sim-rank-{proc.rank}",
                daemon=True,
            )
            threads.append(t)

        # Record the last event each rank emitted so failure reports can
        # say what every rank was doing.  Only piggybacks on an already
        # active capture: attaching a recorder to a disabled bus would
        # enable it and change the hot-path behaviour the tests pin down.
        recorder: CallbackSink | None = None
        if self._obs.enabled:
            # passive: must not widen the per-kind gate (or re-enable a
            # disabled bus) — it only sees what the active capture built
            recorder = CallbackSink(self._note_event, passive=True)
            self._obs.attach(recorder)
        try:
            with self._cond:
                for t in threads:
                    t.start()
                self._dispatch_next_locked()
                self._cond.wait_for(
                    lambda: all(p._state is _State.DONE for p in self._procs)
                    or self._failure is not None
                    or self._deadlock is not None
                )
            # One shared wall-clock deadline for all joins: a single hung rank
            # must not multiply the wait by nprocs, and a rank that never
            # terminates must surface as an error, not be silently ignored.
            deadline = time.monotonic() + self.join_timeout
            for t in threads:
                t.join(timeout=max(0.0, deadline - time.monotonic()))
            hung = [
                self._procs[i] for i, t in enumerate(threads) if t.is_alive()
            ]
            if self._failure is not None:
                # A recorded failure wins: the hung siblings are collateral.
                rank, exc = self._failure
                raise RankFailedError(
                    rank, exc, detail=self._rank_diagnostics([rank])
                ) from exc
            if hung:
                detail = ", ".join(
                    f"rank {p.rank} ({p._state.value}, clock={p.clock:.3e})"
                    for p in hung
                )
                raise DeadlockError(
                    f"{len(hung)} rank thread(s) did not terminate within "
                    f"{self.join_timeout}s after the run settled: {detail}"
                    + (
                        f"; scheduler reported: {self._deadlock}"
                        if self._deadlock
                        else ""
                    )
                    + ("\n" + self._rank_diagnostics([p.rank for p in hung]))
                )
            if self._deadlock is not None:
                raise DeadlockError(self._deadlock)
        finally:
            if recorder is not None:
                self._obs.detach(recorder)
        virtual_time.note_run(self.max_clock)
        return results

    @property
    def can_fail(self) -> bool:
        """True when this world was built with a non-empty crash plan."""
        return bool(self._crashes)

    def _note_event(self, event: Event) -> None:
        # Ranks run one at a time, so plain dict writes are race-free.
        if event.kind != SCHED_SWITCH:
            self._last_events[event.rank] = event

    def _emit_switch(self, nxt: SimProcess, ready: int) -> None:
        """One ``sched.switch`` event per actual rank handover."""
        if not self._obs.wants(SCHED_SWITCH):
            return
        self._obs.emit(
            Event(
                SCHED_SWITCH,
                nxt.rank,
                nxt.clock,
                attrs={"from": self._last_dispatched, "ready": ready},
            )
        )

    def _emit_crash(self, proc: SimProcess) -> None:
        """One ``rank.crashed`` event per detected crash-stop failure."""
        if not self._obs.wants(RANK_CRASHED):
            return
        self._obs.emit(
            Event(
                RANK_CRASHED,
                proc.rank,
                proc.clock,
                attrs={"crash_at": proc._crash_at},
            )
        )

    def _rank_diagnostics(self, ranks: Iterable[int]) -> str:
        """Per-rank failure context: last obs event + registered state."""
        lines = []
        for r in sorted(set(ranks)):
            proc = self._procs[r]
            ev = self._last_events.get(r)
            if ev is not None:
                desc = f"last event {ev.kind} @t={ev.time:.3e}"
                if ev.attrs:
                    desc += f" {dict(ev.attrs)}"
            else:
                desc = "last event unknown (no obs capture active)"
            parts = [desc]
            for fn in proc._diagnostics:
                try:
                    d = fn()
                except Exception as e:  # a broken diagnostic must not mask
                    d = f"<diagnostic failed: {e!r}>"  # the real failure
                if d:
                    parts.append(d)
            lines.append(f"  rank {r}: " + "; ".join(parts))
        return "\n".join(lines)

    @property
    def clocks(self) -> list[float]:
        """Virtual clocks of all ranks (valid after :meth:`run`)."""
        return [p.clock for p in self._procs]

    @property
    def max_clock(self) -> float:
        return max(self.clocks)

    # ------------------------------------------------------------------
    # thread body
    # ------------------------------------------------------------------
    def _thread_main(
        self,
        proc: SimProcess,
        target: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        results: list[Any],
    ) -> None:
        try:
            self._wait_for_turn(proc)
        except _Abort:
            return
        try:
            results[proc.rank] = target(proc, *args, **kwargs)
        except _Abort:
            return
        except _Crashed:
            # Crash-stop: the rank is gone, the world lives on.  Its result
            # slot stays None and any in-flight sync point is revoked.
            with self._cond:
                self._record_crash_locked(proc)
            return
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            with self._cond:
                if self._failure is None:
                    self._failure = (proc.rank, exc)
                proc._state = _State.DONE
                self._notify_everyone_locked()
            return
        with self._cond:
            proc._state = _State.DONE
            self._dispatch_next_locked()
            # The driver checks for all-DONE; dispatch only wakes ranks.
            self._cond.notify_all()

    def _wait_for_turn(self, proc: SimProcess) -> None:
        with self._cond:
            self._rank_conds[proc.rank].wait_for(
                lambda: self._current == proc.rank
                or self._failure is not None
                or self._deadlock is not None
            )
            if self._failure is not None or self._deadlock is not None:
                proc._state = _State.DONE
                self._notify_everyone_locked()
                raise _Abort()
            proc._state = _State.RUNNING

    # ------------------------------------------------------------------
    # scheduling internals (all called with self._cond held)
    # ------------------------------------------------------------------
    def _notify_rank_locked(self, rank: int) -> None:
        """Wake exactly one rank thread (all of them in broadcast mode)."""
        if self._wakeup == "targeted":
            self._rank_conds[rank].notify()
        else:
            self._cond.notify_all()

    def _notify_everyone_locked(self) -> None:
        """Failure/deadlock/termination: wake every rank and the driver."""
        if self._wakeup == "targeted":
            for c in self._rank_conds:
                c.notify()
        self._cond.notify_all()

    def _record_crash_locked(self, proc: SimProcess) -> None:
        """Mark ``proc`` dead and revoke any sync point in flight.

        The failure detector of the simulated world: the victim becomes
        DONE (its result stays ``None``), every rank currently blocked in
        a sync is released to observe :class:`RankRevokedError`, and all
        other live ranks observe it at their next sync.  Survivor syncs
        thereafter require only ``nprocs - len(crashed)`` participants.
        """
        proc._state = _State.DONE
        self.crashed.add(proc.rank)
        self._emit_crash(proc)
        # Discard the partially formed sync point: its payload set can
        # never be completed, and every observer restarts it anyway.
        self._sync_payloads = {}
        self._pending_extra = 0.0
        self._revoke_unobserved = {
            p.rank
            for p in self._procs
            if p._state is not _State.DONE
        }
        for p in self._procs:
            if p._state is _State.BLOCKED:
                p._state = _State.READY
        self._notify_everyone_locked()
        self._dispatch_next_locked()

    def _dispatch_next_locked(self) -> None:
        ready = [p for p in self._procs if p._state is _State.READY]
        if not ready:
            blocked = [p for p in self._procs if p._state is _State.BLOCKED]
            running = [p for p in self._procs if p._state is _State.RUNNING]
            if blocked and not running:
                self._deadlock = (
                    "ranks "
                    + ", ".join(str(p.rank) for p in blocked)
                    + " are blocked in a sync point that can never complete "
                    "(other ranks already finished)\n"
                    + self._rank_diagnostics(p.rank for p in blocked)
                )
                self._notify_everyone_locked()
            self._current = None
            return
        if self._schedule == "random":
            nxt = ready[self._rng.randrange(len(ready))]
        elif self._schedule == "trace":
            nxt = self._trace_pick(ready)
        else:
            nxt = min(ready, key=lambda p: (p.clock, p.rank))
        if self._record_trace:
            self.schedule_trace.append(nxt.rank)
        self._current = nxt.rank
        if nxt.rank != self._last_dispatched:
            self._emit_switch(nxt, len(ready))
        self._last_dispatched = nxt.rank
        self._notify_rank_locked(nxt.rank)

    def _trace_pick(self, ready: list[SimProcess]) -> SimProcess:
        """Next recorded rank if READY; deterministic rule otherwise.

        The cursor only advances past entries that were actually honoured
        or that can never be honoured again (DONE ranks), so a shrunk
        program — whose surviving ranks reach fewer sync points — still
        consumes the trace in order instead of desynchronising after the
        first divergence.
        """
        ready_ranks = {p.rank: p for p in ready}
        while self._trace is not None and self._trace_pos < len(self._trace):
            want = self._trace[self._trace_pos]
            picked = ready_ranks.get(want)
            if picked is not None:
                self._trace_pos += 1
                return picked
            if 0 <= want < self.nprocs and self._procs[want]._state is _State.DONE:
                self._trace_pos += 1  # never runnable again: skip the entry
                continue
            break  # recorded rank is blocked right now: fall back this switch
        return min(ready, key=lambda p: (p.clock, p.rank))

    def _sync(self, proc: SimProcess, payload: Any, extra_time: float) -> list[Any]:
        with self._cond:
            if proc._state is not _State.RUNNING:
                raise RuntimeError("sync() called by a non-running process")
            if proc.rank in self._revoke_unobserved:
                # An unobserved crash must surface before this rank joins
                # any barrier; the proc stays RUNNING (it is still current)
                # so its recovery code continues without a reschedule.
                self._revoke_unobserved.discard(proc.rank)
                raise RankRevokedError(self.crashed)
            gen = self._sync_gen
            self._sync_payloads[proc.rank] = payload
            self._pending_extra = max(self._pending_extra, extra_time)
            proc._state = _State.BLOCKED

            # A sync point requires *every live* rank of the world, exactly
            # like an MPI collective: a rank that already returned from its
            # program can never participate, which the dispatcher reports
            # as a deadlock — while crashed ranks are excused, ULFM-style.
            blocked = [p for p in self._procs if p._state is _State.BLOCKED]
            if len(blocked) == self.nprocs - len(self.crashed):
                # Last arriver: release everyone (including self).
                extra = self._pending_extra
                self._pending_extra = 0.0
                tmax = max(p.clock for p in blocked) + extra
                self._sync_results = [
                    self._sync_payloads.get(r) for r in range(self.nprocs)
                ]
                self._sync_payloads = {}
                self._sync_gen += 1
                for p in blocked:
                    p.clock = tmax
                    p._state = _State.READY
                results = self._sync_results
                if self._wakeup == "targeted":
                    # Release every participant (they re-check the
                    # generation counter, then queue for their turn).
                    for p in blocked:
                        if p is not proc:
                            self._rank_conds[p.rank].notify()
                self._dispatch_next_locked()
            else:
                self._dispatch_next_locked()
                self._rank_conds[proc.rank].wait_for(
                    lambda: self._sync_gen > gen
                    or self._failure is not None
                    or self._deadlock is not None
                    or proc.rank in self._revoke_unobserved
                )
                if self._failure is not None or self._deadlock is not None:
                    proc._state = _State.DONE
                    self._notify_everyone_locked()
                    raise _Abort()
                if proc.rank in self._revoke_unobserved and self._sync_gen == gen:
                    # A participant died while we were blocked in a sync
                    # that had NOT yet committed: the detector flipped us
                    # back to READY — queue for our turn, then surface the
                    # revocation to the program.  If the sync generation
                    # already advanced, the barrier committed before the
                    # crash: it must complete for *every* participant
                    # (ranks that resumed earlier already treated it as
                    # successful), so we return normally and the entry
                    # check surfaces the revocation at our next sync.
                    self._rank_conds[proc.rank].wait_for(
                        lambda: self._current == proc.rank
                        or self._failure is not None
                        or self._deadlock is not None
                    )
                    if self._failure is not None or self._deadlock is not None:
                        proc._state = _State.DONE
                        self._notify_everyone_locked()
                        raise _Abort()
                    proc._state = _State.RUNNING
                    self._revoke_unobserved.discard(proc.rank)
                    raise RankRevokedError(self.crashed)
                results = self._sync_results

            # Wait until the scheduler actually hands control back to us.
            self._rank_conds[proc.rank].wait_for(
                lambda: self._current == proc.rank
                or self._failure is not None
                or self._deadlock is not None
            )
            if self._failure is not None or self._deadlock is not None:
                proc._state = _State.DONE
                self._notify_everyone_locked()
                raise _Abort()
            proc._state = _State.RUNNING
            assert results is not None
            return list(results)
