"""The oracle matrix: differential comparison of cell runs.

For one :class:`~repro.verify.workload.WorkloadSpec` the oracle runs

``impl ∈ {plain, block, cached:<every registered policy>[, buggy-stale]}``
``× faults ∈ {none, transient, crash}``
``× schedule ∈ {deterministic, random × seeds}``

and asserts, per cell family:

* **result transparency** — for no-fault and transient cells, every
  rank's digest equals the plain/deterministic/no-fault reference run
  (transient faults are retried underneath, so results must stay
  bit-identical; the block baseline is driven with explicit
  invalidations, so it must agree too);
* **schedule independence** — the ``random`` run of a cell must match
  its own ``deterministic`` run bit-for-bit: digests, *virtual clocks*,
  crashed set, and error disposition.  Crash cells are compared only
  here (a crash at virtual time *t* hits different program points in
  different implementations, so cross-impl digests are incomparable by
  design — each impl must still be self-consistent across schedules);
* **stats conservation** — every schema-v4 snapshot of a cached impl
  satisfies :func:`repro.core.stats.conservation_violations`;
* **event reconciliation** — global ``cache.evict`` / ``cache.admit``
  event counts equal the summed ``evictions`` (split by reason) and
  ``admission_rejects`` counters of the per-rank snapshots;
* **sanitizer cleanliness** — a report-mode
  :class:`~repro.analysis.Sanitizer` attached to the run found nothing
  (for fault-free cells; faulty cells keep their findings attached to
  the report but only fail the oracle when ``sanitize_faulty`` is on).

Any broken assertion becomes a :class:`Finding`; the shrinker minimises
the spec against a reduced matrix that replays just the failing family
(:func:`config_for_finding`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable

from repro.core.policy import available_policies
from repro.core.stats import conservation_violations
from repro.obs.events import CACHE_ADMIT, CACHE_EVICT
from repro.verify.runner import Cell, RunResult, is_cached_impl, run_cell
from repro.verify.workload import WorkloadSpec

#: the reference coordinate every comparable cell is measured against
REFERENCE_CELL = Cell("plain", "deterministic", 0, "none")


@dataclass(frozen=True)
class Finding:
    """One broken oracle assertion (the fuzzer's unit of failure)."""

    kind: str          #: run-error | result-mismatch | schedule-dependence |
                       #: stats-conservation | event-reconciliation | sanitizer
    cell: Cell
    message: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.cell.label}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "cell": self.cell.to_dict(),
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Finding":
        return cls(d["kind"], Cell.from_dict(d["cell"]), d["message"])


@dataclass(frozen=True)
class MatrixConfig:
    """Which slice of the full oracle matrix to run."""

    policies: tuple[str, ...] | None = None   #: None = every registered policy
    include_plain: bool = True
    include_block: bool = True
    extra_impls: tuple[str, ...] = ()         #: e.g. ("buggy-stale",)
    fault_kinds: tuple[str, ...] = ("none", "transient", "crash")
    random_seeds: tuple[int, ...] = (1,)
    fault_seed: int = 1
    crash_frac: float = 0.45                  #: death time vs reference makespan
    sanitize_faulty: bool = False             #: gate sanitizer findings on
                                              #: transient/crash cells

    def impls(self) -> list[str]:
        out: list[str] = []
        if self.include_plain:
            out.append("plain")
        if self.include_block:
            out.append("block")
        pols = (
            self.policies if self.policies is not None
            else tuple(available_policies())
        )
        out.extend(f"cached:{p}" for p in pols)
        out.extend(self.extra_impls)
        return out


@dataclass
class MatrixReport:
    """Outcome of one spec × matrix evaluation."""

    spec: WorkloadSpec
    findings: list[Finding] = field(default_factory=list)
    cells_run: int = 0
    reference: RunResult | None = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        if self.ok:
            return f"ok ({self.cells_run} cells)"
        lines = [f"{len(self.findings)} finding(s) over {self.cells_run} cells"]
        lines.extend("  " + f.describe() for f in self.findings)
        return "\n".join(lines)


def run_matrix(
    spec: WorkloadSpec, config: MatrixConfig = MatrixConfig()
) -> MatrixReport:
    """Evaluate every cell of ``config``'s matrix slice over ``spec``."""
    report = MatrixReport(spec=spec)
    reference = run_cell(spec, REFERENCE_CELL)
    report.reference = reference
    report.cells_run += 1
    if reference.error is not None:
        report.findings.append(
            Finding("run-error", REFERENCE_CELL,
                    f"reference run failed: {reference.error}")
        )
        return report
    report.findings.extend(
        _check_self(reference, REFERENCE_CELL, config)
    )
    crash_rank = spec.nprocs - 1
    crash_time = max(reference.makespan * config.crash_frac, 1e-9)

    for impl in config.impls():
        for faults in config.fault_kinds:
            if faults == "crash" and impl == "block":
                # the baseline has no recovery story (docs/baselines.md);
                # crash transparency is CLaMPI's own claim, not the strawman's
                continue
            det_cell = Cell(
                impl,
                "deterministic",
                0,
                faults,
                fault_seed=config.fault_seed,
                crash_rank=crash_rank if faults == "crash" else None,
                crash_time=crash_time if faults == "crash" else None,
            )
            if det_cell == REFERENCE_CELL:
                det = reference  # already run and self-checked above
            else:
                det = run_cell(spec, det_cell)
                report.cells_run += 1
                report.findings.extend(_check_self(det, det_cell, config))
            if det.error is None and faults != "crash" and impl != "buggy-stale":
                report.findings.extend(
                    _compare_results(det, reference, det_cell)
                )
            for seed in config.random_seeds:
                rnd_cell = replace(
                    det_cell, schedule="random", schedule_seed=seed
                )
                rnd = run_cell(spec, rnd_cell)
                report.cells_run += 1
                report.findings.extend(
                    _compare_schedules(det, rnd, rnd_cell)
                )
    return report


# ---------------------------------------------------------------------------
# per-cell checks
# ---------------------------------------------------------------------------
def _check_self(
    result: RunResult, cell: Cell, config: MatrixConfig
) -> list[Finding]:
    out: list[Finding] = []
    if result.error is not None:
        out.append(Finding("run-error", cell, result.error))
        return out
    if result.violations and (cell.faults == "none" or config.sanitize_faulty):
        kinds = sorted({v.get("kind", "?") for v in result.violations})
        out.append(
            Finding(
                "sanitizer",
                cell,
                f"{len(result.violations)} violation(s): {', '.join(kinds)}",
            )
        )
    if is_cached_impl(cell.impl):
        for r, snap in enumerate(result.stats):
            if snap is None:
                continue
            broken = conservation_violations(snap)
            if broken:
                out.append(
                    Finding(
                        "stats-conservation",
                        cell,
                        f"rank {r}: " + "; ".join(broken),
                    )
                )
        if cell.faults != "crash":
            # a crashed rank's evict/admit events reached the global bus
            # before it died, but its snapshot died with it — the tallies
            # are irreconcilable by construction in crash cells
            out.extend(_reconcile_events(result, cell))
    return out


def _reconcile_events(result: RunResult, cell: Cell) -> list[Finding]:
    """Global cache.evict/admit event counts vs summed snapshot counters."""
    snaps = [s for s in result.stats if s is not None]
    counters = {
        CACHE_EVICT: sum(int(s.get("evictions", 0)) for s in snaps),
        f"{CACHE_EVICT}.capacity": sum(
            int(s.get("capacity_evictions", 0)) for s in snaps
        ),
        f"{CACHE_EVICT}.conflict": sum(
            int(s.get("conflict_evictions", 0)) for s in snaps
        ),
        CACHE_ADMIT: sum(int(s.get("admission_rejects", 0)) for s in snaps),
    }
    out: list[Finding] = []
    for key, expect in counters.items():
        seen = result.event_counts.get(key, 0)
        if seen != expect:
            out.append(
                Finding(
                    "event-reconciliation",
                    cell,
                    f"{key}: {seen} events vs {expect} in stats snapshots",
                )
            )
    return out


def _compare_results(
    det: RunResult, reference: RunResult, cell: Cell
) -> list[Finding]:
    out: list[Finding] = []
    for r, (got, want) in enumerate(zip(det.digests, reference.digests)):
        if got != want:
            out.append(
                Finding(
                    "result-mismatch",
                    cell,
                    f"rank {r} digest {got} != reference {want}",
                )
            )
    return out


def _compare_schedules(
    det: RunResult, rnd: RunResult, cell: Cell
) -> list[Finding]:
    out: list[Finding] = []
    if (det.error is None) != (rnd.error is None):
        out.append(
            Finding(
                "schedule-dependence",
                cell,
                f"error disposition differs: {det.error!r} vs {rnd.error!r}",
            )
        )
        return out
    if det.error is not None:
        return out  # both failed; run-error was already reported for det
    if rnd.error is not None:
        out.append(Finding("run-error", cell, rnd.error))
        return out
    if det.crashed != rnd.crashed:
        out.append(
            Finding(
                "schedule-dependence",
                cell,
                f"crashed set differs: {sorted(det.crashed)} vs "
                f"{sorted(rnd.crashed)}",
            )
        )
    for r, (a, b) in enumerate(zip(det.digests, rnd.digests)):
        if a != b:
            out.append(
                Finding(
                    "schedule-dependence",
                    cell,
                    f"rank {r} digest differs across schedules",
                )
            )
    if det.clocks != rnd.clocks:
        out.append(
            Finding(
                "schedule-dependence",
                cell,
                f"virtual clocks differ: {det.clocks} vs {rnd.clocks}",
            )
        )
    return out


# ---------------------------------------------------------------------------
# reduced matrices (shrinker + repro replay)
# ---------------------------------------------------------------------------
def config_for_finding(
    finding: Finding, base: MatrixConfig = MatrixConfig()
) -> MatrixConfig:
    """The smallest matrix slice that can reproduce ``finding``."""
    cell = finding.cell
    policies: tuple[str, ...] = ()
    include_plain = cell.impl == "plain"
    include_block = cell.impl == "block"
    extra: tuple[str, ...] = ()
    if cell.impl.startswith("cached:"):
        policies = (cell.impl.split(":", 1)[1],)
    elif cell.impl not in ("plain", "block"):
        extra = (cell.impl,)
    return replace(
        base,
        policies=policies,
        include_plain=include_plain or not (policies or extra or include_block),
        include_block=include_block,
        extra_impls=extra,
        fault_kinds=(cell.faults,),
        random_seeds=(cell.schedule_seed,) if cell.schedule == "random"
        else base.random_seeds[:1],
    )


def matches_finding(findings: Iterable[Finding], finding: Finding) -> bool:
    """Does any of ``findings`` reproduce ``finding``'s failure family?

    Matching is deliberately loose — same kind, same impl, same fault
    kind — so the shrinker keeps candidates that move the failure to a
    sibling cell (e.g. a different random seed) instead of discarding
    them.
    """
    return any(
        f.kind == finding.kind
        and f.cell.impl == finding.cell.impl
        and f.cell.faults == finding.cell.faults
        for f in findings
    )
