"""``repro.verify`` — the transparency fuzzer.

CLaMPI's headline contract is *transparency*: a caching-enabled window
must be observably indistinguishable from a plain MPI-3 RMA window
(PAPER.md §1).  This package verifies that claim adversarially instead
of by hand-written goldens:

1. :mod:`repro.verify.workload` **generates** seeded random RMA programs
   — a :class:`WorkloadSpec` grammar over epochs (lock / lock_all /
   fence / PSCW), op mixes (get / put / accumulate / get_batch / flush)
   and datatypes, constrained by a validity model (single-writer
   regions, flush-delimited segments, barrier-separated phases) so a
   *valid* spec is race-free by construction and every implementation
   must produce bit-identical results;
2. :mod:`repro.verify.runner` **executes** one spec on one cell of the
   oracle matrix — an implementation (plain ``Window``, every registered
   eviction policy of ``CachedWindow``, the ``baselines.block_cache``
   strawman, or a deliberately broken impl for self-tests) crossed with
   a schedule (``deterministic`` / ``random``) and a fault plan (none /
   transient / crash) — returning digests, virtual clocks, stats
   snapshots, cache-event counts and sanitizer findings;
3. :mod:`repro.verify.oracle` **compares** the cells: bit-identical
   application results vs the plain reference, bit-identical digests
   *and* virtual clocks across schedules, stats-conservation identities
   (:func:`repro.core.stats.conservation_violations`), cache.evict /
   cache.admit event counts reconciling with the schema-v4 counters,
   and a clean sanitizer run;
4. :mod:`repro.verify.shrink` **minimises** any failing spec with a
   delta-debugging loop (drop ops → truncate batches → shrink sizes →
   collapse ranks) while re-validating every candidate;
5. :mod:`repro.verify.reprofile` **serialises** failures as JSON repro
   files, replayable via ``python -m repro.verify replay <file>`` and
   committed to ``tests/fixtures/verify_corpus/`` as regressions.

CLI (see ``docs/testing.md``)::

    python -m repro.verify fuzz --cases 40 --budget 120s
    python -m repro.verify replay repro.json
    python -m repro.verify corpus tests/fixtures/verify_corpus
"""

from __future__ import annotations

from repro.verify.workload import Op, Phase, WorkloadSpec, generate, validate
from repro.verify.runner import Cell, RunResult, run_cell
from repro.verify.oracle import Finding, MatrixConfig, MatrixReport, run_matrix
from repro.verify.shrink import ShrinkResult, shrink
from repro.verify.reprofile import Repro, load_repro, replay, save_repro

__all__ = [
    "Cell",
    "Finding",
    "MatrixConfig",
    "MatrixReport",
    "Op",
    "Phase",
    "Repro",
    "RunResult",
    "ShrinkResult",
    "WorkloadSpec",
    "generate",
    "load_repro",
    "replay",
    "run_cell",
    "run_matrix",
    "save_repro",
    "shrink",
    "validate",
]
