"""Seeded random RMA programs with a correctness-by-construction grammar.

A :class:`WorkloadSpec` describes one simulated MPI job as a sequence of
barrier-separated **phases**; each phase opens one access epoch per rank
(``lock`` / ``lock_all`` / ``fence`` / ``pscw``) and runs a straight-line
list of ops per rank (``get`` / ``put`` / ``accumulate`` / ``get_batch``
/ ``flush``).

Validity model
--------------
The oracle asserts *bit-identical* results across implementations and
schedules, so a generated program must have exactly one well-defined
outcome under the MPI-3 RMA memory model.  :func:`validate` enforces a
conservative sufficient condition:

* **single-writer regions** — every rank's window memory is partitioned
  into ``nprocs + 1`` regions of ``slots_per_region`` slots of
  ``slot_bytes`` bytes; region ``r`` (on *any* target) is written only
  by rank ``r``, and region ``nprocs`` is read-only.  Writers therefore
  never conflict with each other, on any target, under any interleaving;
* **flush-delimited segments** — within a phase, a rank's op stream
  towards one target is cut into segments by its ``flush`` ops
  (``flush_all`` cuts every target's stream).  At most one write per
  ``(target, slot)`` per segment, and no read and write of the same
  ``(target, slot)`` within one segment (MPI 11.7: overlapping accesses
  within an epoch are undefined);
* **phase isolation** — a ``(target, slot)`` written in a phase is not
  read by any *other* rank in the same phase.  Phases end with an epoch
  closure and a barrier, so cross-phase reads of foreign writes are
  well-defined — and they are exactly the accesses that force a
  transparent cache to invalidate (the stale-read vector);
* writes never target the issuing rank itself (reads may: a rank can
  get from its own window, which caches must handle like any target).

The generator is biased toward **reuse** (per-rank hot address pools)
so caching engages, and plants a deliberate cross-phase
read → foreign-write → read *stale probe* so any implementation that
skips epoch-closure invalidation (e.g. the ``buggy-stale`` self-test
impl) is detectable in essentially every generated spec.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

import numpy as np

#: data-movement op kinds an :class:`Op` may carry
OP_KINDS = ("get", "put", "accumulate", "get_batch", "flush")
#: per-phase epoch disciplines
EPOCH_KINDS = ("lock", "lock_all", "fence", "pscw")
#: element dtypes ops may use (numpy codes; all contiguous basics)
DTYPES = ("u1", "i4", "f8")
#: accumulate reductions (matches Window.accumulate)
ACC_OPS = ("sum", "max", "min", "replace")

_DTYPE_SIZE = {d: np.dtype(d).itemsize for d in DTYPES}


# ---------------------------------------------------------------------------
# grammar
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Op:
    """One straight-line operation in a rank's per-phase program.

    ``slot`` addresses ``slot_bytes`` bytes at byte offset
    ``slot * slot_bytes`` of the target's window; ``nbytes`` (a multiple
    of the dtype size, at most ``slot_bytes``) is read/written from the
    start of the slot.  ``get_batch`` ops carry their elements in
    ``batch`` as ``(target, slot, nbytes)`` triples and ignore the
    scalar ``target`` / ``slot`` / ``nbytes`` fields; ``flush`` ops with
    ``target is None`` mean ``flush_all``.
    """

    kind: str
    target: int | None = None
    slot: int = 0
    nbytes: int = 1
    dtype: str = "u1"
    acc_op: str = "sum"
    batch: tuple[tuple[int, int, int], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"kind": self.kind}
        if self.kind == "flush":
            d["target"] = self.target
        elif self.kind == "get_batch":
            d["batch"] = [list(b) for b in self.batch]
            d["dtype"] = self.dtype
        else:
            d.update(
                target=self.target,
                slot=self.slot,
                nbytes=self.nbytes,
                dtype=self.dtype,
            )
            if self.kind == "accumulate":
                d["acc_op"] = self.acc_op
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Op":
        return cls(
            kind=d["kind"],
            target=d.get("target"),
            slot=int(d.get("slot", 0)),
            nbytes=int(d.get("nbytes", 1)),
            dtype=d.get("dtype", "u1"),
            acc_op=d.get("acc_op", "sum"),
            batch=tuple(
                (int(t), int(s), int(n)) for t, s, n in d.get("batch", ())
            ),
        )

    def reads(self) -> tuple[tuple[int, int], ...]:
        """``(target, slot)`` addresses this op reads."""
        if self.kind == "get":
            return ((self.target, self.slot),)
        if self.kind == "get_batch":
            return tuple((t, s) for t, s, _ in self.batch)
        return ()

    def writes(self) -> tuple[tuple[int, int], ...]:
        """``(target, slot)`` addresses this op writes."""
        if self.kind in ("put", "accumulate"):
            return ((self.target, self.slot),)
        return ()


@dataclass(frozen=True)
class Phase:
    """One barrier-separated round: an epoch plus per-rank op lists.

    ``lock_targets`` is only meaningful for ``epoch == "lock"``: rank
    ``r`` locks ``lock_targets[r]`` (``None`` = this rank opens no epoch
    and runs no ops this phase).
    """

    epoch: str
    ops: tuple[tuple[Op, ...], ...]
    lock_targets: tuple[int | None, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "epoch": self.epoch,
            "ops": [[op.to_dict() for op in rank_ops] for rank_ops in self.ops],
        }
        if self.epoch == "lock":
            d["lock_targets"] = list(self.lock_targets)
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Phase":
        return cls(
            epoch=d["epoch"],
            ops=tuple(
                tuple(Op.from_dict(o) for o in rank_ops)
                for rank_ops in d["ops"]
            ),
            lock_targets=tuple(d.get("lock_targets", ())),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete seeded random RMA program (one oracle subject)."""

    nprocs: int
    slots_per_region: int
    slot_bytes: int
    index_entries: int
    storage_bytes: int
    phases: tuple[Phase, ...]
    seed: int = 0  #: generator seed (provenance only; replay uses the ops)

    # -- layout ---------------------------------------------------------
    @property
    def regions(self) -> int:
        """Write regions 0..nprocs-1 plus the trailing read-only region."""
        return self.nprocs + 1

    @property
    def total_slots(self) -> int:
        return self.regions * self.slots_per_region

    @property
    def window_bytes(self) -> int:
        return self.total_slots * self.slot_bytes

    def region_of(self, slot: int) -> int:
        return slot // self.slots_per_region

    def region_slots(self, region: int) -> range:
        lo = region * self.slots_per_region
        return range(lo, lo + self.slots_per_region)

    def op_count(self) -> int:
        """Total data ops (batch elements counted individually)."""
        n = 0
        for phase in self.phases:
            for rank_ops in phase.ops:
                for op in rank_ops:
                    n += len(op.batch) if op.kind == "get_batch" else 1
        return n

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "nprocs": self.nprocs,
            "slots_per_region": self.slots_per_region,
            "slot_bytes": self.slot_bytes,
            "index_entries": self.index_entries,
            "storage_bytes": self.storage_bytes,
            "seed": self.seed,
            "phases": [p.to_dict() for p in self.phases],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "WorkloadSpec":
        return cls(
            nprocs=int(d["nprocs"]),
            slots_per_region=int(d["slots_per_region"]),
            slot_bytes=int(d["slot_bytes"]),
            index_entries=int(d["index_entries"]),
            storage_bytes=int(d["storage_bytes"]),
            seed=int(d.get("seed", 0)),
            phases=tuple(Phase.from_dict(p) for p in d["phases"]),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# validation (the single rule engine; the generator defers to it)
# ---------------------------------------------------------------------------
def validate(spec: WorkloadSpec) -> list[str]:
    """Validity errors of ``spec`` (empty list = race-free by construction)."""
    errors: list[str] = []
    if spec.nprocs < 2:
        errors.append(f"nprocs must be >= 2, got {spec.nprocs}")
    if spec.slots_per_region < 1 or spec.slot_bytes < 8:
        errors.append("slots_per_region >= 1 and slot_bytes >= 8 required")
    if spec.index_entries < 1 or spec.storage_bytes < 1:
        errors.append("index_entries and storage_bytes must be >= 1")
    if errors:
        return errors
    for pi, phase in enumerate(spec.phases):
        errors.extend(
            f"phase {pi}: {msg}" for msg in _phase_errors(spec, phase)
        )
    return errors


def _phase_errors(spec: WorkloadSpec, phase: Phase) -> list[str]:
    errors: list[str] = []
    n = spec.nprocs
    if phase.epoch not in EPOCH_KINDS:
        return [f"unknown epoch kind {phase.epoch!r}"]
    if len(phase.ops) != n:
        return [f"ops lists for {len(phase.ops)} ranks, job has {n}"]
    if phase.epoch == "lock":
        if len(phase.lock_targets) != n:
            return [f"lock phase needs {n} lock_targets"]
        for r, t in enumerate(phase.lock_targets):
            if t is not None and (not 0 <= t < n or t == r):
                errors.append(f"rank {r}: bad lock target {t}")

    # writer of each (target, slot) this phase, for cross-rank read checks
    writers: dict[tuple[int, int], int] = {}
    for r, rank_ops in enumerate(phase.ops):
        for op in rank_ops:
            for addr in op.writes():
                writers.setdefault(addr, r)

    for r, rank_ops in enumerate(phase.ops):
        lock_t = (
            phase.lock_targets[r] if phase.epoch == "lock" else None
        )
        if phase.epoch == "lock" and lock_t is None and rank_ops:
            errors.append(f"rank {r}: ops without a lock target")
            continue
        # current flush-delimited segment id per target
        seg: dict[int, int] = {}
        seg_writes: set[tuple[int, int, int]] = set()  # (target, slot, seg)
        seg_reads: set[tuple[int, int, int]] = set()
        for oi, op in enumerate(rank_ops):
            where = f"rank {r} op {oi}"
            if op.kind not in OP_KINDS:
                errors.append(f"{where}: unknown kind {op.kind!r}")
                continue
            if op.kind == "flush":
                if op.target is not None and not 0 <= op.target < n:
                    errors.append(f"{where}: bad flush target {op.target}")
                elif lock_t is not None and op.target not in (None, lock_t):
                    errors.append(
                        f"{where}: flush({op.target}) under lock({lock_t})"
                    )
                elif op.target is None and phase.epoch in ("fence", "pscw"):
                    # MPI: flush_all needs a passive-target epoch
                    errors.append(f"{where}: flush_all under {phase.epoch}")
                elif phase.epoch == "pscw" and op.target == r:
                    errors.append(f"{where}: flush(self) under pscw")
                elif op.target is None:
                    seg = {t: s + 1 for t, s in seg.items()}
                else:
                    seg[op.target] = seg.get(op.target, 0) + 1
                continue
            accesses = [(a, True) for a in op.writes()]
            accesses += [(a, False) for a in op.reads()]
            if op.kind == "get_batch" and not op.batch:
                errors.append(f"{where}: empty batch")
                continue
            sizes = (
                [(op.nbytes, op.dtype)]
                if op.kind != "get_batch"
                else [(nb, op.dtype) for _, _, nb in op.batch]
            )
            for nb, dt in sizes:
                isz = _DTYPE_SIZE.get(dt)
                if isz is None:
                    errors.append(f"{where}: unknown dtype {dt!r}")
                elif not 0 < nb <= spec.slot_bytes or nb % isz:
                    errors.append(
                        f"{where}: bad nbytes {nb} (dtype {dt}, "
                        f"slot {spec.slot_bytes})"
                    )
            if op.kind == "accumulate" and op.acc_op not in ACC_OPS:
                errors.append(f"{where}: unknown acc op {op.acc_op!r}")
            for (t, s), is_write in accesses:
                if t is None or not 0 <= t < n:
                    errors.append(f"{where}: bad target {t}")
                    continue
                if lock_t is not None and t != lock_t:
                    errors.append(
                        f"{where}: target {t} under lock({lock_t})"
                    )
                    continue
                if phase.epoch == "pscw" and t == r:
                    # the PSCW access epoch covers the started group,
                    # which never includes the origin itself
                    errors.append(f"{where}: self-target under pscw")
                    continue
                if not 0 <= s < spec.total_slots:
                    errors.append(f"{where}: slot {s} out of range")
                    continue
                region = spec.region_of(s)
                sid = seg.get(t, 0)
                if is_write:
                    if t == r:
                        errors.append(f"{where}: write targets self")
                    if region != r:
                        errors.append(
                            f"{where}: write to slot {s} outside "
                            f"rank {r}'s region"
                        )
                    if (t, s, sid) in seg_writes or (t, s, sid) in seg_reads:
                        errors.append(
                            f"{where}: write to ({t},{s}) conflicts within "
                            "its flush segment"
                        )
                    seg_writes.add((t, s, sid))
                else:
                    w = writers.get((t, s))
                    if w is not None and w != r:
                        errors.append(
                            f"{where}: reads ({t},{s}) written by rank {w} "
                            "in the same phase"
                        )
                    if (t, s, sid) in seg_writes:
                        errors.append(
                            f"{where}: reads ({t},{s}) written in the same "
                            "flush segment"
                        )
                    seg_reads.add((t, s, sid))
    return errors


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------
_EPOCH_WEIGHTS = (("lock_all", 45), ("lock", 25), ("fence", 20), ("pscw", 10))
_KIND_WEIGHTS = (
    ("get", 52),
    ("put", 16),
    ("flush", 12),
    ("get_batch", 10),
    ("accumulate", 10),
)


def _weighted(rng: random.Random, table: Sequence[tuple[str, int]]) -> str:
    total = sum(w for _, w in table)
    x = rng.randrange(total)
    for name, w in table:
        x -= w
        if x < 0:
            return name
    return table[-1][0]  # pragma: no cover - unreachable


def generate(
    seed: int,
    *,
    nprocs: int | None = None,
    n_phases: int | None = None,
    ops_per_rank: tuple[int, int] = (3, 9),
    stale_probe: bool = True,
) -> WorkloadSpec:
    """One seeded random, *valid* workload (same seed → same spec).

    ``stale_probe=True`` plants a cross-phase read → foreign-write →
    read triple on one address, the canonical access pattern a
    non-invalidating cache serves stale.
    """
    rng = random.Random(f"repro.verify.workload:{seed}")
    n = nprocs if nprocs is not None else rng.choice((2, 3, 4))
    spr = rng.choice((2, 3, 4))
    phases_n = n_phases if n_phases is not None else rng.randint(2, 4)
    if stale_probe:
        phases_n = max(phases_n, 3)
    spec = WorkloadSpec(
        nprocs=n,
        slots_per_region=spr,
        slot_bytes=64,
        index_entries=rng.choice((16, 64)),
        storage_bytes=rng.choice((1024, 4096, 1 << 16)),
        phases=(),
        seed=seed,
    )

    # per-rank hot read pools: reuse is what makes caching engage
    pools: list[list[tuple[int, int]]] = []
    ro_slots = list(spec.region_slots(n))
    for r in range(n):
        pool: list[tuple[int, int]] = []
        for _ in range(rng.randint(3, 5)):
            t = rng.choice([x for x in range(n) if x != r] or [r])
            if rng.random() < 0.4:
                s = rng.choice(ro_slots)
            else:
                owner = rng.randrange(n)
                s = rng.choice(list(spec.region_slots(owner)))
            pool.append((t, s))
        pools.append(pool)

    epochs = [_weighted(rng, _EPOCH_WEIGHTS) for _ in range(phases_n)]
    lock_targets: list[tuple[int | None, ...]] = []
    for ek in epochs:
        if ek == "lock":
            lock_targets.append(
                tuple(
                    rng.choice([x for x in range(n) if x != r])
                    for r in range(n)
                )
            )
        else:
            lock_targets.append(())

    ops: list[list[list[Op]]] = [[[] for _ in range(n)] for _ in epochs]

    def try_add(pi: int, r: int, op: Op) -> bool:
        ops[pi][r].append(op)
        phase = Phase(epochs[pi], tuple(map(tuple, ops[pi])), lock_targets[pi])
        if _phase_errors(spec, phase):
            ops[pi][r].pop()
            return False
        return True

    # plant the stale probe first so the remaining ops grow around it
    if stale_probe and phases_n >= 3:
        w = rng.randrange(n)
        readers = [x for x in range(n) if x != w]
        r = rng.choice(readers)
        t_choices = [x for x in range(n) if x != w] or [r]
        t = rng.choice(t_choices)  # target window; reader may read itself
        s = rng.choice(list(spec.region_slots(w)))
        p_write = rng.randint(1, phases_n - 2)
        probe_get = Op("get", target=t, slot=s, nbytes=spec.slot_bytes)
        probe_put = Op("put", target=t, slot=s, nbytes=spec.slot_bytes)
        placed = (
            _probe_placement_ok(epochs, lock_targets, 0, r, t)
            and _probe_placement_ok(epochs, lock_targets, p_write, w, t)
            and _probe_placement_ok(epochs, lock_targets, phases_n - 1, r, t)
        )
        if not placed:
            # force friendly epochs for the probe's three phases
            for pi in (0, p_write, phases_n - 1):
                epochs[pi] = "lock_all"
                lock_targets[pi] = ()
        for pi, who, op in (
            (0, r, probe_get),
            (p_write, w, probe_put),
            (phases_n - 1, r, probe_get),
        ):
            if not try_add(pi, who, op):  # pragma: no cover - generator bug
                raise AssertionError("stale probe placement rejected")

    for pi in range(phases_n):
        for r in range(n):
            if epochs[pi] == "lock" and lock_targets[pi][r] is None:
                continue
            budget = rng.randint(*ops_per_rank)
            for _ in range(budget):
                op = _propose(rng, spec, pools[r], r, epochs[pi],
                              lock_targets[pi][r] if epochs[pi] == "lock"
                              else None)
                if op is not None and not try_add(pi, r, op):
                    # fall back to a hot-pool read, the always-safe op
                    t, s = rng.choice(pools[r])
                    fallback = Op("get", target=t, slot=s,
                                  nbytes=spec.slot_bytes)
                    try_add(pi, r, fallback)

    spec = replace(
        spec,
        phases=tuple(
            Phase(epochs[pi], tuple(map(tuple, ops[pi])), lock_targets[pi])
            for pi in range(phases_n)
        ),
    )
    errors = validate(spec)
    if errors:  # pragma: no cover - generator bug guard
        raise AssertionError(f"generator produced invalid spec: {errors}")
    return spec


def _probe_placement_ok(
    epochs: list[str],
    lock_targets: list[tuple[int | None, ...]],
    pi: int,
    rank: int,
    target: int,
) -> bool:
    if epochs[pi] == "lock":
        return lock_targets[pi][rank] == target
    if epochs[pi] == "pscw":
        return target != rank
    return True


def _propose(
    rng: random.Random,
    spec: WorkloadSpec,
    pool: list[tuple[int, int]],
    rank: int,
    epoch: str,
    lock_t: int | None,
) -> Op | None:
    """One candidate op (validity is re-checked by the caller)."""
    n = spec.nprocs
    kind = _weighted(rng, _KIND_WEIGHTS)
    others = [x for x in range(n) if x != rank]

    def read_addr() -> tuple[int, int]:
        if lock_t is not None:
            # under lock, every op must hit the lock target's window
            t = lock_t
            if rng.random() < 0.8 and any(pt == t for pt, _ in pool):
                return rng.choice([(pt, ps) for pt, ps in pool if pt == t])
            return t, rng.randrange(spec.total_slots)
        if epoch == "pscw":
            # the access epoch never covers self: foreign targets only
            foreign = [(pt, ps) for pt, ps in pool if pt != rank]
            if rng.random() < 0.8 and foreign:
                return rng.choice(foreign)
            return rng.choice(others), rng.randrange(spec.total_slots)
        if rng.random() < 0.8:
            return rng.choice(pool)
        t = rng.choice(others + [rank])
        return t, rng.randrange(spec.total_slots)

    def rand_nbytes(dtype: str) -> int:
        isz = _DTYPE_SIZE[dtype]
        return isz * rng.randint(1, spec.slot_bytes // isz)

    if kind == "flush":
        if lock_t is not None:
            return Op("flush", target=lock_t)
        if epoch in ("fence", "pscw"):
            return Op("flush", target=rng.choice(others))
        return Op("flush", target=None if rng.random() < 0.5
                  else rng.choice(others))
    if kind == "get":
        t, s = read_addr()
        dt = rng.choice(DTYPES)
        return Op("get", target=t, slot=s, nbytes=rand_nbytes(dt), dtype=dt)
    if kind == "get_batch":
        dt = rng.choice(DTYPES)
        batch = tuple(
            (t, s, rand_nbytes(dt))
            for t, s in (read_addr() for _ in range(rng.randint(2, 4)))
        )
        return Op("get_batch", dtype=dt, batch=batch)
    # writes go to this rank's own region, on a foreign target
    t = lock_t if lock_t is not None else rng.choice(others)
    if t == rank:
        return None
    s = rng.choice(list(spec.region_slots(rank)))
    if kind == "put":
        dt = rng.choice(DTYPES)
        return Op("put", target=t, slot=s, nbytes=rand_nbytes(dt), dtype=dt)
    dt = rng.choice(("i4", "f8"))
    return Op(
        "accumulate",
        target=t,
        slot=s,
        nbytes=rand_nbytes(dt),
        dtype=dt,
        acc_op=rng.choice(ACC_OPS),
    )
