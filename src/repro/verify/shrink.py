"""Delta-debugging minimisation of a failing workload.

Given a spec and a ``fails(spec) -> bool`` predicate (built by the
fuzzer from the reduced oracle matrix of the original finding), the
shrinker runs four greedy passes to a fixpoint:

1. **drop ops** — classic ddmin over the flat list of op sites,
   removing exponentially-shrinking chunks, then singles;
2. **truncate batches** — ``get_batch`` ops lose trailing elements;
3. **shrink sizes** — each op's ``nbytes`` steps down toward one
   element;
4. **collapse ranks** — remove the highest removable rank, remapping
   targets, regions and lock targets of the survivors.

Every candidate is re-validated (:func:`repro.verify.workload.validate`)
before evaluation: dropping a ``flush`` can merge two segments into a
now-conflicting one, and such candidates are skipped, not evaluated —
the shrunk spec is always a *valid* program whose failure is a real
transparency violation, never an artifact of an invalid workload.

Evaluation is budgeted (``max_evals``); the shrinker returns the best
spec found when the budget runs out, so a slow oracle still yields a
useful (if not minimal) repro.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable

from repro.verify.workload import Op, Phase, WorkloadSpec, validate

#: one op site: (phase index, rank, op index)
Site = tuple[int, int, int]


@dataclass
class ShrinkResult:
    spec: WorkloadSpec
    evals: int          #: how many times the predicate ran
    improved: bool      #: did any pass shrink the original spec?


class _Budget:
    def __init__(self, fails: Callable[[WorkloadSpec], bool], max_evals: int):
        self._fails = fails
        self.max_evals = max_evals
        self.evals = 0

    @property
    def exhausted(self) -> bool:
        return self.evals >= self.max_evals

    def check(self, spec: WorkloadSpec) -> bool:
        """Validity-gated predicate evaluation."""
        if self.exhausted or validate(spec):
            return False
        self.evals += 1
        return self._fails(spec)


def shrink(
    spec: WorkloadSpec,
    fails: Callable[[WorkloadSpec], bool],
    *,
    max_evals: int = 250,
) -> ShrinkResult:
    """Minimise ``spec`` while ``fails`` keeps returning True."""
    budget = _Budget(fails, max_evals)
    best = spec
    improved = False
    while not budget.exhausted:
        round_best = best
        round_best = _pass_drop_ops(round_best, budget)
        round_best = _pass_truncate_batches(round_best, budget)
        round_best = _pass_shrink_sizes(round_best, budget)
        round_best = _pass_collapse_ranks(round_best, budget)
        if round_best == best:
            break
        best = round_best
        improved = True
    return ShrinkResult(spec=best, evals=budget.evals, improved=improved)


# ---------------------------------------------------------------------------
# spec surgery helpers
# ---------------------------------------------------------------------------
def _sites(spec: WorkloadSpec) -> list[Site]:
    return [
        (pi, r, oi)
        for pi, phase in enumerate(spec.phases)
        for r, rank_ops in enumerate(phase.ops)
        for oi in range(len(rank_ops))
    ]


def _without_sites(spec: WorkloadSpec, drop: Iterable[Site]) -> WorkloadSpec:
    dropped = set(drop)
    phases: list[Phase] = []
    for pi, phase in enumerate(spec.phases):
        ops = tuple(
            tuple(
                op
                for oi, op in enumerate(rank_ops)
                if (pi, r, oi) not in dropped
            )
            for r, rank_ops in enumerate(phase.ops)
        )
        if any(ops):  # drop phases emptied entirely
            phases.append(replace(phase, ops=ops))
    return replace(spec, phases=tuple(phases))


def _replace_op(
    spec: WorkloadSpec, site: Site, new_op: Op
) -> WorkloadSpec:
    pi, r, oi = site
    phase = spec.phases[pi]
    rank_ops = list(phase.ops[r])
    rank_ops[oi] = new_op
    ops = tuple(
        tuple(rank_ops) if rr == r else phase.ops[rr]
        for rr in range(len(phase.ops))
    )
    phases = list(spec.phases)
    phases[pi] = replace(phase, ops=ops)
    return replace(spec, phases=tuple(phases))


# ---------------------------------------------------------------------------
# passes
# ---------------------------------------------------------------------------
def _pass_drop_ops(spec: WorkloadSpec, budget: _Budget) -> WorkloadSpec:
    """ddmin over op sites: exponentially shrinking chunks, then singles."""
    sites = _sites(spec)
    chunk = max(len(sites) // 2, 1)
    while chunk >= 1 and not budget.exhausted:
        i = 0
        progress = False
        while i < len(sites) and not budget.exhausted:
            drop = sites[i : i + chunk]
            candidate = _without_sites(spec, drop)
            if candidate != spec and budget.check(candidate):
                spec = candidate
                sites = _sites(spec)
                progress = True
            else:
                i += chunk
        if chunk == 1 and not progress:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if progress else 0)
    return spec


def _pass_truncate_batches(spec: WorkloadSpec, budget: _Budget) -> WorkloadSpec:
    for site in list(_sites(spec)):
        pi, r, oi = site
        if pi >= len(spec.phases) or oi >= len(spec.phases[pi].ops[r]):
            continue
        op = spec.phases[pi].ops[r][oi]
        if op.kind != "get_batch":
            continue
        while len(op.batch) > 1 and not budget.exhausted:
            shorter = replace(op, batch=op.batch[: len(op.batch) // 2] or op.batch[:1])
            candidate = _replace_op(spec, site, shorter)
            if budget.check(candidate):
                spec, op = candidate, shorter
            else:
                break
    return spec


def _shrunk_sizes(op: Op) -> list[int]:
    import numpy as np

    isz = np.dtype(op.dtype).itemsize
    out = []
    n = op.nbytes
    while n > isz:
        n = max(isz, (n // 2) // isz * isz)
        out.append(n)
    return out


def _pass_shrink_sizes(spec: WorkloadSpec, budget: _Budget) -> WorkloadSpec:
    for site in list(_sites(spec)):
        pi, r, oi = site
        if pi >= len(spec.phases) or oi >= len(spec.phases[pi].ops[r]):
            continue
        op = spec.phases[pi].ops[r][oi]
        if op.kind in ("flush", "get_batch"):
            continue
        for n in _shrunk_sizes(op):
            if budget.exhausted:
                break
            candidate = _replace_op(spec, site, replace(op, nbytes=n))
            if budget.check(candidate):
                spec = candidate
                op = replace(op, nbytes=n)
            else:
                break
    return spec


def _pass_collapse_ranks(spec: WorkloadSpec, budget: _Budget) -> WorkloadSpec:
    changed = True
    while changed and spec.nprocs > 2 and not budget.exhausted:
        changed = False
        for victim in range(spec.nprocs - 1, -1, -1):
            candidate = _drop_rank(spec, victim)
            if candidate is not None and budget.check(candidate):
                spec = candidate
                changed = True
                break
    return spec


def _drop_rank(spec: WorkloadSpec, victim: int) -> WorkloadSpec | None:
    """``spec`` with rank ``victim`` removed (None if not expressible)."""
    n = spec.nprocs
    if n <= 2:
        return None
    spr = spec.slots_per_region

    def map_rank(r: int) -> int | None:
        if r == victim:
            return None
        return r - 1 if r > victim else r

    def map_slot(s: int) -> int | None:
        region, idx = divmod(s, spr)
        if region == victim:
            return None  # the victim's write region disappears
        if region > victim:
            region -= 1
        return region * spr + idx

    def map_op(op: Op) -> Op | None:
        if op.kind == "flush":
            t = None if op.target is None else map_rank(op.target)
            if op.target is not None and t is None:
                return None
            return replace(op, target=t)
        if op.kind == "get_batch":
            batch = []
            for t, s, nb in op.batch:
                mt, ms = map_rank(t), map_slot(s)
                if mt is None or ms is None:
                    continue
                batch.append((mt, ms, nb))
            if not batch:
                return None
            return replace(op, batch=tuple(batch))
        mt, ms = map_rank(op.target), map_slot(op.slot)
        if mt is None or ms is None:
            return None
        return replace(op, target=mt, slot=ms)

    phases: list[Phase] = []
    for phase in spec.phases:
        ops: list[tuple[Op, ...]] = []
        for r, rank_ops in enumerate(phase.ops):
            if r == victim:
                continue
            mapped = tuple(
                m for m in (map_op(op) for op in rank_ops) if m is not None
            )
            ops.append(mapped)
        lock_targets: tuple[int | None, ...] = ()
        if phase.epoch == "lock":
            lts: list[int | None] = []
            for r, t in enumerate(phase.lock_targets):
                if r == victim:
                    continue
                lts.append(None if t is None else map_rank(t))
            # a rank whose lock target died keeps its (possibly empty)
            # ops only if they can retarget — simplest sound move: drop
            # the ops of ranks that lost their lock target
            ops = [
                o if lt is not None or not o else ()
                for o, lt in zip(ops, lts)
            ]
            lock_targets = tuple(lts)
        if any(ops):
            phases.append(Phase(phase.epoch, tuple(ops), lock_targets))
    if not phases:
        return None
    return replace(spec, nprocs=n - 1, phases=tuple(phases))
