"""Execute one :class:`WorkloadSpec` on one cell of the oracle matrix.

A **cell** names an implementation, a schedule and a fault plan:

* ``impl`` — ``"plain"`` (raw :class:`~repro.mpi.window.Window`),
  ``"block"`` (:class:`~repro.baselines.block_cache.BlockCachedWindow`),
  ``"cached:<policy>"`` (:class:`~repro.core.window.CachedWindow` in
  TRANSPARENT mode under a registered policy), or ``"buggy-stale"`` —
  a deliberately broken subject (``clampi-full`` in ALWAYS_CACHE mode
  masquerading as transparent: it never invalidates at epoch closure)
  used to prove the oracle can catch a stale-read bug end to end;
* ``schedule`` — the scheduler's ``deterministic`` / ``random`` /
  ``trace`` modes (see :class:`repro.runtime.SimWorld`);
* ``faults`` — ``"none"``, ``"transient"`` (5% get/put transient
  failures, retried bit-identically underneath) or ``"crash"`` (one
  rank dies crash-stop at a virtual time resolved by the oracle).

The interpreter is written so that a *valid* spec (see
:mod:`repro.verify.workload`) has exactly one observable outcome per
fault plan: every rank digests the bytes of all fetched buffers at each
epoch closure plus its final window memory, and every fault-dependent
skip folds a deterministic marker into the digest.  Dead targets are
handled causally (virtual-clock failure detection), so digests are a
pure function of (spec, impl, fault plan) — never of the thread
interleaving.

Implementation notes kept honest here rather than hidden:

* the block-cache baseline manages invalidation manually by contract,
  so the interpreter calls ``invalidate()`` at every explicit flush and
  epoch closure it drives — the baseline is transparent only because
  the *caller* makes it so, which is exactly the paper's argument for
  CLaMPI;
* crash cells downgrade ``fence``/``pscw`` phases to ``lock_all``:
  retrying a revoked collective would re-apply accumulates (they are
  not idempotent), and the recovery story of this repo is built on
  passive-target epochs (see ``docs/resilience.md``).  Crash cells are
  therefore compared against themselves across schedules, not against
  other implementations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

import numpy as np

from repro import clampi, recovery
from repro.analysis import run_sanitized
from repro.core.config import Config, Mode
from repro.baselines.block_cache import BlockCachedWindow
from repro.faults import FaultPlan, FaultRule
from repro.mpi.errors import TargetFailedError, WindowRevokedError
from repro.mpi.simmpi import MPIProcess, SimMPI
from repro.mpi.window import Window
from repro.obs import get_bus
from repro.obs.events import CACHE_ADMIT, CACHE_EVICT
from repro.obs.sinks import CallbackSink
from repro.verify.workload import WorkloadSpec, Op, Phase

#: fault-kind names a Cell accepts
FAULT_KINDS = ("none", "transient", "crash")
#: transient fault probability of the oracle's "transient" cells
TRANSIENT_PROBABILITY = 0.05


@dataclass(frozen=True)
class Cell:
    """One oracle-matrix coordinate: impl × schedule × fault plan."""

    impl: str
    schedule: str = "deterministic"
    schedule_seed: int = 0
    faults: str = "none"
    fault_seed: int = 1
    crash_rank: int | None = None
    crash_time: float | None = None

    def __post_init__(self) -> None:
        if self.faults not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.faults!r}")
        if self.faults == "crash" and (
            self.crash_rank is None or self.crash_time is None
        ):
            raise ValueError("crash cells need crash_rank and crash_time")

    @property
    def label(self) -> str:
        bits = [self.impl, self.schedule]
        if self.schedule == "random":
            bits[-1] += f"#{self.schedule_seed}"
        if self.faults != "none":
            bits.append(self.faults)
        return "/".join(bits)

    def to_dict(self) -> dict[str, Any]:
        return {
            "impl": self.impl,
            "schedule": self.schedule,
            "schedule_seed": self.schedule_seed,
            "faults": self.faults,
            "fault_seed": self.fault_seed,
            "crash_rank": self.crash_rank,
            "crash_time": self.crash_time,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Cell":
        return cls(
            impl=d["impl"],
            schedule=d.get("schedule", "deterministic"),
            schedule_seed=int(d.get("schedule_seed", 0)),
            faults=d.get("faults", "none"),
            fault_seed=int(d.get("fault_seed", 1)),
            crash_rank=d.get("crash_rank"),
            crash_time=d.get("crash_time"),
        )


@dataclass
class RunResult:
    """Everything observable about one cell run, as comparable data."""

    digests: list[str | None]           #: per-rank result digest (None = died)
    clocks: list[float]                 #: per-rank final virtual clocks
    makespan: float
    crashed: frozenset[int]
    stats: list[dict[str, Any] | None]  #: schema-v4 snapshots (cached impls)
    event_counts: dict[str, int]        #: global cache.evict/admit tallies
    violations: list[dict[str, Any]]    #: sanitizer findings (live ranks)
    trace: list[int] | None = None      #: dispatch order (record_trace runs)
    error: str | None = None            #: uncaught interpreter/model error


def is_cached_impl(impl: str) -> bool:
    return (
        impl.startswith("cached:")
        or impl.startswith("cached-ud:")
        or impl == "buggy-stale"
    )


def make_window(raw: Window, impl: str, spec: WorkloadSpec):
    """Wrap a plain window as the cell's implementation under test."""
    if impl == "plain":
        return raw
    if impl == "block":
        # block == slot keeps block fetches inside the validity model's
        # single-slot footprints (no cross-slot read amplification racing
        # with a neighbour slot's writer)
        return BlockCachedWindow(
            raw,
            block_size=spec.slot_bytes,
            memory_bytes=max(spec.storage_bytes, spec.slot_bytes),
        )
    if impl == "buggy-stale":
        cfg = Config(
            index_entries=spec.index_entries,
            storage_bytes=spec.storage_bytes,
            mode=Mode.ALWAYS_CACHE,  # the seeded bug: no epoch invalidation
        )
        return clampi.wrap(raw, config=cfg)
    if impl.startswith("cached:"):
        policy = impl.split(":", 1)[1]
        cfg = Config(
            index_entries=spec.index_entries,
            storage_bytes=spec.storage_bytes,
            mode=Mode.TRANSPARENT,
            policy=policy,
        )
        return clampi.wrap(raw, config=cfg)
    if impl.startswith("cached-ud:"):
        # USER_DEFINED mode: entries survive epoch closure, so capacity
        # and conflict evictions can actually fire.  Only sound on
        # read-only workloads — nothing is ever written, so the
        # persistent entries can never go stale (the property tests use
        # this to put the eviction/admission ledgers under pressure).
        policy = impl.split(":", 1)[1]
        cfg = Config(
            index_entries=spec.index_entries,
            storage_bytes=spec.storage_bytes,
            mode=Mode.USER_DEFINED,
            policy=policy,
        )
        return clampi.wrap(raw, config=cfg)
    raise ValueError(f"unknown impl {impl!r}")


def build_fault_plan(cell: Cell) -> FaultPlan | None:
    if cell.faults == "none":
        return None
    if cell.faults == "transient":
        return FaultPlan.of(
            FaultRule("get", probability=TRANSIENT_PROBABILITY),
            FaultRule("put", probability=TRANSIENT_PROBABILITY),
            seed=cell.fault_seed,
        )
    return FaultPlan.of(
        FaultRule(
            "crash",
            probability=1.0,
            ranks=(cell.crash_rank,),
            t_start=cell.crash_time,
        ),
        seed=cell.fault_seed,
    )


# ---------------------------------------------------------------------------
# the per-rank interpreter
# ---------------------------------------------------------------------------
def _init_pattern(spec: WorkloadSpec, rank: int) -> np.ndarray:
    """Deterministic initial window contents, distinct per rank."""
    idx = np.arange(spec.window_bytes, dtype=np.int64)
    return ((idx * 131 + rank * 2654435761 + 17) % 251).astype(np.uint8)


def _payload(
    spec: WorkloadSpec, pi: int, rank: int, oi: int, op: Op
) -> np.ndarray:
    """Deterministic write payload for ``op`` (same on every run)."""
    n = op.nbytes
    idx = np.arange(n, dtype=np.int64)
    raw = (idx * 73 + pi * 977 + rank * 131071 + oi * 8191 + op.slot) % 256
    buf = raw.astype(np.uint8).view(np.dtype(op.dtype))
    if op.kind == "accumulate" and np.issubdtype(buf.dtype, np.floating):
        # keep accumulate arithmetic exact: float sums of small integers
        buf = np.ascontiguousarray(
            (raw[: n // buf.dtype.itemsize] % 17).astype(op.dtype)
        )
    return np.ascontiguousarray(buf)


class _PhaseAborted(Exception):
    """Internal: the phase's epoch could not be opened (dead lock target)."""


def _rank_program(
    mpi: MPIProcess, spec: WorkloadSpec, impl: str, allow_active: bool
) -> tuple[str, dict[str, Any] | None]:
    comm = mpi.comm_world
    raw = Window.allocate(comm, spec.window_bytes)
    raw.local_view(np.uint8)[:] = _init_pattern(spec, mpi.rank)
    win = make_window(raw, impl, spec)
    recovery.barrier(comm)
    h = hashlib.sha256()
    for pi, phase in enumerate(spec.phases):
        _run_phase(mpi, spec, win, raw, impl, pi, phase, h, allow_active)
        recovery.barrier(comm)
    h.update(raw.local_buffer.tobytes())
    snap = win.stats.snapshot() if is_cached_impl(impl) else None
    return h.hexdigest(), snap


def _run_phase(
    mpi: MPIProcess,
    spec: WorkloadSpec,
    win: Any,
    raw: Window,
    impl: str,
    pi: int,
    phase: Phase,
    h: "hashlib._Hash",
    allow_active: bool,
) -> None:
    rank = mpi.rank
    comm = mpi.comm_world
    my_ops = phase.ops[rank]
    epoch = phase.epoch
    if epoch in ("fence", "pscw") and not allow_active:
        # crash cells run passive-target only (see module docstring)
        epoch = "lock_all"
    fetched: list[tuple[bytes, np.ndarray]] = []

    def mark(tag: str) -> None:
        h.update(f"<{tag}:{pi}>".encode())

    def flush_seal() -> None:
        # the block baseline's contract: the caller invalidates at
        # completion points; flush ends a segment, so cached blocks of
        # this rank's own earlier writes must not outlive it
        if impl == "block":
            win.invalidate()

    def run_ops() -> None:
        for oi, op in enumerate(my_ops):
            try:
                _exec_op(spec, win, raw, impl, comm, pi, rank, oi, op,
                         fetched, mark, flush_seal)
            except (TargetFailedError, WindowRevokedError):
                mark(f"dead:{oi}")

    closed = False
    try:
        if epoch == "lock":
            t = phase.lock_targets[rank] if phase.lock_targets else None
            if t is None:
                mark("idle")
                return
            if t in comm.failed_ranks:
                mark("lockdead")
                return
            try:
                # closed via recovery.completed below (opaque to the
                # flow verifier)
                win.lock(t)  # analysis: allow(ANL009)
            except (TargetFailedError, WindowRevokedError):
                mark("lockdead")
                return
            try:
                run_ops()
            finally:
                closed = True
                if not recovery.completed(lambda: win.unlock(t)):
                    mark("unlock-revoked")
        elif epoch == "lock_all":
            # closed via recovery.completed below (opaque to the
            # flow verifier)
            win.lock_all()  # analysis: allow(ANL009)
            try:
                run_ops()
            finally:
                closed = True
                if not recovery.completed(win.unlock_all):
                    mark("unlockall-revoked")
        elif epoch == "fence":
            fence_owner = win if hasattr(win, "fence_epoch") else raw
            with fence_owner.fence_epoch():
                run_ops()
            closed = True
        else:  # pscw: post/start ... complete/wait (MPI-3 generalised AT)
            group = [r for r in range(spec.nprocs) if r != rank]
            raw.post(group)
            raw.start(group)
            try:
                run_ops()
            finally:
                closed = True
                raw.complete()
                raw.wait()
    except (TargetFailedError, WindowRevokedError):
        # an op to a freshly-dead target surfaced through a close path
        mark("phase-dead")
        if not closed:
            _close_quietly(win, raw, epoch, phase, rank)
    if impl == "block":
        win.invalidate()  # epoch closure = completion point (transparency)
    for tag, buf in fetched:
        h.update(tag)
        h.update(buf.tobytes())


def _close_quietly(
    win: Any, raw: Window, epoch: str, phase: Phase, rank: int
) -> None:
    """Best-effort epoch teardown after a failure mid-phase."""
    def attempt(fn: Any) -> None:
        try:
            recovery.completed(fn)
        except Exception:
            pass

    if epoch == "lock":
        t = phase.lock_targets[rank] if phase.lock_targets else None
        if t is not None:
            attempt(lambda: win.unlock(t))
    elif epoch == "lock_all":
        attempt(win.unlock_all)


def _exec_op(
    spec: WorkloadSpec,
    win: Any,
    raw: Window,
    impl: str,
    comm: Any,
    pi: int,
    rank: int,
    oi: int,
    op: Op,
    fetched: list[tuple[bytes, np.ndarray]],
    mark: Any,
    flush_seal: Any,
) -> None:
    failed = comm.failed_ranks
    tag = f"[{pi}:{oi}]".encode()
    if op.kind == "flush":
        if op.target is None:
            win.flush_all()
        elif op.target in failed:
            mark(f"flushdead:{oi}")
            return
        else:
            win.flush(op.target)
        flush_seal()
        return
    if op.kind == "get_batch":
        if any(t in failed for t, _, _ in op.batch):
            mark(f"batchdead:{oi}")
            return
        dt = np.dtype(op.dtype)
        bufs = [
            np.empty(nb // dt.itemsize, dtype=dt) for _, _, nb in op.batch
        ]
        win.get_batch(
            [
                (buf, t, s * spec.slot_bytes)
                for buf, (t, s, _) in zip(bufs, op.batch)
            ]
        )
        for buf in bufs:
            fetched.append((tag, buf))
        return
    if op.target in failed:
        mark(f"targetdead:{oi}")
        return
    disp = op.slot * spec.slot_bytes
    dt = np.dtype(op.dtype)
    if op.kind == "get":
        buf = np.empty(op.nbytes // dt.itemsize, dtype=dt)
        win.get(buf, op.target, disp)
        fetched.append((tag, buf))
    elif op.kind == "put":
        win.put(_payload(spec, pi, rank, oi, op), op.target, disp)
        if impl == "block":
            # the baseline has no put-invalidation; write-through the tags
            win.invalidate()
    else:  # accumulate — writes are never cached; block impl lacks the method
        target_win = raw if impl == "block" else win
        target_win.accumulate(
            _payload(spec, pi, rank, oi, op), op.target, disp, op=op.acc_op
        )
        if impl == "block":
            win.invalidate()


# ---------------------------------------------------------------------------
# the cell driver
# ---------------------------------------------------------------------------
def run_cell(
    spec: WorkloadSpec,
    cell: Cell,
    *,
    record_trace: bool = False,
    trace: Sequence[int] | None = None,
) -> RunResult:
    """Run ``spec`` on ``cell``; never raises — errors land in ``.error``."""
    plan = build_fault_plan(cell)
    mpi = SimMPI(
        spec.nprocs,
        schedule=cell.schedule,
        schedule_seed=cell.schedule_seed,
        faults=plan,
        record_trace=record_trace,
        trace=trace,
    )
    counts: dict[str, int] = {
        CACHE_EVICT: 0,
        f"{CACHE_EVICT}.capacity": 0,
        f"{CACHE_EVICT}.conflict": 0,
        CACHE_ADMIT: 0,
    }

    def count(event: Any) -> None:
        counts[event.kind] += 1
        if event.kind == CACHE_EVICT:
            reason = event.attrs.get("reason")
            key = f"{CACHE_EVICT}.{reason}"
            if key in counts:
                counts[key] += 1

    sink = CallbackSink(count, kinds=(CACHE_EVICT, CACHE_ADMIT), passive=True)
    bus = get_bus()
    bus.attach(sink)
    allow_active = cell.faults != "crash"
    error: str | None = None
    results: list[Any] = [None] * spec.nprocs
    try:
        results, violations = run_sanitized(
            lambda: mpi.run(_rank_program, spec, cell.impl, allow_active)
        )
    except Exception as exc:  # noqa: BLE001 - the oracle wants data, not a raise
        error = f"{type(exc).__name__}: {exc}"
        violations = []
    finally:
        bus.detach(sink)

    crashed = mpi.crashed if error is None else frozenset()
    digests: list[str | None] = [None] * spec.nprocs
    stats: list[dict[str, Any] | None] = [None] * spec.nprocs
    if error is None:
        for r, out in enumerate(results):
            if out is not None:
                digests[r], stats[r] = out
    live_violations = [
        v.to_dict() for v in violations if v.rank is None or v.rank not in crashed
    ]
    clocks = mpi.clocks if error is None else []
    return RunResult(
        digests=digests,
        clocks=list(clocks),
        makespan=max(clocks) if clocks else 0.0,
        crashed=crashed,
        stats=stats,
        event_counts=counts,
        violations=live_violations,
        trace=list(mpi.schedule_trace) if record_trace and error is None else None,
        error=error,
    )
