"""``python -m repro.verify`` — the transparency fuzzer CLI.

Subcommands
-----------
``fuzz``
    Generate seeded workloads and push each through the oracle matrix.
    On the first failing case the spec is auto-shrunk and written as a
    JSON repro file; exit code 2 signals a transparency violation.
    ``--inject stale-read`` is the self-test mode: it adds the
    deliberately broken ``buggy-stale`` implementation to the matrix
    and *expects* the oracle to catch and shrink it (exit 1 if missed).
``replay``
    Re-run a repro file (failure repro or corpus regression) and check
    its recorded expectation.
``corpus``
    Replay every ``*.json`` under a corpus directory (default:
    ``tests/fixtures/verify_corpus``).

Exit codes: 0 = expectation met / no violations, 1 = usage or self-test
miss, 2 = transparency violation found (fuzz) or expectation broken
(replay/corpus).  See ``docs/testing.md`` for the triage workflow.

The wall-clock budget (``--budget``) lives here in the CLI, outside the
virtual-time hot paths the ANL001 lint rule patrols.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.verify.oracle import MatrixConfig, run_matrix, config_for_finding
from repro.verify.reprofile import Repro, load_repro, replay, save_repro
from repro.verify.shrink import shrink
from repro.verify.workload import generate

DEFAULT_CORPUS = Path("tests/fixtures/verify_corpus")


def _parse_budget(text: str) -> float:
    t = text.strip().lower()
    if t.endswith("s"):
        t = t[:-1]
    return float(t)


def _matrix_config(args: argparse.Namespace) -> MatrixConfig:
    extra = ()
    if getattr(args, "inject", None) == "stale-read":
        extra = ("buggy-stale",)
    policies = None
    if getattr(args, "policies", None):
        policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    return MatrixConfig(
        policies=policies,
        extra_impls=extra,
        random_seeds=tuple(range(1, args.random_seeds + 1)),
    )


def cmd_fuzz(args: argparse.Namespace) -> int:
    config = _matrix_config(args)
    budget = _parse_budget(args.budget) if args.budget else None
    t0 = time.monotonic()
    cases = cells = 0
    out = Path(args.out)
    for i in range(args.cases):
        elapsed = time.monotonic() - t0
        if budget is not None and elapsed > budget and cases > 0:
            print(f"budget exhausted after {cases} cases ({elapsed:.1f}s)")
            break
        seed = args.seed + i
        spec = generate(seed)
        report = run_matrix(spec, config)
        cases += 1
        cells += report.cells_run
        if not report.ok:
            finding = report.findings[0]
            print(f"case seed={seed}: {report.describe()}")
            print(f"shrinking against: {finding.describe()}")
            reduced = config_for_finding(finding, config)

            def fails(candidate) -> bool:
                rep = run_matrix(candidate, reduced)
                from repro.verify.oracle import matches_finding

                return matches_finding(rep.findings, finding)

            result = shrink(spec, fails, max_evals=args.shrink_evals)
            repro = Repro(
                spec=result.spec,
                expect="fail",
                finding=finding,
                matrix=reduced,
                note=(
                    f"fuzz seed {seed}; shrunk from {spec.op_count()} to "
                    f"{result.spec.op_count()} ops in {result.evals} evals"
                ),
            )
            save_repro(out, repro)
            ok, _ = replay(repro)
            print(
                f"shrunk to {result.spec.op_count()} ops "
                f"({result.evals} evals); repro written to {out} "
                f"(replay {'reproduces' if ok else 'DOES NOT reproduce'})"
            )
            if args.inject == "stale-read":
                # self-test: the seeded bug must be caught, shrunk small,
                # and deterministically replayable
                small = result.spec.op_count() <= args.max_shrunk_ops
                caught = finding.cell.impl == "buggy-stale"
                if caught and ok and small:
                    print(
                        "self-test OK: seeded stale-read bug caught, "
                        f"shrunk to {result.spec.op_count()} ops, replays"
                    )
                    return 0
                print(
                    "self-test FAILED: "
                    + ("finding not on buggy impl; " if not caught else "")
                    + ("" if ok else "repro does not replay; ")
                    + ("" if small else f"repro larger than {args.max_shrunk_ops} ops")
                )
                return 1
            return 2
    elapsed = time.monotonic() - t0
    rate = cases / elapsed if elapsed > 0 else float("inf")
    print(
        f"fuzz: {cases} cases, {cells} cells, 0 violations "
        f"({elapsed:.1f}s, {rate:.2f} cases/s)"
    )
    if args.inject == "stale-read":
        print("self-test FAILED: seeded stale-read bug was never caught")
        return 1
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    repro = load_repro(args.file)
    ok, report = replay(repro)
    expected = "failure reproduces" if repro.expect == "fail" else "oracle clean"
    print(f"{args.file}: expect={repro.expect} ({expected})")
    if repro.note:
        print(f"  note: {repro.note}")
    print(f"  {report.describe()}")
    print("  expectation MET" if ok else "  expectation BROKEN")
    return 0 if ok else 2


def cmd_corpus(args: argparse.Namespace) -> int:
    root = Path(args.dir)
    files = sorted(root.glob("*.json"))
    if not files:
        print(f"no repro files under {root}", file=sys.stderr)
        return 1
    broken = 0
    for f in files:
        repro = load_repro(f)
        ok, report = replay(repro)
        status = "ok" if ok else "BROKEN"
        print(f"{f.name}: {status} ({report.cells_run} cells)")
        if not ok:
            broken += 1
            print("  " + report.describe().replace("\n", "\n  "))
    print(f"corpus: {len(files) - broken}/{len(files)} cases hold")
    return 0 if broken == 0 else 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="CLaMPI transparency fuzzer (see docs/testing.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="fuzz random workloads through the oracle")
    fuzz.add_argument("--cases", type=int, default=40)
    fuzz.add_argument("--budget", default=None, help='wall-clock cap, e.g. "120s"')
    fuzz.add_argument("--seed", type=int, default=0, help="base workload seed")
    fuzz.add_argument(
        "--policies", default=None,
        help="comma-separated policy subset (default: all registered)",
    )
    fuzz.add_argument("--random-seeds", type=int, default=1, dest="random_seeds")
    fuzz.add_argument("--out", default="verify-repro.json")
    fuzz.add_argument("--shrink-evals", type=int, default=250)
    fuzz.add_argument(
        "--inject", choices=("stale-read",), default=None,
        help="self-test: seed a known bug and require the oracle to catch it",
    )
    fuzz.add_argument(
        "--max-shrunk-ops", type=int, default=12,
        help="self-test bound on the shrunk repro size",
    )
    fuzz.set_defaults(fn=cmd_fuzz)

    rep = sub.add_parser("replay", help="re-run a repro file")
    rep.add_argument("file")
    rep.set_defaults(fn=cmd_replay)

    corp = sub.add_parser("corpus", help="replay a corpus directory")
    corp.add_argument("dir", nargs="?", default=str(DEFAULT_CORPUS))
    corp.set_defaults(fn=cmd_corpus)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
