"""JSON repro files: serialized failures and corpus regressions.

A repro file carries a complete :class:`WorkloadSpec` plus an
*expectation*:

* ``expect: "fail"`` — a shrunk failing case.  ``finding`` records the
  original oracle finding (kind + cell); replay runs the reduced matrix
  of that finding (:func:`repro.verify.oracle.config_for_finding`) and
  succeeds iff the same failure family reproduces;
* ``expect: "pass"`` — a corpus regression.  Replay runs the matrix
  (the stored ``matrix`` overrides, or the full default) and succeeds
  iff the oracle stays clean — the committed corpus under
  ``tests/fixtures/verify_corpus/`` uses this form for cases that
  *used* to fail a historical bug class.

Format versioned via ``format``; loaders reject unknown majors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.verify.oracle import (
    Finding,
    MatrixConfig,
    MatrixReport,
    config_for_finding,
    matches_finding,
    run_matrix,
)
from repro.verify.workload import WorkloadSpec

REPRO_FORMAT = 1


def _config_to_dict(config: MatrixConfig) -> dict[str, Any]:
    return {
        "policies": list(config.policies) if config.policies is not None else None,
        "include_plain": config.include_plain,
        "include_block": config.include_block,
        "extra_impls": list(config.extra_impls),
        "fault_kinds": list(config.fault_kinds),
        "random_seeds": list(config.random_seeds),
        "fault_seed": config.fault_seed,
        "crash_frac": config.crash_frac,
        "sanitize_faulty": config.sanitize_faulty,
    }


def _config_from_dict(d: dict[str, Any]) -> MatrixConfig:
    return MatrixConfig(
        policies=tuple(d["policies"]) if d.get("policies") is not None else None,
        include_plain=bool(d.get("include_plain", True)),
        include_block=bool(d.get("include_block", True)),
        extra_impls=tuple(d.get("extra_impls", ())),
        fault_kinds=tuple(d.get("fault_kinds", ("none", "transient", "crash"))),
        random_seeds=tuple(d.get("random_seeds", (1,))),
        fault_seed=int(d.get("fault_seed", 1)),
        crash_frac=float(d.get("crash_frac", 0.45)),
        sanitize_faulty=bool(d.get("sanitize_faulty", False)),
    )


@dataclass
class Repro:
    """One replayable verification case (failure repro or regression)."""

    spec: WorkloadSpec
    expect: str = "pass"                    #: "pass" | "fail"
    finding: Finding | None = None          #: original failure (expect=fail)
    matrix: MatrixConfig | None = None      #: matrix override (expect=pass)
    note: str = ""                          #: human context (bug class, PR, ...)

    def __post_init__(self) -> None:
        if self.expect not in ("pass", "fail"):
            raise ValueError(f"expect must be pass|fail, got {self.expect!r}")
        if self.expect == "fail" and self.finding is None:
            raise ValueError("a fail repro needs the original finding")

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": REPRO_FORMAT,
            "expect": self.expect,
            "note": self.note,
            "finding": self.finding.to_dict() if self.finding else None,
            "matrix": _config_to_dict(self.matrix) if self.matrix else None,
            "spec": self.spec.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Repro":
        fmt = int(d.get("format", 0))
        if fmt != REPRO_FORMAT:
            raise ValueError(
                f"unsupported repro format {fmt} (this build reads "
                f"{REPRO_FORMAT})"
            )
        return cls(
            spec=WorkloadSpec.from_dict(d["spec"]),
            expect=d.get("expect", "pass"),
            finding=Finding.from_dict(d["finding"]) if d.get("finding") else None,
            matrix=_config_from_dict(d["matrix"]) if d.get("matrix") else None,
            note=d.get("note", ""),
        )


def save_repro(path: str | Path, repro: Repro) -> Path:
    path = Path(path)
    path.write_text(json.dumps(repro.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: str | Path) -> Repro:
    return Repro.from_dict(json.loads(Path(path).read_text()))


def replay(repro: Repro) -> tuple[bool, MatrixReport]:
    """Re-run a repro; returns (expectation met, full report)."""
    if repro.expect == "fail":
        assert repro.finding is not None
        config = config_for_finding(repro.finding, repro.matrix or MatrixConfig())
        report = run_matrix(repro.spec, config)
        return matches_finding(report.findings, repro.finding), report
    report = run_matrix(repro.spec, repro.matrix or MatrixConfig())
    return report.ok, report
