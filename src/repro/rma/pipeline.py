"""Composable interceptor pipelines for RMA operations.

A :class:`Pipeline` is an ordered chain of :class:`Interceptor`\\ s bound
once per window; issuing an :class:`~repro.rma.descriptor.OpDescriptor`
runs it through every stage.  Each cross-cutting concern — retry/backoff,
fault injection, the simulated transport and its cost charging, telemetry
emission, epoch closure — lives in exactly one interceptor class
(:mod:`repro.rma.interceptors`); the two standard chains compose them in
the order the concern semantics require (see ``docs/architecture.md``):

* **data chain** (get/put/accumulate)::

      Retry -> Move -> FaultInjection -> Pricing -> Obs

* **sync chain** (flush/unlock/fence/complete, and epoch-opening locks)::

      Retry -> FaultInjection -> Completion -> Obs -> EpochClose

Binding happens ahead of time (``bind`` returns a closure over the next
stage), so issuing an op costs one call per interceptor and zero
per-issue allocation beyond the descriptor itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.rma.descriptor import OpDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.window import Window

#: A bound pipeline stage: runs its concern, then calls the next stage.
Handler = Callable[[OpDescriptor], OpDescriptor]


class Interceptor:
    """One cross-cutting concern of the RMA op path."""

    #: stable identifier, used by introspection and the docs
    name = "interceptor"

    def bind(self, window: "Window", call_next: Handler) -> Handler:
        """Return the stage closure for ``window`` chaining to ``call_next``."""
        raise NotImplementedError


def _terminal(desc: OpDescriptor) -> OpDescriptor:
    return desc


class Pipeline:
    """An interceptor chain bound to one window.

    ``handler`` overrides per-stage binding with a pre-compiled (fused)
    closure semantically equivalent to the declared chain — bind-time
    chain compilation for hot-path windows (fault-free data/sync ops).
    The ``interceptors``/``stages`` introspection still reports the
    declared chain either way.
    """

    def __init__(
        self,
        window: "Window",
        interceptors: list[Interceptor],
        handler: Handler | None = None,
    ):
        self.interceptors = tuple(interceptors)
        self.fused = handler is not None
        if handler is None:
            handler = _terminal
            for icpt in reversed(self.interceptors):
                handler = icpt.bind(window, handler)
        self._handler = handler

    @property
    def stages(self) -> tuple[str, ...]:
        """Interceptor names in issue order (for tests / introspection)."""
        return tuple(i.name for i in self.interceptors)

    def issue(self, desc: OpDescriptor) -> OpDescriptor:
        """Run ``desc`` through the chain; returns the same descriptor."""
        return self._handler(desc)
