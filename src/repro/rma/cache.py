"""The staged pipeline behind CLaMPI's ``get_c`` processing engine.

Unlike the MPI-layer onion (:mod:`repro.rma.pipeline`), the cached-get
path is a **staged** pipeline: every stage gets a ``before`` pass (run in
order until one serves the request) and an ``after`` pass (always run, in
the same order).  The split exists because the cache's telemetry contract
is ordered — ``cache.access`` must precede the degradation probe's
``cache.degraded`` re-enable event, which an onion's unwind order would
invert.

Stage order for ``CachedWindow.get`` (see ``docs/architecture.md``)::

    Accounting    before: sequence bookkeeping (seq, size sum)
    CacheRecovery before: crash-stop handling for dead targets
    Degradation   before: quarantine entry + degraded direct serve
    Consult       before: cost-charged index lookup, full/partial hit serve
    Miss          before: remote issue + insert/evict (always serves)
    --
    Accounting    after:  cache.access emission + fault-counter fold
    Degradation   after:  probe countdown / re-enable
    Adapt         after:  adaptive controller check

Stages must not raise between ``Accounting.before`` and the after
passes — that would skip the ordered telemetry contract.  A stage that
needs to fail the get records the exception on ``req.failure`` and
returns a served size of 0; :meth:`CachePipeline.serve` raises it only
after every ``after`` pass has run.

The stages orchestrate; the structural machinery (cuckoo index, storage,
eviction engine) stays on :class:`repro.core.window.CachedWindow`, which
the request hands back to each stage.

Batched requests (``quiet=True``) serve element-by-element through the
same stages — identical classification, cost charges and adaptation
points, hence bit-identical virtual time — but collect their access
records and raw-transfer descriptors into shared sinks so the batch entry
point can emit one ``cache.access_batch`` + one ``rma.get_batch`` event
for the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.mpi.datatypes import Datatype
from repro.obs import CACHE_ACCESS_BATCH
from repro.rma.descriptor import OpDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.window import CachedWindow


@dataclass(slots=True)
class CacheGetRequest:
    """One ``get_c`` flowing through the staged cache pipeline."""

    origin: np.ndarray
    target: int
    disp: int
    count: int
    dtype: Datatype
    size: int                #: transfer size in bytes
    quiet: bool = False      #: batch element: suppress the per-op event
    degraded: bool = False   #: served direct by the quarantined cache
    result: int = 0
    #: deferred failure: raised by serve() after the after-passes ran, so
    #: accounting/telemetry stay ordered even for refused gets
    failure: Exception | None = None
    #: batch sinks (shared across one get_batch); None on the scalar path
    access_sink: list[dict[str, Any]] | None = None
    net_sink: list[OpDescriptor] | None = None


class CacheStage:
    """One stage of the cached-get pipeline."""

    name = "stage"

    def before(self, cw: "CachedWindow", req: CacheGetRequest) -> int | None:
        """Serve ``req`` (return payload bytes) or pass (return None)."""
        return None

    def after(self, cw: "CachedWindow", req: CacheGetRequest) -> None:
        """Post-serve pass; runs for every stage, in stage order."""


class CachePipeline:
    """The bound stage sequence of one :class:`CachedWindow`."""

    def __init__(self, stages: list[CacheStage]):
        self.stages = tuple(stages)

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    def serve(self, cw: "CachedWindow", req: CacheGetRequest) -> int:
        for stage in self.stages:
            nbytes = stage.before(cw, req)
            if nbytes is not None:
                req.result = nbytes
                break
        for stage in self.stages:
            stage.after(cw, req)
        if req.failure is not None:
            raise req.failure
        return req.result


class Accounting(CacheStage):
    """Sequence bookkeeping and the per-get accounting event."""

    name = "accounting"

    def before(self, cw: "CachedWindow", req: CacheGetRequest) -> int | None:
        cw._seq += 1
        cw._size_sum += req.size
        return None

    def after(self, cw: "CachedWindow", req: CacheGetRequest) -> None:
        if req.quiet:
            if req.access_sink is not None:
                assert cw.stats.last_access is not None
                req.access_sink.append(
                    {
                        "access": cw.stats.last_access.value,
                        "target": req.target,
                        "disp": req.disp,
                        "nbytes": req.size,
                        "base": req.disp
                        * cw._win._group.disp_units[req.target],
                    }
                )
        else:
            cw._emit_access(req.target, req.disp, req.size)
        cw._sync_fault_counters()


class CacheRecovery(CacheStage):
    """Crash-stop handling: gets targeting a dead rank never reach Miss.

    Elided on the hot path — ``before`` is a no-op until the underlying
    world can fail at all (no fault plan with crash rules -> zero cost,
    bit-identical behaviour).  Otherwise the request is routed to the
    window's recovery logic: ``serve-stale`` serves exact-match pinned
    entries read-only, everything else records a FAILING access and
    defers a ``TargetFailedError`` via ``req.failure``.
    """

    name = "recovery"

    def before(self, cw: "CachedWindow", req: CacheGetRequest) -> int | None:
        if not cw._win._comm.proc.can_fail:
            return None
        cw._observe_failures()
        if req.target not in cw._win._comm.proc.failed_ranks:
            return None
        return cw._serve_failed_target(req)


class Degradation(CacheStage):
    """Graceful degradation: quarantine entry, direct serve, probe."""

    name = "degradation"

    def before(self, cw: "CachedWindow", req: CacheGetRequest) -> int | None:
        if (
            not cw._quarantined
            and cw._fault_streak >= cw.config.quarantine_threshold
        ):
            cw._enter_quarantine()
        if not cw._quarantined:
            return None
        req.degraded = True
        return cw._serve_degraded(req)

    def after(self, cw: "CachedWindow", req: CacheGetRequest) -> None:
        if not req.degraded:
            return
        cw._probe_countdown -= 1
        if cw._probe_countdown <= 0:
            cw._leave_quarantine()


class Consult(CacheStage):
    """Cost-charged index consult; serves full and partial hits."""

    name = "consult"

    def before(self, cw: "CachedWindow", req: CacheGetRequest) -> int | None:
        return cw._consult(req)


class Miss(CacheStage):
    """Remote issue + index insert / eviction; always serves."""

    name = "miss"

    def before(self, cw: "CachedWindow", req: CacheGetRequest) -> int | None:
        return cw._serve_miss(req)


class Adapt(CacheStage):
    """Adaptive-controller check after each non-degraded get."""

    name = "adapt"

    def after(self, cw: "CachedWindow", req: CacheGetRequest) -> None:
        if not req.degraded:
            cw._maybe_adapt()


def build_cache_pipeline() -> CachePipeline:
    """The standard ``get_c`` stage sequence."""
    return CachePipeline(
        [
            Accounting(),
            CacheRecovery(),
            Degradation(),
            Consult(),
            Miss(),
            Adapt(),
        ]
    )


def describe_cached_get(
    cw: "CachedWindow",
    origin: np.ndarray,
    target_rank: int,
    target_disp: int,
    count: int | None,
    datatype: Datatype | None,
    *,
    quiet: bool = False,
    access_sink: list[dict[str, Any]] | None = None,
    net_sink: list[OpDescriptor] | None = None,
) -> CacheGetRequest:
    dtype, count = cw._win._resolve_dtype(origin, count, datatype)
    return CacheGetRequest(
        origin=origin,
        target=target_rank,
        disp=target_disp,
        count=count,
        dtype=dtype,
        size=dtype.transfer_size(count),
        quiet=quiet,
        access_sink=access_sink,
        net_sink=net_sink,
    )


def serve_write(
    cw: "CachedWindow",
    kind: str,
    origin: np.ndarray,
    target_rank: int,
    target_disp: int,
    count: int | None,
    datatype: Datatype | None,
    acc_op: str = "sum",
) -> int:
    """Write-through stage for cached puts/accumulates.

    Writes are never cached (paper Sec. II): pass through to the wrapped
    window's pipeline, then drop any cached entries overlapping the
    written range so a later epoch cannot serve stale bytes.
    """
    dtype, count = cw._win._resolve_dtype(origin, count, datatype)
    if kind == "put":
        nbytes = cw._win.put(origin, target_rank, target_disp, count, dtype)
    else:
        nbytes = cw._win.accumulate(
            origin, target_rank, target_disp, acc_op, count, dtype
        )
    du = cw._win._group.disp_units[target_rank]
    start = target_disp * du
    cw._invalidate_overlapping(
        target_rank, start, start + dtype.extent * count
    )
    return nbytes


def emit_cache_batch(
    cw: "CachedWindow", records: list[dict[str, Any]]
) -> None:
    """One ``cache.access_batch`` accounting event for a ``get_batch``."""
    if not records or not cw.obs.wants(CACHE_ACCESS_BATCH):
        return
    cw._emit(
        CACHE_ACCESS_BATCH,
        count=len(records),
        nbytes=sum(r["nbytes"] for r in records),
        ops=records,
    )
