"""Op descriptors: the one value that flows through the RMA pipeline.

Every one-sided operation — data movement (get/put/accumulate) and
synchronisation (flush/unlock/fence/PSCW complete, plus epoch-opening
locks) — is first *described* (validated, datatype-resolved, byte
footprint computed) and then *issued* through the window's interceptor
pipeline (:mod:`repro.rma.pipeline`).  The descriptor carries everything
an interceptor needs so no concern has to reach back into the op-method
arguments:

* the **target footprint** (``base``/``span`` in target-window bytes),
  exactly what the :mod:`repro.analysis` sanitizer interval-checks;
* the **origin identity** (host address + bytes used), for
  origin-buffer-reuse detection;
* the **policy switches** (``fault_site``, ``retryable``,
  ``epoch_close``), which tell each interceptor whether it applies.

Describing is deliberately clock-free: validation raises the same
``WindowError``/``EpochError`` a pre-pipeline window raised, in the same
order, before any virtual time is charged — so a batch can validate its
epoch bookkeeping once and still be bit-identical to scalar issues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.mpi.datatypes import Datatype
from repro.mpi.errors import WindowError
from repro.obs import (
    RMA_ACCUMULATE,
    RMA_FENCE,
    RMA_FLUSH,
    RMA_GET,
    RMA_LOCK,
    RMA_PUT,
    RMA_UNLOCK,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.window import Window, _PendingOp

#: Descriptor kinds that move payload bytes.
DATA_KINDS = frozenset({"get", "put", "accumulate"})
#: Descriptor kinds that complete outstanding operations.
SYNC_KINDS = frozenset(
    {"flush", "flush_all", "unlock", "unlock_all", "fence", "complete"}
)


@dataclass(slots=True)
class OpDescriptor:
    """One RMA operation, fully resolved and ready to issue.

    Data ops (:data:`DATA_KINDS`) fill the footprint block; sync ops fill
    the completion block.  ``emit_attrs`` are the kind-specific attributes
    of the telemetry event the obs interceptor publishes (data ops build
    them lazily from the footprint instead).
    """

    kind: str
    target: int | None = None
    # -- data-op footprint --------------------------------------------
    disp: int = 0
    count: int = 0
    dtype: Datatype | None = None
    nbytes: int = 0          #: payload bytes moved (transfer size)
    base: int = 0            #: first byte touched in the target window
    span: int = 0            #: extent of the flattened datatype at the target
    blocks: list | None = None  #: flattened (offset, size) block list, computed once
    origin: np.ndarray | None = None   #: caller's origin array
    obuf: np.ndarray | None = None     #: flat uint8 view of ``origin``
    acc_op: str | None = None          #: accumulate reduction op
    # -- sync-op completion -------------------------------------------
    completes: bool = False            #: run the completion interceptor
    targets: set[int] | None = None    #: ranks to complete (None = all)
    barrier: bool = False              #: collective barrier after completion
    finalize: Callable[[], None] | None = None  #: epoch-state mutation hook
    epoch_close: bool = False
    close_targets: set[int] | None = None
    # -- policy switches ----------------------------------------------
    fault_site: str | None = None      #: injector site ("get"/"put"/"flush")
    retryable: bool = False            #: wrap in the retry/backoff loop
    quiet: bool = False                #: suppress the per-op obs event (batch)
    # -- obs ----------------------------------------------------------
    emit_kind: str | None = None
    emit_attrs: dict[str, Any] = field(default_factory=dict)
    # -- results ------------------------------------------------------
    result: int = 0                    #: payload bytes moved
    duration: float = 0.0              #: sync: completion extent (clock - t0)
    pending_op: "_PendingOp | None" = None  #: handle for rget/rput requests

    @property
    def is_data(self) -> bool:
        return self.kind in DATA_KINDS

    def footprint(self) -> dict[str, int]:
        """Sanitizer-facing attrs of a data op (one entry of a batch event)."""
        assert self.obuf is not None
        return {
            "target": self.target,
            "disp": self.disp,
            "nbytes": self.nbytes,
            "base": self.base,
            "span": self.span,
            "origin": int(self.obuf.__array_interface__["data"][0]),
            "onbytes": self.nbytes,
        }


def _origin_bytes(origin: np.ndarray) -> np.ndarray:
    if not origin.flags["C_CONTIGUOUS"]:
        raise WindowError("origin buffer must be C-contiguous")
    return origin.view(np.uint8).reshape(-1)


def _footprint(
    window: "Window", target: int, disp: int, count: int, dtype: Datatype
) -> tuple[int, int, list]:
    """(base, span, blocks) of the op at the target, in target-window bytes.

    ``(span, blocks)`` is a pure function of ``(dtype, count)``, so it is
    memoized per window — applications issue millions of gets over a
    handful of datatype/count shapes.  The shared block list is read-only
    by contract (the move interceptor only iterates it).  The memo is
    bounded: cleared wholesale if an adversarial stream of shapes fills it.
    """
    memo = window._fp_memo
    key = (dtype, count)
    fp = memo.get(key)
    if fp is None:
        if len(memo) >= 512:
            memo.clear()
        blocks = dtype.flatten(count)
        span = blocks[-1][0] + blocks[-1][1] if blocks else 0
        fp = memo[key] = (span, blocks)
    return disp * window._group.disp_units[target], fp[0], fp[1]


def describe_get(
    window: "Window",
    origin: np.ndarray,
    target_rank: int,
    target_disp: int,
    count: int | None,
    datatype: Datatype | None,
    *,
    quiet: bool = False,
    validate_epoch: bool = True,
) -> OpDescriptor:
    """Validate and describe one get (checks ordered as the op method did)."""
    return describe_get_into(
        OpDescriptor(kind="get"),
        window,
        origin,
        target_rank,
        target_disp,
        count,
        datatype,
        quiet=quiet,
        validate_epoch=validate_epoch,
    )


def describe_get_into(
    desc: OpDescriptor,
    window: "Window",
    origin: np.ndarray,
    target_rank: int,
    target_disp: int,
    count: int | None,
    datatype: Datatype | None,
    *,
    quiet: bool = False,
    validate_epoch: bool = True,
) -> OpDescriptor:
    """:func:`describe_get` into a caller-provided (pooled) descriptor.

    Every field a previous use may have set is re-assigned, so a recycled
    frame is indistinguishable from a fresh ``OpDescriptor(kind="get")``.
    """
    dtype, count = window._resolve_dtype(origin, count, datatype)
    window._check_alive()
    window._check_rank(target_rank)
    if validate_epoch:
        window._require_epoch(target_rank, "get")
    if target_disp < 0:
        raise WindowError(f"negative displacement: {target_disp}")
    base, span, blocks = _footprint(window, target_rank, target_disp, count, dtype)
    desc.kind = "get"
    desc.target = target_rank
    desc.disp = target_disp
    desc.count = count
    desc.dtype = dtype
    desc.nbytes = dtype.transfer_size(count)
    desc.base = base
    desc.span = span
    desc.blocks = blocks
    desc.origin = origin
    desc.obuf = None
    desc.fault_site = "get"
    desc.retryable = True
    desc.quiet = quiet
    desc.emit_kind = RMA_GET
    desc.result = 0
    desc.duration = 0.0
    desc.pending_op = None
    return desc


def describe_put(
    window: "Window",
    origin: np.ndarray,
    target_rank: int,
    target_disp: int,
    count: int | None,
    datatype: Datatype | None,
) -> OpDescriptor:
    """Validate and describe one put.

    Mirrors the historical check order: origin contiguity and size are
    checked *before* the epoch (a put with a bad origin raised
    ``WindowError`` even outside an epoch).
    """
    dtype, count = window._resolve_dtype(origin, count, datatype)
    obuf = _origin_bytes(origin)
    nbytes = dtype.transfer_size(count)
    if obuf.nbytes < nbytes:
        raise WindowError(f"origin buffer too small: {obuf.nbytes} < {nbytes}")
    window._check_alive()
    window._check_rank(target_rank)
    window._require_epoch(target_rank, "put")
    if target_disp < 0:
        raise WindowError(f"negative displacement: {target_disp}")
    base, span, blocks = _footprint(window, target_rank, target_disp, count, dtype)
    return OpDescriptor(
        kind="put",
        target=target_rank,
        disp=target_disp,
        count=count,
        dtype=dtype,
        nbytes=nbytes,
        base=base,
        span=span,
        blocks=blocks,
        origin=origin,
        obuf=obuf,
        fault_site="put",
        retryable=True,
        emit_kind=RMA_PUT,
    )


def describe_accumulate(
    window: "Window",
    origin: np.ndarray,
    target_rank: int,
    target_disp: int,
    op: str,
    count: int | None,
    datatype: Datatype | None,
) -> OpDescriptor:
    dtype, count = window._resolve_dtype(origin, count, datatype)
    if not dtype.is_contiguous():
        raise WindowError("accumulate requires a contiguous datatype")
    window._check_alive()
    window._check_rank(target_rank)
    window._require_epoch(target_rank, "accumulate")
    if target_disp < 0:
        raise WindowError(f"negative displacement: {target_disp}")
    nbytes = dtype.transfer_size(count)
    base = target_disp * window._group.disp_units[target_rank]
    return OpDescriptor(
        kind="accumulate",
        target=target_rank,
        disp=target_disp,
        count=count,
        dtype=dtype,
        nbytes=nbytes,
        base=base,
        span=nbytes,
        origin=origin,
        obuf=_origin_bytes(origin)[:nbytes],
        acc_op=op,
        # accumulates are atomic at the target in MPI; the fault plan has
        # no site for them, matching the pre-pipeline behaviour
        fault_site=None,
        retryable=False,
        emit_kind=RMA_ACCUMULATE,
    )


def describe_sync(
    window: "Window",
    kind: str,
    *,
    target: int | None = None,
    targets: set[int] | None = None,
    close_targets: set[int] | None = None,
    barrier: bool = False,
    finalize: Callable[[], None] | None = None,
    retryable: bool = True,
    fault_site: str | None = "flush",
    emit_kind: str | None = None,
    emit_attrs: dict[str, Any] | None = None,
) -> OpDescriptor:
    """Describe a synchronisation op (epoch checks stay in the op method,
    whose error messages carry the window's epoch-state summary)."""
    if emit_kind is None:
        emit_kind = {
            "flush": RMA_FLUSH,
            "flush_all": RMA_FLUSH,
            "unlock": RMA_UNLOCK,
            "unlock_all": RMA_UNLOCK,
            "fence": RMA_FENCE,
            "complete": RMA_FLUSH,
        }[kind]
    return OpDescriptor(
        kind=kind,
        target=target,
        completes=True,
        targets=targets,
        barrier=barrier,
        finalize=finalize,
        epoch_close=True,
        close_targets=close_targets,
        fault_site=fault_site,
        retryable=retryable and fault_site is not None,
        emit_kind=emit_kind,
        emit_attrs=dict(emit_attrs or {}),
    )


def describe_lock(
    window: "Window", target: int | None, lock_type: str
) -> OpDescriptor:
    """Describe an epoch-opening lock: telemetry only, nothing completes."""
    return OpDescriptor(
        kind="lock",
        target=target,
        completes=False,
        epoch_close=False,
        fault_site=None,
        retryable=False,
        emit_kind=RMA_LOCK,
        emit_attrs={"target": target, "lock_type": lock_type},
    )


def describe_get_batch(
    window: "Window", requests: Sequence[tuple]
) -> list[OpDescriptor]:
    """One epoch-bookkeeping pass over a batch of get requests.

    ``requests`` holds ``(origin, target_rank, target_disp[, count
    [, datatype]])`` tuples.  Liveness is checked once, the epoch once per
    *distinct* target; per-op checks (rank range, displacement, bounds)
    still run because they differ per element.  All checks are clock-free,
    so the batch stays bit-identical in virtual time to N scalar gets.
    """
    window._check_alive()
    checked: set[int] = set()
    descs: list[OpDescriptor] = []
    for req in requests:
        origin, target_rank, target_disp = req[0], req[1], req[2]
        count = req[3] if len(req) > 3 else None
        datatype = req[4] if len(req) > 4 else None
        window._check_rank(target_rank)
        if target_rank not in checked:
            window._require_epoch(target_rank, "get")
            checked.add(target_rank)
        descs.append(
            describe_get(
                window,
                origin,
                target_rank,
                target_disp,
                count,
                datatype,
                quiet=True,
                validate_epoch=False,
            )
        )
    return descs
