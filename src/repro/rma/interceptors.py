"""The standard interceptors: one cross-cutting concern each.

Extracted from the pre-pipeline ``repro.mpi.window.Window`` monolith;
every virtual-time charge, injector consultation and telemetry emission
happens in the same order it did inline, so benchmark results and chaos
runs are bit-identical across the refactor (asserted by the golden and
chaos test suites).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.mpi.errors import (
    RMATimeoutError,
    TargetFailedError,
    TransientNetworkError,
    WindowError,
)
from repro.obs import FAULT_INJECTED, FAULT_RETRY, NET_TRANSFER, RMA_GET_BATCH
from repro.rma.descriptor import OpDescriptor, _origin_bytes
from repro.rma.pipeline import Handler, Interceptor, Pipeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.window import Window


class Recovery(Interceptor):
    """Crash-stop fail-fast: refuse operations towards dead ranks.

    Outermost interceptor of both chains on a world that *can* lose ranks
    (a crash plan is active): data ops and epoch-opening locks towards a
    crashed target raise :class:`TargetFailedError` immediately — no time
    is charged and no retry fires, because a crash-stop failure never
    heals.  Completion syncs (flush/unlock) towards dead targets pass
    through and complete gracefully: completion is local in this
    simulation, and survivors must be able to close epochs that still
    have entries cached from the victim (``serve-stale`` recovery mode).
    On a crash-free world the frame is elided at bind time, keeping
    fault-free runs bit-identical.
    """

    name = "recovery"

    def bind(self, window: "Window", call_next: Handler) -> Handler:
        proc = window._comm.proc
        if not proc.can_fail:
            return call_next

        def run(desc: OpDescriptor) -> OpDescriptor:
            target = desc.target
            if (
                target is not None
                and (desc.is_data or desc.kind == "lock")
                and target in proc.failed_ranks
            ):
                raise TargetFailedError(target, desc.kind)
            return call_next(desc)

        return run


class Retry(Interceptor):
    """Retry/backoff: re-issue transient failures, charging virtual time.

    The single owner of the resilience loop (policy:
    :class:`repro.faults.RetryPolicy`): retries
    :class:`TransientNetworkError` / :class:`RMATimeoutError` up to the
    attempt budget, charging each backoff delay to the rank's clock from
    the injector's deterministic ``backoff`` stream.
    """

    name = "retry"

    def bind(self, window: "Window", call_next: Handler) -> Handler:
        if window._faults is None:
            # Fault-free window: nothing can ever raise a retryable error,
            # so skip the wrapper frame on the per-op hot path entirely.
            return call_next

        def run(desc: OpDescriptor) -> OpDescriptor:
            faults = window._faults
            if faults is None or not desc.retryable:
                return call_next(desc)
            policy = window._retry
            attempt = 1
            while True:
                try:
                    return call_next(desc)
                except (TransientNetworkError, RMATimeoutError) as exc:
                    if attempt >= policy.max_attempts:
                        raise
                    delay = policy.delay(attempt, faults.draw("backoff"))
                    window._comm.proc.advance(delay)
                    window.retries += 1
                    if window._obs.wants(FAULT_RETRY):
                        window._emit(
                            FAULT_RETRY,
                            op=desc.fault_site,
                            target=desc.target,
                            attempt=attempt,
                            delay=delay,
                            error=type(exc).__name__,
                        )
                    attempt += 1

        return run


class Move(Interceptor):
    """Simulated transport, data half: move payload bytes (zero time).

    Payloads move at issue time (single address space — see the window
    module docstring); only the pricing interceptor charges clocks.  Bounds
    are checked here, against the target buffer, before any byte moves.
    """

    name = "move"

    def bind(self, window: "Window", call_next: Handler) -> Handler:
        def run(desc: OpDescriptor) -> OpDescriptor:
            tbuf = window._group.buffers[desc.target]
            if desc.kind == "accumulate":
                self._bounds_accumulate(desc, tbuf)
                self._apply_accumulate(desc, tbuf)
            else:
                self._bounds(desc, tbuf)
                if desc.kind == "get":
                    self._gather(desc, tbuf)
                else:
                    self._scatter(desc, tbuf)
            desc.result = desc.nbytes
            return call_next(desc)

        return run

    @staticmethod
    def _bounds(desc: OpDescriptor, tbuf: np.ndarray) -> None:
        if desc.base + desc.span > tbuf.nbytes:
            raise WindowError(
                f"{desc.kind} out of bounds: disp {desc.base} + span "
                f"{desc.span} > window size {tbuf.nbytes} at rank {desc.target}"
            )

    @staticmethod
    def _bounds_accumulate(desc: OpDescriptor, tbuf: np.ndarray) -> None:
        if desc.base + desc.nbytes > tbuf.nbytes:
            raise WindowError(
                f"accumulate out of bounds: [{desc.base}, "
                f"{desc.base + desc.nbytes}) > window size {tbuf.nbytes} "
                f"at rank {desc.target}"
            )

    @staticmethod
    def _gather(desc: OpDescriptor, tbuf: np.ndarray) -> None:
        blocks = desc.blocks
        base = desc.base
        if len(blocks) == 1:
            off, size = blocks[0]
            payload = tbuf[base + off : base + off + size]
        else:
            parts = [tbuf[base + o : base + o + s] for o, s in blocks]
            payload = np.concatenate(parts) if parts else np.empty(0, np.uint8)
        obuf = _origin_bytes(desc.origin)
        nbytes = len(payload)
        if obuf.nbytes < nbytes:
            raise WindowError(
                f"origin buffer too small: {obuf.nbytes} < {nbytes}"
            )
        obuf[:nbytes] = payload
        desc.obuf = obuf
        desc.nbytes = nbytes

    @staticmethod
    def _scatter(desc: OpDescriptor, tbuf: np.ndarray) -> None:
        payload = desc.obuf[: desc.nbytes]
        cursor = 0
        for off, size in desc.blocks:
            tbuf[desc.base + off : desc.base + off + size] = payload[
                cursor : cursor + size
            ]
            cursor += size

    @staticmethod
    def _apply_accumulate(desc: OpDescriptor, tbuf: np.ndarray) -> None:
        np_dtype = desc.origin.dtype
        src = desc.obuf.view(np_dtype)
        dst = tbuf[desc.base : desc.base + desc.nbytes].view(np_dtype)
        op = desc.acc_op
        if op == "sum":
            dst += src
        elif op == "max":
            np.maximum(dst, src, out=dst)
        elif op == "min":
            np.minimum(dst, src, out=dst)
        elif op == "replace":
            dst[:] = src
        else:
            raise WindowError(f"unknown accumulate op: {op}")


class FaultInjection(Interceptor):
    """Fault injection: consult the plan at the op's site; raise on fire.

    Data sites sit *after* the byte move (a transient failure still moved
    the bytes — re-issuing moves the same ones, keeping faulted runs
    bit-identical) and charge the wasted round trip, capped at the per-op
    timeout.  Sync sites fire before completion and waste the timeout.
    """

    name = "fault-injection"

    def bind(self, window: "Window", call_next: Handler) -> Handler:
        if window._faults is None:
            return call_next  # no injector: elide the per-op frame
        from repro.mpi.window import SYNC_OVERHEAD

        def run(desc: OpDescriptor) -> OpDescriptor:
            inj = window._faults
            site = desc.fault_site
            if inj is None or site is None or inj.fire(site, desc.target) is None:
                return call_next(desc)
            if desc.is_data:
                perf = window._comm.perf
                rank = window._comm.rank
                wasted = perf.issue_time(
                    rank, desc.target, desc.nbytes
                ) + perf.get_time(rank, desc.target, desc.nbytes)
                timeout = window._retry.op_timeout
                if timeout is not None:
                    wasted = min(wasted, timeout)
                window._comm.proc.advance(wasted)
                window.faults_injected += 1
                if window._obs.wants(FAULT_INJECTED):
                    window._emit(
                        FAULT_INJECTED,
                        op=site,
                        target=desc.target,
                        nbytes=desc.nbytes,
                        wasted=wasted,
                    )
                raise TransientNetworkError(
                    f"injected transient {site} failure towards rank "
                    f"{desc.target} ({desc.nbytes} B)"
                )
            wasted = window._retry.op_timeout or 10 * SYNC_OVERHEAD
            window._comm.proc.advance(wasted)
            window.faults_injected += 1
            if window._obs.wants(FAULT_INJECTED):
                window._emit(
                    FAULT_INJECTED, op=site, target=desc.target, wasted=wasted
                )
            where = (
                "all ranks" if desc.target is None else f"rank {desc.target}"
            )
            raise RMATimeoutError(
                f"injected synchronisation timeout towards {where}"
            )

        return run


class Pricing(Interceptor):
    """Simulated transport, time half: charge the network cost model.

    Charges the issue overhead, prices the transfer duration, applies
    congestion jitter (which lives here, not in the fault interceptor,
    because it perturbs the priced duration — a stall past the op timeout
    degenerates into a retryable timeout), posts the pending op and keeps
    the byte-accounting diagnostics.
    """

    name = "pricing"

    def bind(self, window: "Window", call_next: Handler) -> Handler:
        from repro.mpi.window import _PendingOp

        perf = window._comm.perf
        rank = window._comm.rank
        # Per-target price memo: distance, issue overhead and the transfer
        # (alpha, bandwidth) are pure functions of the rank pair, so caching
        # them per window cannot change any charged time.
        links: dict[int, tuple] = {}

        def run(desc: OpDescriptor) -> OpDescriptor:
            proc = window._comm.proc
            target = desc.target
            nbytes = desc.nbytes
            link = links.get(target)
            if link is None:
                link = links[target] = perf.link(rank, target)
            dist, issue, alpha, bw = link
            proc.advance(issue)
            duration = alpha + nbytes / bw
            if window._faults is not None:
                stall = window._faults.stall_for(target, duration)
                if stall > 0.0:
                    duration += stall
                    if window._obs.wants(FAULT_INJECTED):
                        window._emit(
                            FAULT_INJECTED,
                            op="jitter",
                            target=target,
                            stall=stall,
                        )
                    timeout = window._retry.op_timeout
                    if timeout is not None and duration > timeout:
                        proc.advance(timeout)
                        window.faults_injected += 1
                        if window._obs.wants(FAULT_INJECTED):
                            window._emit(
                                FAULT_INJECTED,
                                op="timeout",
                                target=target,
                                wasted=timeout,
                            )
                        raise RMATimeoutError(
                            f"transfer of {nbytes} B to rank {target} stalled "
                            f"{stall:.3e}s past the {timeout:.3e}s op timeout"
                        )
            desc.pending_op = _PendingOp(target, proc.clock, duration)
            window._pending.append(desc.pending_op)
            window._bytes_transferred += nbytes
            window._bytes_by_distance[dist] = (
                window._bytes_by_distance.get(dist, 0) + nbytes
            )
            if window._obs.wants(NET_TRANSFER):
                window._emit(
                    NET_TRANSFER,
                    duration=duration,
                    target=target,
                    nbytes=nbytes,
                    distance=dist.name,
                    issue=issue,
                )
            return call_next(desc)

        return run


class Completion(Interceptor):
    """Simulated transport, sync half: complete selected pending ops.

    Advances the clock past the completion of the descriptor's target set,
    runs the optional epoch-state ``finalize`` hook (lock release, PSCW
    access-group reset) and records the synchronisation's extent for the
    obs interceptor.  Locks (``completes=False``) pass straight through.
    """

    name = "completion"

    def bind(self, window: "Window", call_next: Handler) -> Handler:
        def run(desc: OpDescriptor) -> OpDescriptor:
            if not desc.completes:
                return call_next(desc)
            proc = window._comm.proc
            t0 = proc.clock
            window._complete(desc.targets)
            if desc.barrier:
                window._comm.barrier()
            if desc.finalize is not None:
                desc.finalize()
            desc.duration = proc.clock - t0
            return call_next(desc)

        return run


class Obs(Interceptor):
    """Telemetry emission: exactly one event per op, none when disabled.

    Data ops carry the sanitizer footprint (``base``/``span`` at the
    target, ``origin``/``onbytes`` identity); sync ops carry their
    pre-built attrs plus the measured completion extent.  Batched ops
    (``quiet=True``) skip their per-op event — the batch entry point emits
    one accounting event for the whole batch instead.
    """

    name = "obs"

    def bind(self, window: "Window", call_next: Handler) -> Handler:
        def run(desc: OpDescriptor) -> OpDescriptor:
            if desc.quiet or not window._obs.wants(desc.emit_kind):
                return call_next(desc)
            if desc.is_data:
                attrs = {
                    "target": desc.target,
                    "disp": desc.disp,
                    "nbytes": desc.nbytes,
                }
                if desc.kind == "accumulate":
                    attrs["op"] = desc.acc_op
                attrs["base"] = desc.base
                attrs["span"] = desc.span
                attrs["origin"] = int(
                    desc.obuf.__array_interface__["data"][0]
                )
                attrs["onbytes"] = desc.nbytes
                window._emit(desc.emit_kind, **attrs)
            else:
                window._emit(
                    desc.emit_kind, duration=desc.duration, **desc.emit_attrs
                )
            return call_next(desc)

        return run


class EpochClose(Interceptor):
    """Epoch closure: fire the CLaMPI materialisation hooks, bump ``eph``."""

    name = "epoch-close"

    def bind(self, window: "Window", call_next: Handler) -> Handler:
        def run(desc: OpDescriptor) -> OpDescriptor:
            desc = call_next(desc)
            if desc.epoch_close:
                window._close_epoch(desc.close_targets)
            return desc

        return run


def _compile_fault_free_data(window: "Window") -> Handler:
    """Bind-time fusion of the fault-free data chain into one closure.

    On a window with no injector and no crash plan, Recovery, Retry and
    FaultInjection all elide themselves at bind time, leaving
    Move -> Pricing -> Obs — three closure frames per op.  This compiles
    the surviving stages into a single handler executing the exact same
    statements in the exact same order (including the Pricing per-target
    link memo and the NET_TRANSFER-before-per-op-event emission order), so
    virtual time and telemetry are bit-identical to the unfused chain.
    """
    from repro.mpi.window import _PendingOp

    perf = window._comm.perf
    rank = window._comm.rank
    obs_bus = window._obs
    links: dict[int, tuple] = {}

    def run(desc: OpDescriptor) -> OpDescriptor:
        # -- Move: bounds check + payload bytes (zero time) -------------
        tbuf = window._group.buffers[desc.target]
        if desc.kind == "accumulate":
            Move._bounds_accumulate(desc, tbuf)
            Move._apply_accumulate(desc, tbuf)
        else:
            Move._bounds(desc, tbuf)
            if desc.kind == "get":
                Move._gather(desc, tbuf)
            else:
                Move._scatter(desc, tbuf)
        desc.result = desc.nbytes
        # -- Pricing: charge the network cost model ---------------------
        proc = window._comm.proc
        target = desc.target
        nbytes = desc.nbytes
        link = links.get(target)
        if link is None:
            link = links[target] = perf.link(rank, target)
        dist, issue, alpha, bw = link
        proc.advance(issue)
        duration = alpha + nbytes / bw
        desc.pending_op = _PendingOp(target, proc.clock, duration)
        window._pending.append(desc.pending_op)
        window._bytes_transferred += nbytes
        bbd = window._bytes_by_distance
        bbd[dist] = bbd.get(dist, 0) + nbytes
        if obs_bus.wants(NET_TRANSFER):
            window._emit(
                NET_TRANSFER,
                duration=duration,
                target=target,
                nbytes=nbytes,
                distance=dist.name,
                issue=issue,
            )
        # -- Obs: one per-op event, none when gated off -----------------
        if not desc.quiet and obs_bus.wants(desc.emit_kind):
            attrs = {
                "target": target,
                "disp": desc.disp,
                "nbytes": nbytes,
            }
            if desc.kind == "accumulate":
                attrs["op"] = desc.acc_op
            attrs["base"] = desc.base
            attrs["span"] = desc.span
            attrs["origin"] = int(desc.obuf.__array_interface__["data"][0])
            attrs["onbytes"] = nbytes
            window._emit(desc.emit_kind, **attrs)
        return desc

    return run


def _compile_fault_free_sync(window: "Window") -> Handler:
    """Bind-time fusion of the fault-free sync chain into one closure.

    Fuses Completion -> Obs -> EpochClose (the stages surviving bind-time
    elision on a fault-free window) with statement order preserved.
    """
    obs_bus = window._obs

    def run(desc: OpDescriptor) -> OpDescriptor:
        # -- Completion: advance past the selected pending ops ----------
        if desc.completes:
            proc = window._comm.proc
            t0 = proc.clock
            window._complete(desc.targets)
            if desc.barrier:
                window._comm.barrier()
            if desc.finalize is not None:
                desc.finalize()
            desc.duration = proc.clock - t0
        # -- Obs: the sync op's pre-built attrs + measured extent -------
        if not desc.quiet and obs_bus.wants(desc.emit_kind):
            window._emit(
                desc.emit_kind, duration=desc.duration, **desc.emit_attrs
            )
        # -- EpochClose: CLaMPI materialisation hooks, bump eph ---------
        if desc.epoch_close:
            window._close_epoch(desc.close_targets)
        return desc

    return run


def _fault_free(window: "Window") -> bool:
    """No injector and no crash plan: every resilience frame is elidable."""
    return window._faults is None and not window._comm.proc.can_fail


def build_data_pipeline(window: "Window") -> Pipeline:
    """The standard data-op chain (see module docstring for ordering)."""
    icpts = [Recovery(), Retry(), Move(), FaultInjection(), Pricing(), Obs()]
    if _fault_free(window):
        return Pipeline(window, icpts, handler=_compile_fault_free_data(window))
    return Pipeline(window, icpts)


def build_sync_pipeline(window: "Window") -> Pipeline:
    """The standard sync-op chain."""
    icpts = [Recovery(), Retry(), FaultInjection(), Completion(), Obs(), EpochClose()]
    if _fault_free(window):
        return Pipeline(window, icpts, handler=_compile_fault_free_sync(window))
    return Pipeline(window, icpts)


def emit_get_batch(window: "Window", descs: list[OpDescriptor]) -> None:
    """One batched accounting event for a completed ``get_batch``.

    Carries the per-op footprints so the :mod:`repro.analysis` sanitizer
    can interval-check every element of the batch exactly as it does
    scalar gets.
    """
    if not descs or not window._obs.wants(RMA_GET_BATCH):
        return
    window._emit(
        RMA_GET_BATCH,
        count=len(descs),
        nbytes=sum(d.result for d in descs),
        ops=[d.footprint() for d in descs],
    )
