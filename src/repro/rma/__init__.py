"""``repro.rma`` — op descriptors and the composable interceptor pipeline.

The architectural seam between window APIs and everything that happens to
an RMA operation.  Ops are *described* once
(:class:`~repro.rma.descriptor.OpDescriptor`: kind, target footprint,
dtype, origin identity, policy switches) and *issued* through a pipeline
whose interceptors each own exactly one concern — retry/backoff, fault
injection, simulated transport (byte movement + cost-model pricing),
telemetry emission, epoch closure.  The CLaMPI cached-get path composes
the same idea as a staged pipeline (:mod:`repro.rma.cache`).

Future backends (sharding, async progress, multi-transport) plug in here:
a new transport is one interceptor swap, not a window rewrite.  See
``docs/architecture.md`` for the layering diagram and ordering
invariants, ``docs/api.md`` for the descriptor / ``get_batch`` API.
"""

from repro.rma.cache import (
    Accounting,
    Adapt,
    CacheGetRequest,
    CachePipeline,
    CacheRecovery,
    CacheStage,
    Consult,
    Degradation,
    Miss,
    build_cache_pipeline,
    describe_cached_get,
    emit_cache_batch,
    serve_write,
)
from repro.rma.descriptor import (
    DATA_KINDS,
    SYNC_KINDS,
    OpDescriptor,
    describe_accumulate,
    describe_get,
    describe_get_batch,
    describe_lock,
    describe_put,
    describe_sync,
)
from repro.rma.interceptors import (
    Completion,
    EpochClose,
    FaultInjection,
    Move,
    Obs,
    Pricing,
    Recovery,
    Retry,
    build_data_pipeline,
    build_sync_pipeline,
    emit_get_batch,
)
from repro.rma.pipeline import Handler, Interceptor, Pipeline

__all__ = [
    "Accounting",
    "Adapt",
    "CacheGetRequest",
    "CachePipeline",
    "CacheRecovery",
    "CacheStage",
    "Completion",
    "Consult",
    "DATA_KINDS",
    "Degradation",
    "EpochClose",
    "FaultInjection",
    "Handler",
    "Interceptor",
    "Miss",
    "Move",
    "Obs",
    "OpDescriptor",
    "Pipeline",
    "Pricing",
    "Recovery",
    "Retry",
    "SYNC_KINDS",
    "build_cache_pipeline",
    "build_data_pipeline",
    "build_sync_pipeline",
    "describe_accumulate",
    "describe_cached_get",
    "describe_get",
    "describe_get_batch",
    "describe_lock",
    "describe_put",
    "describe_sync",
    "emit_cache_batch",
    "emit_get_batch",
    "serve_write",
]
