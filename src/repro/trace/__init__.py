"""Get-trace recording and locality analysis.

The paper motivates RMA caching with two locality studies:

* Fig. 2 — how often the *same* get is repeated in a Barnes-Hut run
  (up to 3,500 times);
* Fig. 3 — the distribution of get sizes in an LCC run (variable sizes
  ⇒ block caches fragment internally).

:class:`~repro.trace.recorder.TraceRecorder` captures ``(trg, dsp, size)``
tuples from an application run; the analysis helpers compute the reuse
histogram, the size distribution and Denning working sets
(``W(t, tau)``, Sec. III-E).
"""

from repro.trace.advisor import Recommendation, recommend_parameters
from repro.trace.analysis import (
    reuse_histogram,
    size_distribution,
    working_set_sizes,
)
from repro.trace.recorder import GetRecord, TraceRecorder, TracingWindow

__all__ = [
    "GetRecord",
    "Recommendation",
    "TraceRecorder",
    "TracingWindow",
    "recommend_parameters",
    "reuse_histogram",
    "size_distribution",
    "working_set_sizes",
]
