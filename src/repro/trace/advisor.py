"""Parameter sizing advisor based on the working-set constraints.

Sec. III-E of the paper relates CLaMPI's two parameters to the Denning
working set of the get stream::

    |gamma(t, tau)| <= |I_w|        sum_{g in gamma} size(g) <= |S_w|

Given a recorded trace, :func:`recommend_parameters` computes the peak
working-set cardinality and footprint over a sliding window and turns them
into concrete `|I_w|` / `|S_w|` values:

* the index is over-provisioned by the cuckoo load-factor margin (p=4
  sustains ~97% utilisation, we size for ~85% plus the user headroom);
* the storage is padded for cache-line alignment and the user headroom.

Useful both as an offline tool (trace once with a plain window, then run
with a right-sized fixed cache) and as ground truth in tests of the
adaptive controller (which should converge near the recommendation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.trace.analysis import working_set_bytes, working_set_sizes
from repro.trace.recorder import GetRecord
from repro.util import CACHE_LINE, align_up

#: target cuckoo load factor used when sizing |I_w|
_TARGET_LOAD = 0.85


@dataclass(frozen=True)
class Recommendation:
    """Suggested fixed cache parameters for a recorded workload."""

    index_entries: int
    storage_bytes: int
    tau: int
    peak_working_set: int      #: max distinct gets in any tau-window
    peak_footprint: int        #: max distinct bytes in any tau-window


def recommend_parameters(
    records: Sequence[GetRecord],
    tau: int | None = None,
    headroom: float = 1.25,
    min_index: int = 64,
    min_storage: int = 64 * 1024,
) -> Recommendation:
    """Size |I_w| and |S_w| for a recorded get trace.

    ``tau`` defaults to the full trace length (size for *all* reuse, the
    right choice for always-cache workloads); pass a smaller window for
    phase-structured applications.
    """
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1")
    if not records:
        return Recommendation(min_index, min_storage, 0, 0, 0)
    if tau is None:
        tau = len(records)
    peak_ws = int(working_set_sizes(records, tau).max())
    peak_bytes = int(working_set_bytes(records, tau).max())
    aligned_bytes = sum(
        align_up(s, CACHE_LINE)
        for s in _distinct_peak_sizes(records, tau)
    )
    index = max(min_index, int(peak_ws * headroom / _TARGET_LOAD))
    storage = max(min_storage, int(max(peak_bytes, aligned_bytes) * headroom))
    return Recommendation(index, storage, tau, peak_ws, peak_bytes)


def _distinct_peak_sizes(records: Sequence[GetRecord], tau: int) -> list[int]:
    """Sizes of the distinct gets in the window ending at the peak position.

    Used to account for cache-line alignment overhead in |S_w|; a simple
    full-trace distinct set is a close, cheap upper bound.
    """
    best: dict[tuple[int, int], int] = {}
    for r in records:
        key = (r.trg, r.dsp)
        if r.size > best.get(key, -1):
            best[key] = r.size
    return list(best.values())
