"""Recording get traces from application runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass(frozen=True)
class GetRecord:
    """One recorded get: identity (trg, dsp) plus payload size in bytes."""

    trg: int
    dsp: int
    size: int


class TraceRecorder:
    """Accumulates :class:`GetRecord` tuples (one recorder per rank)."""

    def __init__(self) -> None:
        self.records: list[GetRecord] = []

    def record(self, trg: int, dsp: int, size: int) -> None:
        self.records.append(GetRecord(trg, dsp, size))

    def __len__(self) -> int:
        return len(self.records)

    def sizes(self) -> np.ndarray:
        return np.array([r.size for r in self.records], dtype=np.int64)

    def keys(self) -> list[tuple[int, int]]:
        """The (trg, dsp) identity of every recorded get, in order."""
        return [(r.trg, r.dsp) for r in self.records]


class TracingWindow:
    """Window wrapper that records every get before forwarding it.

    Works over any get-capable window (plain, CLaMPI, block-cached), so the
    same application code produces both measurements and traces.
    """

    def __init__(self, window: Any, recorder: TraceRecorder):
        self._win = window
        self.recorder = recorder

    def __getattr__(self, name: str) -> Any:
        return getattr(self._win, name)

    def get(self, origin, target_rank, target_disp, count=None, datatype=None) -> int:
        nbytes = self._win.get(origin, target_rank, target_disp, count, datatype)
        self.recorder.record(target_rank, target_disp, nbytes)
        return nbytes

    def get_blocking(self, origin, target_rank, target_disp, count=None, datatype=None) -> int:
        nbytes = self._win.get_blocking(origin, target_rank, target_disp, count, datatype)
        self.recorder.record(target_rank, target_disp, nbytes)
        return nbytes
