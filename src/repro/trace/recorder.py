"""Recording get traces from application runs.

Since the ``repro.obs`` redesign, tracing rides the one telemetry
pipeline: :class:`TracingWindow` publishes a ``trace.get`` event per get to
an :class:`~repro.obs.EventBus` (chained to the process-global bus, so a
JSONL capture sees the same stream) and :class:`TraceRecorder` is simply a
sink over those events that keeps the historical ``(trg, dsp, size)``
tuple API used by the analysis helpers and the parameter advisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.obs import TRACE_GET, Event, EventBus, Sink, get_bus


@dataclass(frozen=True)
class GetRecord:
    """One recorded get: identity (trg, dsp) plus payload size in bytes."""

    trg: int
    dsp: int
    size: int


class TraceRecorder(Sink):
    """Accumulates :class:`GetRecord` tuples (one recorder per rank).

    Doubles as an event sink: attached to a bus it records every
    ``trace.get`` event, which is how :class:`TracingWindow` feeds it.
    """

    def __init__(self) -> None:
        self.records: list[GetRecord] = []

    def record(self, trg: int, dsp: int, size: int) -> None:
        self.records.append(GetRecord(trg, dsp, size))

    # -- Sink interface -------------------------------------------------
    def handle(self, event: Event) -> None:
        if event.kind == TRACE_GET:
            a = event.attrs
            self.record(a["target"], a["disp"], a["nbytes"])

    def __len__(self) -> int:
        return len(self.records)

    def sizes(self) -> np.ndarray:
        return np.array([r.size for r in self.records], dtype=np.int64)

    def keys(self) -> list[tuple[int, int]]:
        """The (trg, dsp) identity of every recorded get, in order."""
        return [(r.trg, r.dsp) for r in self.records]


class TracingWindow:
    """Window wrapper that records every get before forwarding it.

    Works over any get-capable window (plain, CLaMPI, block-cached), so the
    same application code produces both measurements and traces.  Gets are
    published as ``trace.get`` events on a private bus carrying the
    recorder as a sink and forwarding to the global telemetry bus.
    """

    def __init__(self, window: Any, recorder: TraceRecorder):
        self._win = window
        self.recorder = recorder
        self.obs = EventBus(parent=get_bus())
        self.obs.attach(recorder)
        comm = getattr(window, "comm", None)
        if comm is None:  # e.g. BlockCachedWindow exposes only .raw
            comm = getattr(getattr(window, "raw", None), "comm", None)
        self._rank = comm.rank if comm is not None else -1
        self._proc = comm.proc if comm is not None else None

    def __getattr__(self, name: str) -> Any:
        return getattr(self._win, name)

    def _emit(self, target_rank: int, target_disp: int, nbytes: int) -> None:
        self.obs.emit(
            Event(
                TRACE_GET,
                self._rank,
                self._proc.clock if self._proc is not None else 0.0,
                getattr(self._win, "eph", 0),
                getattr(self._win, "win_id", None),
                attrs={
                    "target": target_rank,
                    "disp": target_disp,
                    "nbytes": nbytes,
                },
            )
        )

    def get(self, origin, target_rank, target_disp, count=None, datatype=None) -> int:
        nbytes = self._win.get(origin, target_rank, target_disp, count, datatype)
        self._emit(target_rank, target_disp, nbytes)
        return nbytes

    def get_blocking(self, origin, target_rank, target_disp, count=None, datatype=None) -> int:
        nbytes = self._win.get_blocking(origin, target_rank, target_disp, count, datatype)
        self._emit(target_rank, target_disp, nbytes)
        return nbytes

    def get_batch(self, requests) -> list[int]:
        # Explicit (not __getattr__ passthrough): every element must still
        # produce its trace.get record, or traces would go blind to
        # batched workloads.
        sizes = self._win.get_batch(requests)
        for req, nbytes in zip(requests, sizes):
            self._emit(req[1], req[2], nbytes)
        return sizes
