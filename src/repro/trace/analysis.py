"""Locality analyses over recorded get traces."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro.trace.recorder import GetRecord


def reuse_histogram(records: Iterable[GetRecord]) -> dict[int, int]:
    """Fig. 2: how many distinct gets are repeated ``y`` times.

    Returns ``{repeat_count: number_of_distinct_gets_with_that_count}``.
    A value like ``{1: 900, 2: 50, 3500: 1}`` reads: 900 gets were issued
    once, 50 twice, and one get was repeated 3,500 times.
    """
    per_key = Counter((r.trg, r.dsp) for r in records)
    hist: Counter[int] = Counter(per_key.values())
    return dict(sorted(hist.items()))


def size_distribution(
    records: Iterable[GetRecord], bin_edges: Sequence[int] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 3: histogram of get payload sizes.

    Returns ``(edges, counts)`` with ``len(edges) == len(counts) + 1``.
    Default bins are powers of two from 8 B to 1 MiB.
    """
    sizes = np.array([r.size for r in records], dtype=np.int64)
    if bin_edges is None:
        bin_edges = [0] + [2**i for i in range(3, 21)]
    edges = np.asarray(bin_edges, dtype=np.int64)
    counts, _ = np.histogram(sizes, bins=edges)
    return edges, counts


def reuse_fraction(records: Sequence[GetRecord]) -> float:
    """Fraction of gets that re-access already-seen (trg, dsp) data."""
    if not records:
        return 0.0
    seen: set[tuple[int, int]] = set()
    repeats = 0
    for r in records:
        key = (r.trg, r.dsp)
        if key in seen:
            repeats += 1
        else:
            seen.add(key)
    return repeats / len(records)


def working_set_sizes(records: Sequence[GetRecord], tau: int) -> np.ndarray:
    """Denning working sets ``|W(t, tau)|`` along the trace (Sec. III-E).

    ``W(t, tau)`` is the set of distinct gets issued in ``[t - tau, t]``;
    returns one value per position ``t`` in the trace.
    """
    if tau < 1:
        raise ValueError("tau must be >= 1")
    out = np.zeros(len(records), dtype=np.int64)
    window: Counter[tuple[int, int]] = Counter()
    for t, r in enumerate(records):
        window[(r.trg, r.dsp)] += 1
        if t >= tau:
            old = records[t - tau]
            okey = (old.trg, old.dsp)
            window[okey] -= 1
            if window[okey] == 0:
                del window[okey]
        out[t] = len(window)
    return out


def working_set_bytes(records: Sequence[GetRecord], tau: int) -> np.ndarray:
    """Total distinct bytes in the working set at each trace position.

    The quantity bounded by |S_w| in the paper's constraint
    ``sum_{g in gamma(t,tau)} size(g) <= |S_w|``.
    """
    if tau < 1:
        raise ValueError("tau must be >= 1")
    out = np.zeros(len(records), dtype=np.int64)
    window: Counter[tuple[int, int]] = Counter()
    sizes: dict[tuple[int, int], int] = {}
    total = 0
    for t, r in enumerate(records):
        key = (r.trg, r.dsp)
        if window[key] == 0:
            sizes[key] = r.size
            total += r.size
        else:
            # keep the largest size seen for the key
            if r.size > sizes[key]:
                total += r.size - sizes[key]
                sizes[key] = r.size
        window[key] += 1
        if t >= tau:
            old = records[t - tau]
            okey = (old.trg, old.dsp)
            window[okey] -= 1
            if window[okey] == 0:
                total -= sizes.pop(okey)
                del window[okey]
        out[t] = total
    return out
