"""``repro.recovery`` — survivor-side helpers for crash-stop failures.

The runtime's failure model is ULFM-flavoured crash-stop: a rank dies
permanently at a planned virtual time (``FaultPlan`` ``crash`` rules),
the scheduler revokes every in-flight and subsequent sync point exactly
once per live rank (:class:`~repro.runtime.RankRevokedError`), and RMA
data ops towards the dead rank fail fast with
:class:`~repro.mpi.errors.TargetFailedError`.  What survivors then do —
re-synchronise, agree on the failure set, shrink their communicator or
window — is this module's job.

Every helper here absorbs :class:`RankRevokedError` with the canonical
*loop-until-stable* pattern: a revoked collective is simply retried, and
because each live rank observes each crash exactly once, the loop
terminates after at most one extra round per concurrent crash.  Code
outside this package should call these helpers instead of hand-rolling
``except RankRevokedError`` (the repo linter enforces this — rule
ANL008 in :mod:`repro.analysis`): keeping the retry idiom in one place
is what makes the recovery protocol auditable.

Typical survivor flow around a sync that a crash may revoke::

    from repro import recovery

    if not recovery.completed(win.flush_all):
        recovery.barrier(comm)          # re-align the survivors
        failed = recovery.agree_failures(comm)
        comm = recovery.shrink(comm)    # or: win = recovery.shrink_window(win)

See ``docs/resilience.md`` for the full failure-model table and a worked
chaos-crash example.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, TypeVar

from repro.mpi.errors import TargetFailedError, WindowRevokedError
from repro.runtime import RankRevokedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.comm import Communicator
    from repro.mpi.window import Window

__all__ = [
    "RankRevokedError",
    "TargetFailedError",
    "WindowRevokedError",
    "agree_failures",
    "barrier",
    "completed",
    "failed_ranks",
    "retrying",
    "shrink",
    "shrink_window",
    "survivors",
]

_T = TypeVar("_T")


def retrying(op: Callable[[], _T]) -> _T:
    """Run ``op`` until it completes without a sync revocation.

    The canonical loop-until-stable pattern: each live rank observes each
    crash exactly once, so the loop retries at most once per concurrent
    crash before the collective goes through on the survivors.
    """
    while True:
        try:
            return op()
        except RankRevokedError:
            continue


def completed(op: Callable[[], object]) -> bool:
    """Run ``op`` once; ``False`` when a crash revoked it mid-sync.

    The branch-friendly face of the protocol for application code: a
    revoked phase returns ``False`` and the caller re-aligns (barrier,
    agreement, shrink) instead of writing its own ``except
    RankRevokedError`` handler.
    """
    try:
        op()
        return True
    except RankRevokedError:
        return False


def barrier(comm: "Communicator") -> None:
    """Barrier over the survivors, absorbing any revocations."""
    retrying(comm.barrier)


def agree_failures(comm: "Communicator") -> frozenset[int]:
    """Collectively agree on the failed-rank set (revocation-safe)."""
    return retrying(comm.agree_failures)


def shrink(comm: "Communicator") -> "Communicator":
    """Survivor communicator after agreement (revocation-safe)."""
    return retrying(comm.shrink)


def shrink_window(win: "Window") -> "Window":
    """Recreate ``win`` over the survivor communicator (revocation-safe).

    The window is revoked first (idempotent) so other survivors that race
    into an op on the old window fail fast with
    :class:`~repro.mpi.errors.WindowRevokedError` instead of hanging.
    """
    win.revoke()
    return retrying(win.shrink)


def survivors(comm: "Communicator") -> tuple[int, ...]:
    """Group members not locally known to have crashed."""
    return comm.alive


def failed_ranks(comm: "Communicator") -> frozenset[int]:
    """Locally known crashed members of ``comm`` (no sync performed)."""
    return comm.failed_ranks
