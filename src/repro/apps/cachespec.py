"""Selecting the caching flavour for an application run.

The paper evaluates every application under (at least) four configurations:
*foMPI* (no cache), CLaMPI *fixed*, CLaMPI *adaptive*, and — for Barnes-Hut
— the *native* block cache.  :class:`CacheSpec` encodes that choice and
builds the right window wrapper over a shared local buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

import numpy as np

from repro import clampi
from repro.baselines import BlockCachedWindow
from repro.mpi.comm import Communicator
from repro.mpi.window import Window
from repro.trace import TraceRecorder, TracingWindow
from repro.util import MiB


class CacheKind(Enum):
    NONE = "none"          #: plain window — the foMPI baseline
    CLAMPI = "clampi"      #: CLaMPI with fixed parameters
    NATIVE = "native"      #: direct-mapped block cache (UPC-style)


@dataclass(frozen=True)
class CacheSpec:
    """Which cache to layer on the application's window, and how."""

    kind: CacheKind = CacheKind.CLAMPI
    mode: clampi.Mode = clampi.Mode.ALWAYS_CACHE
    config: clampi.Config = field(default_factory=clampi.Config)
    #: eviction/admission policy registry name (None — defer to the
    #: config/environment via the clampi.resolve_config precedence)
    policy: str | None = None
    block_size: int = 1024        #: native cache block size
    memory_bytes: int = 1 * MiB   #: native cache memory

    # -- convenience constructors ---------------------------------------
    @classmethod
    def fompi(cls) -> "CacheSpec":
        return cls(kind=CacheKind.NONE)

    @classmethod
    def clampi_fixed(
        cls,
        index_entries: int,
        storage_bytes: int,
        mode: clampi.Mode = clampi.Mode.ALWAYS_CACHE,
        policy: str | None = None,
        **cfg: Any,
    ) -> "CacheSpec":
        return cls(
            kind=CacheKind.CLAMPI,
            mode=mode,
            policy=policy,
            config=clampi.Config(
                index_entries=index_entries,
                storage_bytes=storage_bytes,
                adaptive=False,
                **cfg,
            ),
        )

    @classmethod
    def clampi_adaptive(
        cls,
        index_entries: int,
        storage_bytes: int,
        mode: clampi.Mode = clampi.Mode.ALWAYS_CACHE,
        policy: str | None = None,
        **cfg: Any,
    ) -> "CacheSpec":
        return cls(
            kind=CacheKind.CLAMPI,
            mode=mode,
            policy=policy,
            config=clampi.Config(
                index_entries=index_entries,
                storage_bytes=storage_bytes,
                adaptive=True,
                **cfg,
            ),
        )

    @classmethod
    def native(cls, memory_bytes: int, block_size: int = 1024) -> "CacheSpec":
        return cls(
            kind=CacheKind.NATIVE, memory_bytes=memory_bytes, block_size=block_size
        )

    def with_mode(self, mode: clampi.Mode) -> "CacheSpec":
        return replace(self, mode=mode)

    def with_policy(self, policy: str | None) -> "CacheSpec":
        """Copy with a different eviction/admission policy name."""
        return replace(self, policy=policy)

    @property
    def label(self) -> str:
        from repro.util import format_bytes

        if self.kind is CacheKind.NONE:
            return "foMPI"
        if self.kind is CacheKind.NATIVE:
            return f"native({format_bytes(self.memory_bytes)})"
        flavour = "adaptive" if self.config.adaptive else "fixed"
        pol = f", {self.policy}" if self.policy else ""
        return (
            f"CLaMPI-{flavour}(|I|={self.config.index_entries}, "
            f"|S|={self.config.storage_bytes // 1024} KiB{pol})"
        )

    # --------------------------------------------------------------------
    def make_window(
        self,
        comm: Communicator,
        local_bytes: np.ndarray,
        recorder: TraceRecorder | None = None,
    ) -> Any:
        """Collectively create the window wrapper this spec describes."""
        raw = Window.create(comm, local_bytes)
        if self.kind is CacheKind.NONE:
            win: Any = raw
        elif self.kind is CacheKind.NATIVE:
            win = BlockCachedWindow(
                raw, block_size=self.block_size, memory_bytes=self.memory_bytes
            )
        else:
            win = clampi.wrap(
                raw, mode=self.mode, config=self.config, policy=self.policy
            )
        if recorder is not None:
            win = TracingWindow(win, recorder)
        return win


def cache_stats_of(window: Any) -> dict[str, float]:
    """Uniform stats snapshot across window flavours ({} for plain)."""
    inner = window._win if isinstance(window, TracingWindow) else window
    if isinstance(inner, clampi.CachedWindow):
        return inner.stats.snapshot()
    if isinstance(inner, BlockCachedWindow):
        return inner.stats.as_dict()
    return {}
