"""The paper's applications, implemented over the simulated RMA substrate.

* :mod:`repro.apps.lcc` — distributed Local Clustering Coefficient over
  1-D-partitioned R-MAT graphs (paper Sec. IV-C), with CLaMPI in
  *always-cache* mode.
* :mod:`repro.apps.barnes_hut` — Barnes-Hut N-body force computation over a
  distributed octree (paper Sec. IV-B), with CLaMPI in *user-defined* mode
  (invalidate after every force phase).
* :mod:`repro.apps.bfs` — multi-source BFS (extension beyond the paper):
  reuse *across* traversals of an immutable graph, in *always-cache* mode.
* :mod:`repro.apps.cachespec` — one switch selecting the window flavour
  (CLaMPI fixed/adaptive, native block cache, or plain foMPI-style window)
  so the same application code runs all the paper's configurations.
"""

from repro.apps.cachespec import CacheKind, CacheSpec
from repro.apps.barnes_hut import BarnesHutApp, BHRunResult
from repro.apps.bfs import BFSApp, BFSRunResult
from repro.apps.lcc import LCCApp, LCCRunResult

__all__ = [
    "BFSApp",
    "BFSRunResult",
    "BHRunResult",
    "BarnesHutApp",
    "CacheKind",
    "CacheSpec",
    "LCCApp",
    "LCCRunResult",
]
