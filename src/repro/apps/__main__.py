"""Command-line runner for the paper's applications.

Examples::

    python -m repro.apps lcc --scale 11 --procs 8 --cache clampi
    python -m repro.apps lcc --scale 11 --procs 8 --cache adaptive --trace
    python -m repro.apps bh  --bodies 1500 --procs 8 --cache native
    python -m repro.apps bh  --bodies 1500 --procs 8 --cache none

``--cache`` selects the paper's configurations: ``none`` (foMPI baseline),
``clampi`` (fixed parameters), ``adaptive`` or ``native`` (direct-mapped
block cache).
"""

from __future__ import annotations

import argparse

from repro import clampi
from repro.apps import BarnesHutApp, LCCApp
from repro.apps.cachespec import CacheSpec
from repro.bench.reporting import format_table
from repro.trace import recommend_parameters, reuse_histogram
from repro.util import KiB, format_bytes, format_time


def _spec(args, footprint: int, index_hint: int, mode) -> CacheSpec:
    index = args.index_entries or index_hint
    storage = args.storage_kib * KiB if args.storage_kib else footprint
    if args.cache == "none":
        return CacheSpec.fompi()
    if args.cache == "native":
        return CacheSpec.native(memory_bytes=storage, block_size=args.block_size)
    if args.cache == "adaptive":
        return CacheSpec.clampi_adaptive(index, storage, mode=mode)
    return CacheSpec.clampi_fixed(index, storage, mode=mode)


def _print_outcome(label: str, time_per_item: float, item: str, stats: dict) -> None:
    rows = [["configuration", label], [f"time/{item}", format_time(time_per_item)]]
    if stats:
        if "block_hits" in stats:  # native block cache
            total = stats["block_hits"] + stats["block_misses"]
            rows.append(["block accesses", total])
            if total:
                rows.append(["block hit ratio", f"{stats['block_hits'] / total:.1%}"])
            rows.append(["bytes fetched", format_bytes(stats.get("bytes_fetched", 0))])
        elif stats.get("gets", 0):
            gets = stats["gets"]
            hits = (
                stats.get("hit_full", 0)
                + stats.get("hit_pending", 0)
                + stats.get("hit_partial", 0)
            )
            rows.append(["gets", gets])
            rows.append(["hit ratio", f"{hits / gets:.1%}"])
            rows.append(
                ["network bytes", format_bytes(stats.get("bytes_from_network", 0))]
            )
    print(format_table(["metric", "value"], rows))


def _trace_summary(traces) -> None:
    records = [r for t in traces for r in t.records]
    if not records:
        print("\n(no remote gets were traced)")
        return
    hist = reuse_histogram(records)
    rec = recommend_parameters(records)
    print(
        f"\ntrace: {len(records)} remote gets, {sum(hist.values())} distinct, "
        f"hottest repeated {max(hist)}x"
    )
    print(
        f"advisor recommendation: |I_w| = {rec.index_entries}, "
        f"|S_w| = {format_bytes(rec.storage_bytes)}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.apps", description=__doc__)
    sub = parser.add_subparsers(dest="app", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--procs", type=int, default=8, help="number of ranks")
    common.add_argument(
        "--cache",
        choices=["none", "clampi", "adaptive", "native"],
        default="clampi",
    )
    common.add_argument("--index-entries", type=int, default=None, help="|I_w|")
    common.add_argument("--storage-kib", type=int, default=None, help="|S_w| in KiB")
    common.add_argument("--block-size", type=int, default=1024, help="native block")
    common.add_argument("--trace", action="store_true", help="record + analyse gets")
    common.add_argument("--seed", type=int, default=1)

    p_lcc = sub.add_parser("lcc", parents=[common], help="clustering coefficients")
    p_lcc.add_argument("--scale", type=int, default=10, help="log2 vertices")
    p_lcc.add_argument("--edge-factor", type=int, default=16)

    p_bh = sub.add_parser("bh", parents=[common], help="Barnes-Hut force phase")
    p_bh.add_argument("--bodies", type=int, default=1000)
    p_bh.add_argument("--theta", type=float, default=0.5)

    p_bfs = sub.add_parser("bfs", parents=[common], help="multi-source BFS")
    p_bfs.add_argument("--scale", type=int, default=9, help="log2 vertices")
    p_bfs.add_argument("--edge-factor", type=int, default=8)
    p_bfs.add_argument("--sources", type=int, default=4, help="number of BFS sources")

    args = parser.parse_args(argv)

    if args.app == "bfs":
        import numpy as np

        from repro.apps import BFSApp

        app = BFSApp(scale=args.scale, edge_factor=args.edge_factor, seed=args.seed)
        footprint = app.csr.nedges * 8
        spec = _spec(args, footprint, 2 * app.nvertices, clampi.Mode.ALWAYS_CACHE)
        candidates = np.argsort(app.csr.degrees())[-max(64, args.sources):]
        rng = np.random.default_rng(args.seed)
        sources = rng.choice(candidates, size=args.sources, replace=False).tolist()
        print(
            f"BFS: 2^{args.scale} vertices, {app.csr.nedges} edges, "
            f"{args.sources} sources, P={args.procs}, {spec.label}\n"
        )
        run = app.run(args.procs, sources, spec, trace=args.trace)
        _print_outcome(
            run.label, run.elapsed / max(len(sources), 1), "source", run.merged_stats()
        )
        if args.trace:
            _trace_summary(run.traces)
    elif args.app == "lcc":
        app = LCCApp(scale=args.scale, edge_factor=args.edge_factor, seed=args.seed)
        footprint = app.csr.nedges * 8
        spec = _spec(args, footprint, 2 * app.nvertices, clampi.Mode.ALWAYS_CACHE)
        print(
            f"LCC: 2^{args.scale} vertices, {app.csr.nedges} edges, "
            f"P={args.procs}, {spec.label}\n"
        )
        run = app.run(args.procs, spec, trace=args.trace)
        _print_outcome(run.label, run.vertex_time, "vertex", run.merged_stats())
        if args.trace:
            _trace_summary(run.traces)
    else:
        app = BarnesHutApp(nbodies=args.bodies, seed=args.seed, theta=args.theta)
        footprint = app.tree.nnodes * 128
        spec = _spec(args, footprint, 8192, clampi.Mode.USER_DEFINED)
        if args.block_size == 1024:
            args.block_size = 128  # node-granular default for BH
        print(
            f"Barnes-Hut: N={args.bodies}, theta={args.theta}, "
            f"tree {format_bytes(footprint)}, P={args.procs}, {spec.label}\n"
        )
        run = app.run(args.procs, spec, trace=args.trace)
        _print_outcome(run.label, run.time_per_body, "body", run.merged_stats())
        if args.trace:
            _trace_summary(run.traces)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
