"""Distributed Local Clustering Coefficient (paper Sec. IV-C).

For every locally owned vertex ``v`` the process retrieves ``adj(u)`` of
every neighbour ``u`` — a one-sided get when ``u`` lives on another rank —
and counts how many of ``v``'s neighbour pairs are actually connected:

    LCC(v) = 2 * |{(u, w) : u, w in adj(v), (u, w) in E}|
             / (deg(v) * (deg(v) - 1))

Data reuse: ``adj(u)`` is fetched once per appearance of ``u`` in a local
adjacency list, i.e. ``deg(u)`` times globally — hub vertices of the
scale-free R-MAT graphs are fetched over and over, which is exactly the
locality CLaMPI converts into hits (the window is read-only, so the cache
runs in *always-cache* mode).

Implementation notes
--------------------
* The R-MAT edge list / CSR index is built **once** and shared by all
  simulated ranks (single address space) — on a real machine each rank
  would hold the replicated index; sharing it here only saves host RAM,
  the RMA traffic is identical.
* The traversal completes (flushes) each remote get before the merge step
  that consumes it — the latency-bound pattern of the paper's LCC, which
  is what a cache hit short-circuits.  Every get keeps a private origin
  buffer until its flush (MPI forbids touching origin buffers earlier).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import recovery
from repro.apps.cachespec import CacheSpec, cache_stats_of
from repro.graph import CSRGraph, DistributedGraph, rmat_graph
from repro.mpi.errors import TargetFailedError
from repro.mpi.simmpi import MPIProcess, SimMPI
from repro.net import PerfModel
from repro.trace import TraceRecorder

#: CPU cost of one element-comparison step of the sorted-merge intersection.
MERGE_STEP_TIME = 2e-9
#: Fixed per-vertex bookkeeping cost.
VERTEX_OVERHEAD_TIME = 150e-9


@dataclass
class LCCRunResult:
    """Outcome of one distributed LCC run."""

    nprocs: int
    label: str
    elapsed: float                       #: virtual makespan (seconds)
    rank_times: list[float]              #: per-rank phase time
    vertex_time: float                   #: elapsed / max local vertices
    lcc: np.ndarray                      #: LCC value per vertex (global)
    cache_stats: list[dict] = field(default_factory=list)
    traces: list[TraceRecorder] = field(default_factory=list)
    #: absolute virtual makespan incl. setup (window creation, barrier);
    #: chaos crash plans anchor their death times to this
    makespan: float = 0.0

    def merged_stats(self) -> dict[str, float]:
        """Sum of per-rank cache counters."""
        if not self.cache_stats or not self.cache_stats[0]:
            return {}
        return {
            k: sum(s.get(k, 0) for s in self.cache_stats)
            for k, v in self.cache_stats[0].items()
            # skip the schema tag and non-numeric values (e.g. the v3
            # "policy" name) -- only counters can be summed across ranks
            if k != "schema_version" and isinstance(v, (int, float))
        }

    def max_stat(self, key: str) -> float:
        """Maximum of one counter over ranks (e.g. per-rank adjustments)."""
        return max((s.get(key, 0) for s in self.cache_stats), default=0)


class LCCApp:
    """One R-MAT instance, runnable under any cache configuration."""

    def __init__(
        self,
        scale: int,
        edge_factor: int = 16,
        seed: int = 1,
    ):
        if scale < 2:
            raise ValueError("scale must be >= 2")
        self.scale = scale
        self.nvertices = 1 << scale
        src, dst = rmat_graph(scale, edge_factor * self.nvertices, seed=seed)
        self.csr = CSRGraph.from_edges(src, dst, self.nvertices)
        self._edges = (src, dst)

    # ------------------------------------------------------------------
    def reference_lcc(self) -> np.ndarray:
        """Single-node ground truth for correctness checks."""
        return np.array(
            [self.csr.local_clustering(v) for v in range(self.nvertices)]
        )

    # ------------------------------------------------------------------
    def run(
        self,
        nprocs: int,
        spec: CacheSpec | None = None,
        trace: bool = False,
        perf: PerfModel | None = None,
        faults=None,
        retry=None,
        batch: bool = False,
    ) -> LCCRunResult:
        """Execute the distributed LCC computation on ``nprocs`` ranks.

        ``faults`` (a :class:`repro.faults.FaultPlan`) and ``retry`` (a
        :class:`repro.faults.RetryPolicy`) are forwarded to the simulated
        MPI world for chaos runs; the result must stay bit-identical.

        ``batch=True`` fetches each vertex's neighbour lists through one
        ``get_batch`` + one flush per distinct owner instead of the
        paper's serial get+flush-per-neighbour pattern.  LCC values are
        identical; virtual times differ (transfers overlap), so the
        figure reproductions keep the default.
        """
        spec = spec or CacheSpec.fompi()
        src, dst = self._edges
        mpi = SimMPI(
            nprocs=nprocs,
            perf=perf or PerfModel.spread(nprocs),
            faults=faults,
            retry=retry,
        )
        results = mpi.run(_lcc_rank_program, self.csr, src, dst, spec, trace, batch)

        lcc = np.zeros(self.nvertices)
        rank_times: list[float] = []
        stats: list[dict] = []
        traces: list[TraceRecorder] = []
        max_local = 1
        for r in results:
            if r is None:
                # Rank crashed mid-run (chaos crash scenario): its vertex
                # range stays zero, the survivors' results stand.
                continue
            lo, hi, values, phase_time, st, rec = r
            lcc[lo:hi] = values
            rank_times.append(phase_time)
            stats.append(st)
            if rec is not None:
                traces.append(rec)
            max_local = max(max_local, hi - lo)
        return LCCRunResult(
            nprocs=nprocs,
            label=spec.label,
            elapsed=max(rank_times),
            rank_times=rank_times,
            vertex_time=max(rank_times) / max_local,
            lcc=lcc,
            cache_stats=stats,
            traces=traces,
            makespan=mpi.elapsed,
        )


def _lcc_rank_program(
    mpi: MPIProcess,
    csr: CSRGraph,
    src: np.ndarray,
    dst: np.ndarray,
    spec: CacheSpec,
    trace: bool,
    batch: bool = False,
):
    recorder = TraceRecorder() if trace else None
    graph = DistributedGraph.build(
        mpi.comm_world,
        src,
        dst,
        csr.nvertices,
        lambda comm, buf: spec.make_window(comm, buf, recorder),
        csr=csr,
    )
    win = graph.window
    recovery.barrier(mpi.comm_world)

    t0 = mpi.time
    win.lock_all()
    lo, hi = graph.lo, graph.hi
    values = np.zeros(hi - lo)
    for v in range(lo, hi):
        adj_v = graph.local_adjacency(v)
        deg = adj_v.size
        mpi.compute(VERTEX_OVERHEAD_TIME)
        if deg < 2:
            continue
        # Retrieve every neighbour's adjacency.  The serial traversal is
        # the natural latency-bound pattern of the paper's LCC: each remote
        # adjacency list is needed before the merge step that consumes it,
        # so the get is completed (flushed) as soon as it is issued.  The
        # batched variant issues the whole neighbourhood through one
        # get_batch and flushes each owner once, overlapping the misses.
        if batch:
            bufs = graph.fetch_adjacencies(adj_v)
        else:
            bufs = []
            for u in adj_v:
                du = graph.degree(int(u))
                buf = np.empty(du, dtype=np.int64)
                try:
                    owner, _ = graph.fetch_adjacency(int(u), buf)
                    if owner != mpi.rank:
                        win.flush(owner)
                except TargetFailedError:
                    # The owner crashed and its adjacency is unrecoverable
                    # (or not cached under serve-stale): count only the
                    # links still visible.
                    buf = np.empty(0, dtype=np.int64)
                bufs.append(buf)
        # Triangle counting over the fetched lists.
        links = 0
        steps = 0
        for u, adj_u in zip(adj_v, bufs):
            links += np.intersect1d(adj_v, adj_u, assume_unique=True).size
            steps += deg + adj_u.size
        mpi.compute(steps * MERGE_STEP_TIME)
        values[v - lo] = links / (deg * (deg - 1))
    win.unlock_all()
    phase_time = mpi.time - t0

    return lo, hi, values, phase_time, cache_stats_of(win), recorder
