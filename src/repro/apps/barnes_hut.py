"""Barnes-Hut N-body force computation over a distributed octree
(paper Sec. IV-B).

The Barnes-Hut algorithm (O(N log N)) organises bodies into an octree whose
inner nodes carry the centre of mass of their subtree.  The force phase
visits the tree top-down per body: a cell that is "far enough" (opening
criterion ``size / distance < theta``) contributes through its centre of
mass; otherwise its children are visited recursively.

Distribution follows the Global-Trees style of Larkins et al. (the paper's
reference implementation): the packed node array is block-partitioned in
DFS order over the ranks' RMA windows; every node visit that lands on a
remote block is a one-sided get of one fixed-size node record.  During the
force phase the tree is read-only, so CLaMPI runs in *user-defined* mode
and the cache is invalidated after each force phase (paper Listing 1).

Node record layout (16 float64 = 128 bytes, cache-line aligned)::

    [0:3]  centre of mass (or body position at leaves)
    [3]    mass
    [4]    cell size (side length)
    [5]    number of children (0 for leaves)
    [6]    body id at leaves (-1 otherwise)
    [7]    padding
    [8:16] child node ids (-1 padded)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import recovery
from repro.apps.cachespec import CacheSpec, cache_stats_of
from repro.graph.partition import BlockPartition
from repro.mpi.errors import TargetFailedError
from repro.mpi.simmpi import MPIProcess, SimMPI
from repro.net import PerfModel
from repro.trace import TraceRecorder
from repro import clampi

NODE_FLOATS = 16
NODE_BYTES = NODE_FLOATS * 8

#: CPU cost of one body-cell interaction (a handful of flops).
INTERACTION_TIME = 25e-9
#: CPU cost of deciding whether to open a cell.
VISIT_TIME = 8e-9


# ----------------------------------------------------------------------
# Octree construction (sequential, shared by all simulated ranks)
# ----------------------------------------------------------------------
class Octree:
    """A packed octree over 3-D bodies."""

    def __init__(self, nodes: np.ndarray, root: int, nbodies: int):
        self.nodes = nodes        #: (nnodes, NODE_FLOATS) float64
        self.root = root
        self.nbodies = nbodies

    @property
    def nnodes(self) -> int:
        return self.nodes.shape[0]

    @classmethod
    def build(cls, pos: np.ndarray, mass: np.ndarray) -> "Octree":
        """Build from body positions (n, 3) and masses (n,)."""
        n = pos.shape[0]
        if n == 0:
            raise ValueError("cannot build a tree over zero bodies")
        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        centre = (lo + hi) / 2.0
        size = float(max(np.max(hi - lo), 1e-12))
        records: list[np.ndarray] = []

        def new_record() -> int:
            records.append(np.zeros(NODE_FLOATS))
            records[-1][8:16] = -1.0
            return len(records) - 1

        def build_cell(idx_bodies: np.ndarray, centre: np.ndarray, size: float) -> int:
            me = new_record()
            rec = records[me]
            if idx_bodies.size == 1:
                b = int(idx_bodies[0])
                rec[0:3] = pos[b]
                rec[3] = mass[b]
                rec[4] = size
                rec[5] = 0.0
                rec[6] = float(b)
                return me
            # Partition bodies into octants.
            p = pos[idx_bodies]
            octant = (
                (p[:, 0] > centre[0]).astype(np.int64)
                | ((p[:, 1] > centre[1]).astype(np.int64) << 1)
                | ((p[:, 2] > centre[2]).astype(np.int64) << 2)
            )
            total_mass = float(mass[idx_bodies].sum())
            com = (pos[idx_bodies] * mass[idx_bodies, None]).sum(axis=0) / total_mass
            rec[0:3] = com
            rec[3] = total_mass
            rec[4] = size
            rec[6] = -1.0
            nchildren = 0
            half = size / 4.0
            for o in range(8):
                sel = idx_bodies[octant == o]
                if sel.size == 0:
                    continue
                offs = np.array(
                    [half if o & 1 else -half,
                     half if o & 2 else -half,
                     half if o & 4 else -half]
                )
                child = build_cell(sel, centre + offs, size / 2.0)
                # ``records`` may have grown; re-fetch our record.
                records[me][8 + nchildren] = float(child)
                nchildren += 1
            records[me][5] = float(nchildren)
            return me

        root = build_cell(np.arange(n), centre, size)
        return cls(np.vstack(records), root, n)


def morton_order(pos: np.ndarray, bits: int = 10) -> np.ndarray:
    """Sort order of bodies along a Morton (Z-order) curve.

    Used to assign spatially-close bodies to the same rank, like the
    space-filling-curve partitioning of the reference UPC implementation.
    """
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    q = ((pos - lo) / span * ((1 << bits) - 1)).astype(np.uint64)

    def spread(x: np.ndarray) -> np.ndarray:
        out = np.zeros_like(x)
        for b in range(bits):
            out |= ((x >> np.uint64(b)) & np.uint64(1)) << np.uint64(3 * b)
        return out

    keys = spread(q[:, 0]) | (spread(q[:, 1]) << np.uint64(1)) | (
        spread(q[:, 2]) << np.uint64(2)
    )
    return np.argsort(keys, kind="stable")


# ----------------------------------------------------------------------
# Distributed force computation
# ----------------------------------------------------------------------
@dataclass
class BHRunResult:
    """Outcome of one distributed Barnes-Hut force phase."""

    nprocs: int
    label: str
    elapsed: float                 #: virtual force-phase makespan (seconds)
    rank_times: list[float]
    time_per_body: float           #: elapsed / max local bodies
    forces: np.ndarray             #: (n, 3) accelerations-times-mass
    cache_stats: list[dict] = field(default_factory=list)
    traces: list[TraceRecorder] = field(default_factory=list)
    #: absolute virtual makespan incl. setup (window creation, barrier);
    #: chaos crash plans anchor their death times to this
    makespan: float = 0.0

    def merged_stats(self) -> dict[str, float]:
        if not self.cache_stats or not self.cache_stats[0]:
            return {}
        return {
            k: sum(s.get(k, 0) for s in self.cache_stats)
            for k, v in self.cache_stats[0].items()
            # skip the schema tag and non-numeric values (e.g. the v3
            # "policy" name) -- only counters can be summed across ranks
            if k != "schema_version" and isinstance(v, (int, float))
        }

    def max_stat(self, key: str) -> float:
        """Maximum of one counter over ranks (e.g. per-rank adjustments)."""
        return max((s.get(key, 0) for s in self.cache_stats), default=0)


class BarnesHutApp:
    """One N-body instance, runnable under any cache configuration."""

    def __init__(self, nbodies: int, seed: int = 1, theta: float = 0.5):
        if nbodies < 2:
            raise ValueError("need at least 2 bodies")
        rng = np.random.default_rng(seed)
        # Plummer-ish clustered distribution: denser core, sparse halo.
        r = rng.power(2.5, nbodies)
        phi = rng.uniform(0, 2 * np.pi, nbodies)
        costh = rng.uniform(-1, 1, nbodies)
        sinth = np.sqrt(1 - costh**2)
        self.pos = np.column_stack(
            [r * sinth * np.cos(phi), r * sinth * np.sin(phi), r * costh]
        )
        self.mass = rng.uniform(0.5, 1.5, nbodies)
        self.theta = theta
        self.nbodies = nbodies
        order = morton_order(self.pos)
        self.pos = self.pos[order]
        self.mass = self.mass[order]
        self.tree = Octree.build(self.pos, self.mass)

    # ------------------------------------------------------------------
    def reference_forces(self, eps: float = 1e-3) -> np.ndarray:
        """Exact O(N^2) force computation (ground truth for tests)."""
        n = self.nbodies
        forces = np.zeros((n, 3))
        for i in range(n):
            d = self.pos - self.pos[i]
            r2 = (d**2).sum(axis=1) + eps**2
            r2[i] = np.inf
            f = (self.mass * self.mass[i] / (r2 * np.sqrt(r2)))[:, None] * d
            forces[i] = f.sum(axis=0)
        return forces

    # ------------------------------------------------------------------
    def run(
        self,
        nprocs: int,
        spec: CacheSpec | None = None,
        trace: bool = False,
        perf: PerfModel | None = None,
        eps: float = 1e-3,
        faults=None,
        retry=None,
    ) -> BHRunResult:
        """Run the distributed force phase on ``nprocs`` ranks.

        ``faults`` (a :class:`repro.faults.FaultPlan`) and ``retry`` (a
        :class:`repro.faults.RetryPolicy`) are forwarded to the simulated
        MPI world for chaos runs; the forces must stay bit-identical.
        """
        spec = spec or CacheSpec.fompi()
        if spec.kind.value == "clampi":
            spec = spec.with_mode(clampi.Mode.USER_DEFINED)
        mpi = SimMPI(
            nprocs=nprocs,
            perf=perf or PerfModel.spread(nprocs),
            faults=faults,
            retry=retry,
        )
        results = mpi.run(
            _bh_rank_program, self.tree, self.pos, self.mass, self.theta, spec,
            trace, eps,
        )
        forces = np.zeros((self.nbodies, 3))
        rank_times: list[float] = []
        stats: list[dict] = []
        traces: list[TraceRecorder] = []
        max_local = 1
        for r in results:
            if r is None:
                # Rank crashed mid-run (chaos crash scenario): its bodies
                # keep zero force, the survivors' results stand.
                continue
            lo, hi, f, phase_time, st, rec = r
            forces[lo:hi] = f
            rank_times.append(phase_time)
            stats.append(st)
            if rec is not None:
                traces.append(rec)
            max_local = max(max_local, hi - lo)
        return BHRunResult(
            nprocs=nprocs,
            label=spec.label,
            elapsed=max(rank_times),
            rank_times=rank_times,
            time_per_body=max(rank_times) / max_local,
            forces=forces,
            cache_stats=stats,
            traces=traces,
            makespan=mpi.elapsed,
        )


def _bh_rank_program(
    mpi: MPIProcess,
    tree: Octree,
    pos: np.ndarray,
    mass: np.ndarray,
    theta: float,
    spec: CacheSpec,
    trace: bool,
    eps: float,
):
    recorder = TraceRecorder() if trace else None
    node_part = BlockPartition(tree.nnodes, mpi.size)
    nlo, nhi = node_part.range_of(mpi.rank)
    local_nodes = np.ascontiguousarray(tree.nodes[nlo:nhi]).reshape(-1)
    win = spec.make_window(mpi.comm_world, local_nodes.view(np.uint8), recorder)

    body_part = BlockPartition(tree.nbodies, mpi.size)
    blo, bhi = body_part.range_of(mpi.rank)
    recovery.barrier(mpi.comm_world)

    node_buf = np.empty(NODE_FLOATS, dtype=np.float64)
    blk = node_part.block  # hoisted: fetch_node runs millions of times

    def fetch_node(node_id: int) -> np.ndarray:
        owner = node_id // blk
        local = node_id - owner * blk
        if owner == mpi.rank:
            start = local * NODE_FLOATS
            return local_nodes[start : start + NODE_FLOATS]
        win.get(node_buf, owner, local * NODE_BYTES)
        win.flush(owner)
        return node_buf

    t0 = mpi.time
    # Scoped epoch: unlock_all on exit completes every outstanding get.
    with win.lock_all_epoch():
        eps2 = eps * eps
        theta2 = theta * theta
        sqrt = math.sqrt
        advance = mpi.proc.advance  # bypass the compute() wrapper in the hot loop
        forces = np.zeros((bhi - blo, 3))
        for b in range(blo, bhi):
            pbx, pby, pbz = pos[b]
            mb = float(mass[b])
            ax = ay = az = 0.0
            stack = [tree.root]
            visits = 0
            interactions = 0
            while stack:
                try:
                    rec = fetch_node(stack.pop())
                except TargetFailedError:
                    # The node's owner crashed and its record is not
                    # recoverable from the cache: the whole subtree is
                    # lost; sum the forces still reachable.
                    continue
                visits += 1
                nchildren = int(rec[5])
                dx = rec[0] - pbx
                dy = rec[1] - pby
                dz = rec[2] - pbz
                r2 = dx * dx + dy * dy + dz * dz + eps2
                if nchildren == 0:
                    if int(rec[6]) == b:
                        continue  # the body itself
                    f = mb * rec[3] / (r2 * sqrt(r2))
                    ax += f * dx
                    ay += f * dy
                    az += f * dz
                    interactions += 1
                elif rec[4] * rec[4] < theta2 * r2:
                    # size/dist < theta: far enough, use the centre of mass
                    f = mb * rec[3] / (r2 * sqrt(r2))
                    ax += f * dx
                    ay += f * dy
                    az += f * dz
                    interactions += 1
                else:
                    for c in range(nchildren):
                        stack.append(int(rec[8 + c]))
            advance(visits * VISIT_TIME + interactions * INTERACTION_TIME)
            forces[b - blo, 0] = ax
            forces[b - blo, 1] = ay
            forces[b - blo, 2] = az
        if hasattr(win, "invalidate"):
            win.invalidate()  # paper Listing 1: invalidate before the epoch ends
    phase_time = mpi.time - t0

    return blo, bhi, forces, phase_time, cache_stats_of(win), recorder
