"""Distributed multi-source BFS over RMA windows (extension application).

Not from the paper's evaluation, but squarely in its motivation: an
irregular graph traversal whose remote accesses are data-dependent gets of
adjacency lists.  A *single* BFS touches each vertex once (little reuse);
running BFS from many sources — the standard kernel behind betweenness
centrality and all-pairs distance sketches — re-fetches the same adjacency
lists once per source, which an *always-cache* CLaMPI window converts into
local hits after the first traversal.

Implementation: level-synchronous top-down BFS.  Each rank owns a vertex
block (same 1-D partition as LCC) and expands the frontier vertices it
owns; discovered remote-owned vertices are exchanged via an allgather at
each level barrier (the frontier exchange is collective metadata, the
adjacency fetches are the one-sided traffic being studied).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.cachespec import CacheSpec, cache_stats_of
from repro.graph import CSRGraph, DistributedGraph, rmat_graph
from repro.mpi.simmpi import MPIProcess, SimMPI
from repro.net import PerfModel
from repro.trace import TraceRecorder

#: CPU cost of scanning one adjacency entry during frontier expansion.
SCAN_STEP_TIME = 1.5e-9
#: Fixed per-level bookkeeping cost.
LEVEL_OVERHEAD_TIME = 400e-9


@dataclass
class BFSRunResult:
    """Outcome of one multi-source BFS run."""

    nprocs: int
    label: str
    elapsed: float
    rank_times: list[float]
    distances: np.ndarray          #: (nsources, nvertices) hop counts, -1 unreached
    cache_stats: list[dict] = field(default_factory=list)
    traces: list[TraceRecorder] = field(default_factory=list)

    def merged_stats(self) -> dict[str, float]:
        if not self.cache_stats or not self.cache_stats[0]:
            return {}
        return {
            k: sum(s.get(k, 0) for s in self.cache_stats)
            for k, v in self.cache_stats[0].items()
            # skip the schema tag and non-numeric values (e.g. the v3
            # "policy" name) -- only counters can be summed across ranks
            if k != "schema_version" and isinstance(v, (int, float))
        }


class BFSApp:
    """Multi-source BFS on one R-MAT instance."""

    def __init__(self, scale: int, edge_factor: int = 16, seed: int = 1):
        if scale < 2:
            raise ValueError("scale must be >= 2")
        self.scale = scale
        self.nvertices = 1 << scale
        src, dst = rmat_graph(scale, edge_factor * self.nvertices, seed=seed)
        self.csr = CSRGraph.from_edges(src, dst, self.nvertices)
        self._edges = (src, dst)

    def reference_bfs(self, source: int) -> np.ndarray:
        """Sequential BFS distances (ground truth)."""
        dist = np.full(self.nvertices, -1, dtype=np.int64)
        dist[source] = 0
        frontier = [source]
        level = 0
        while frontier:
            level += 1
            nxt = []
            for v in frontier:
                for u in self.csr.neighbors(v):
                    if dist[u] < 0:
                        dist[u] = level
                        nxt.append(int(u))
            frontier = nxt
        return dist

    def run(
        self,
        nprocs: int,
        sources: list[int],
        spec: CacheSpec | None = None,
        trace: bool = False,
        perf: PerfModel | None = None,
        batch: bool = False,
    ) -> BFSRunResult:
        """Run BFS from every source in sequence on ``nprocs`` ranks.

        ``batch=True`` prefetches each level's remote-owned discoveries
        through one ``get_batch`` + one flush per distinct owner instead
        of a serial get+flush per vertex.  Distances are identical;
        virtual times differ (transfers overlap).
        """
        spec = spec or CacheSpec.fompi()
        for s in sources:
            if not 0 <= s < self.nvertices:
                raise ValueError(f"source {s} out of range")
        src, dst = self._edges
        mpi = SimMPI(nprocs=nprocs, perf=perf or PerfModel.spread(nprocs))
        results = mpi.run(
            _bfs_rank_program, self.csr, src, dst, list(sources), spec, trace, batch
        )
        distances = results[0][0]  # replicated result, identical on all ranks
        rank_times = [r[1] for r in results]
        return BFSRunResult(
            nprocs=nprocs,
            label=spec.label,
            elapsed=max(rank_times),
            rank_times=rank_times,
            distances=distances,
            cache_stats=[r[2] for r in results],
            traces=[r[3] for r in results if r[3] is not None],
        )


def _bfs_rank_program(
    mpi: MPIProcess,
    csr: CSRGraph,
    src: np.ndarray,
    dst: np.ndarray,
    sources: list[int],
    spec: CacheSpec,
    trace: bool,
    batch: bool = False,
):
    recorder = TraceRecorder() if trace else None
    graph = DistributedGraph.build(
        mpi.comm_world,
        src,
        dst,
        csr.nvertices,
        lambda comm, buf: spec.make_window(comm, buf, recorder),
        csr=csr,
    )
    win = graph.window
    comm = mpi.comm_world
    n = csr.nvertices
    mpi.comm_world.barrier()

    t0 = mpi.time
    all_dist = np.full((len(sources), n), -1, dtype=np.int64)
    win.lock_all()
    for si, source in enumerate(sources):
        dist = all_dist[si]
        dist[source] = 0
        frontier = [source] if graph.lo <= source < graph.hi else []
        level = 0
        while True:
            level += 1
            mpi.compute(LEVEL_OVERHEAD_TIME)
            discovered: list[int] = []
            for v in frontier:
                # adjacency of an owned frontier vertex: one (cached) get if
                # it was fetched before from a remote owner — here v is
                # local, so the interesting gets are the neighbours' lists
                # pulled when checking two-hop candidates below
                adj = graph.local_adjacency(v)
                mpi.compute(adj.size * SCAN_STEP_TIME)
                for u in adj:
                    u = int(u)
                    if dist[u] < 0:
                        dist[u] = level
                        discovered.append(u)
            # Vertices discovered this level but owned elsewhere must reach
            # their owner; vertices we own join our next frontier.  The
            # remote-owned ones additionally need their adjacency prefetched
            # (the one-sided traffic): fetch it now so the owner-side expand
            # is accounted — this is the get stream CLaMPI caches.
            next_frontier = []
            remote_fetches: list[int] = []
            for u in discovered:
                if graph.lo <= u < graph.hi:
                    next_frontier.append(u)
                else:
                    deg = graph.degree(u)
                    if deg:
                        if batch:
                            remote_fetches.append(u)
                            continue
                        buf = np.empty(deg, np.int64)
                        owner, _ = graph.fetch_adjacency(u, buf)
                        win.flush(owner)
            if remote_fetches:
                # Frontier expansion, batched: one get_batch for the whole
                # level's remote discoveries, one flush per distinct owner.
                graph.fetch_adjacencies(remote_fetches)
            # level-synchronous exchange of discoveries
            gathered = comm.allgather(
                [(u, int(dist[u])) for u in discovered], nbytes=8 * len(discovered)
            )
            for lst in gathered:
                if lst is None:
                    continue
                for u, d in lst:
                    if dist[u] < 0 or d < dist[u]:
                        dist[u] = d
                        if graph.lo <= u < graph.hi and u not in next_frontier:
                            next_frontier.append(u)
            frontier = sorted(set(next_frontier))
            done = comm.allreduce(len(frontier)) == 0
            if done:
                break
    win.unlock_all()
    phase_time = mpi.time - t0
    return all_dist, phase_time, cache_stats_of(win), recorder
