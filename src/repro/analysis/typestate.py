"""Flow-sensitive epoch/flush typestate verifier (rules ANL009–ANL012).

The dynamic sanitizer (PR 3) only sees the paths a run actually takes; a
misuse on an unexecuted branch ships silently.  This module proves epoch
discipline *statically*: it abstractly interprets each function body over
its CFG (:mod:`repro.analysis.cfg`), tracking

* per-**window** epoch typestate — ``closed`` → ``lock``/``lock_all``/
  ``fence``/PSCW ``start`` → open → ``unlock``/``unlock_all``/
  ``complete``/scoped-``with`` exit → ``closed`` — joined over branches,
  loops (to fixpoint) and exception edges;
* per-**buffer** completion state — a get's destination and a put's
  origin stay ``pending`` until a dominating ``flush``/``flush_all``/
  epoch close (or ``Request.wait()`` for ``rget``/``rput``).

Rules::

    ANL009  an epoch opened here may still be open on some path out of
            the function (including exception edges)
    ANL010  a get's result buffer is read (or overwritten) while the get
            is still in flight
    ANL011  a put/accumulate origin buffer is modified while the op is
            still in flight
    ANL012  an RMA op is issued on a path where no epoch is provably open

**Which names are tracked.**  A variable is a window either by
*provenance* (assigned from ``Window.allocate``/``Window.create``/
``clampi.window_allocate``/a ``*Window`` constructor — initial state
``closed``, full checking) or by *evidence* (a window-specific method
like ``lock_all``/``flush_all``/``lock_all_epoch`` is called on it —
initial state ``unknown``, so ANL012 only fires after a provable close).
Free variables of nested functions get effect tracking but no epoch
findings: their epochs may legitimately be closed by the enclosing scope.

**Interprocedural one-level summaries.**  Every function in a module is
first summarised intraprocedurally: per window-typed parameter (and free
variable), does it open, close, or flush, and does it issue ops that
need a caller-held epoch?  Call sites then apply the summary, so helpers
that flush for the caller do not leave buffers falsely pending.  A bound
epoch-closing method passed as an argument — the
``repro.recovery.retrying(win.flush_all)`` idiom — is assumed invoked,
so the loop-until-stable recovery helpers cause no false positives.
Unknown callees receiving a window havoc its state to ``unknown``
(checking stops rather than guessing).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.cfg import CFG, WithExit, build_cfg
from repro.analysis.diagnostics import (
    RULES,
    VERIFY_RULES,
    Diagnostic,
    Related,
    SuppressionIndex,
    collect_files,
    parse_file,
    sort_diagnostics,
)

# --- abstract statuses -----------------------------------------------------
CLOSED = "closed"
LOCK = "lock"
LOCK_ALL = "lock_all"
FENCE = "fence"
PSCW = "pscw"
UNKNOWN = "unknown"

#: statuses that license RMA ops
_OPEN = frozenset({LOCK, LOCK_ALL, FENCE, PSCW})
#: statuses whose leak at scope exit is a bug (fence epochs are closed by
#: the *next* fence, so an open fence at exit is idiomatic, not a leak)
_LEAKABLE = frozenset({LOCK, LOCK_ALL, PSCW})

_OPEN_VERBS = {
    "lock": LOCK,
    "lock_all": LOCK_ALL,
    "fence": FENCE,
    "start": PSCW,
}
_CLOSE_VERBS = frozenset({"unlock", "unlock_all", "complete"})
_FLUSH_VERBS = frozenset({"flush", "flush_all"})
_EPOCH_CTX_VERBS = {
    "lock_epoch": LOCK,
    "lock_all_epoch": LOCK_ALL,
    "fence_epoch": FENCE,
}
#: ops that require an open epoch; True = records pending state
_OPS = {
    "get": "get",
    "rget": "get",
    "put": "put",
    "rput": "put",
    "accumulate": "put",
    "get_blocking": None,   # completes before returning
    "get_batch": None,      # element buffers live in a list, not names
}

#: method names that are strong evidence the receiver is an RMA window
#: (generic names like get/put/lock/flush alone are not — dict.get,
#: file.flush(0-arg) and mutex.lock() would misfire)
_STRONG_VERBS = frozenset(
    {
        "lock_all", "unlock_all", "flush_all", "lock_epoch",
        "lock_all_epoch", "fence_epoch", "get_blocking", "get_batch",
        "rget", "rput",
    }
)
#: ...and these count as evidence only when called with arguments
_STRONG_IF_ARGS = frozenset({"flush", "lock", "unlock"})

#: dotted callables that construct a window (provenance tracking)
_WINDOW_CONSTRUCTORS = frozenset(
    {"Window", "Window.allocate", "Window.create", "CachedWindow",
     "BlockCachedWindow"}
)
_WINDOW_CONSTRUCTOR_SUFFIXES = ("window_allocate", "shrink_window",
                                "make_window")

#: np.ndarray methods that mutate the buffer in place (ANL011)
_MUTATORS = frozenset(
    {"fill", "sort", "put", "itemset", "resize", "byteswap", "setfield",
     "partition"}
)
#: callables assumed to *consume* (read) array arguments
_READERS_PREFIX = ("np.", "numpy.")
_READER_FNS = frozenset({"int", "float", "bool", "sum", "min", "max", "abs",
                         "print", "str", "repr", "list", "tuple", "sorted"})


def _dotted(node: ast.expr) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return ""
    return ".".join(reversed(parts))


def _is_window_constructor(call: ast.Call) -> bool:
    dotted = _dotted(call.func)
    if not dotted:
        return False
    return dotted in _WINDOW_CONSTRUCTORS or dotted.endswith(
        _WINDOW_CONSTRUCTOR_SUFFIXES
    )


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _shallow_walk(node: ast.AST) -> Iterable[ast.AST]:
    """ast.walk that does not descend into nested function/class scopes."""
    stack = [node]
    while stack:
        n = stack.pop()
        yield n
        for child in ast.iter_child_nodes(n):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def _calls_in_order(node: ast.AST) -> list[ast.Call]:
    calls = [n for n in _shallow_walk(node) if isinstance(n, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


# ---------------------------------------------------------------------------
# abstract state
# ---------------------------------------------------------------------------
class State:
    """Joinable abstract state: window typestates + pending buffers."""

    __slots__ = ("wins", "pend")

    def __init__(self, wins=None, pend=None) -> None:
        #: var -> frozenset[(status, open_line)]
        self.wins: dict[str, frozenset] = dict(wins or {})
        #: var -> frozenset[(kind, window_var, op_line)]
        self.pend: dict[str, frozenset] = dict(pend or {})

    def copy(self) -> "State":
        return State(self.wins, self.pend)

    def join(self, other: "State") -> "State":
        wins = dict(self.wins)
        for k, v in other.wins.items():
            wins[k] = wins.get(k, frozenset()) | v
        pend = dict(self.pend)
        for k, v in other.pend.items():
            pend[k] = pend.get(k, frozenset()) | v
        return State(wins, pend)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, State)
            and self.wins == other.wins
            and self.pend == other.pend
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((frozenset(self.wins.items()), frozenset(self.pend.items())))

    # -- helpers -----------------------------------------------------------
    def statuses(self, var: str) -> frozenset:
        return frozenset(s for s, _l in self.wins.get(var, frozenset()))

    def set_win(self, var: str, status: str, line: int = 0) -> None:
        self.wins[var] = frozenset({(status, line)})

    def complete(self, win: str) -> None:
        """An epoch-close/flush on ``win``: retire its pending buffers."""
        for buf, entries in list(self.pend.items()):
            kept = frozenset(e for e in entries if e[1] != win)
            if kept:
                self.pend[buf] = kept
            else:
                self.pend.pop(buf)

    def kill(self, var: str) -> None:
        self.wins.pop(var, None)
        self.pend.pop(var, None)


# ---------------------------------------------------------------------------
# one-level interprocedural summaries
# ---------------------------------------------------------------------------
@dataclass
class VarEffect:
    """What a callee does to one window-typed parameter / free variable."""

    may_flush: bool = False    #: some path flushes/closes -> retire pending
    needs_epoch: bool = False  #: issues ops assuming the caller holds an epoch
    #: exit typestates reachable from an ``unknown`` entry state
    exit_states: frozenset = frozenset()


@dataclass
class Summary:
    """Intraprocedural summary of one function definition."""

    params: list = field(default_factory=list)          #: positional names
    effects: dict = field(default_factory=dict)         #: name -> VarEffect


# ---------------------------------------------------------------------------
# per-function analysis
# ---------------------------------------------------------------------------
class _FnAnalyzer:
    def __init__(
        self,
        path: str,
        name: str,
        body: list,
        params: list,
        summaries: dict,
        collect_diags: bool,
    ) -> None:
        self.path = path
        self.name = name
        self.body = body
        self.params = params
        self.summaries = summaries
        self.collect_diags = collect_diags
        self.diags: dict[tuple, Diagnostic] = {}
        self.effects: dict[str, VarEffect] = {}
        #: request var -> (buffer var, window var, op line)
        self._requests: dict[str, tuple] = {}
        #: With node id -> [(window var, alias or None, status, line)]
        self._with_epochs: dict[int, list] = {}
        self._classify_vars()

    # ------------------------------------------------------------------
    def _classify_vars(self) -> None:
        """Find window-typed names and their class (evidence tier)."""
        assigned: set[str] = set(self.params)
        evidence: set[str] = set()
        for node in _shallow_walk(ast.Module(body=self.body, type_ignores=[])):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    for n in ast.walk(t):
                        if isinstance(n, ast.Name):
                            assigned.add(n.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for n in ast.walk(node.target):
                    if isinstance(n, ast.Name):
                        assigned.add(n.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for n in ast.walk(item.optional_vars):
                            if isinstance(n, ast.Name):
                                assigned.add(n.id)
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                ):
                    verb = func.attr
                    if verb in _STRONG_VERBS or (
                        verb in _STRONG_IF_ARGS and (node.args or node.keywords)
                    ):
                        evidence.add(func.value.id)
        #: name -> "param" | "local" | "free"
        self.var_class: dict[str, str] = {}
        for name in evidence:
            if name in self.params:
                self.var_class[name] = "param"
            elif name in assigned:
                self.var_class[name] = "local"
            else:
                self.var_class[name] = "free"

    def _tracked(self, state: State, name: str) -> bool:
        return name in state.wins

    def _reports_for(self, name: str) -> bool:
        """Free variables get effect tracking but no epoch findings."""
        return self.collect_diags and self.var_class.get(name) != "free"

    # ------------------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        cfg = build_cfg(self.body)
        entry_state = State()
        for p in self.params:
            if self.var_class.get(p) == "param":
                entry_state.set_win(p, UNKNOWN)
        for name, cls in self.var_class.items():
            if cls == "free":
                entry_state.set_win(name, UNKNOWN)

        block_in: dict[int, State] = {cfg.entry: entry_state}
        exit_states: list[State] = []
        worklist = [cfg.entry]
        visits: dict[int, int] = {}
        while worklist:
            bid = worklist.pop()
            if bid in (cfg.exit, cfg.raise_exit):
                continue
            visits[bid] = visits.get(bid, 0) + 1
            if visits[bid] > 200:  # safety valve; lattice is finite anyway
                continue
            state = block_in[bid].copy()
            block = cfg.block(bid)
            exc_acc = state.copy()
            for atom in block.atoms:
                self._atom(atom, state)
                exc_acc = exc_acc.join(state)
            for target in block.exc:
                self._flow(cfg, target, exc_acc, "raise", block, block_in,
                           worklist, exit_states)
            for dst, kind in block.succs:
                self._flow(cfg, dst, state, kind, block, block_in, worklist,
                           exit_states)

        for st in exit_states:
            self._record_exit_effects(st)
        return sort_diagnostics(self.diags.values())

    def _flow(self, cfg: CFG, dst: int, state: State, kind: str,
              src_block, block_in, worklist, exit_states) -> None:
        if dst == cfg.exit or dst == cfg.raise_exit:
            exceptional = kind == "raise" or dst == cfg.raise_exit
            self._check_leaks(state, src_block, exceptional)
            if dst == cfg.exit:
                exit_states.append(state.copy())
            return
        prev = block_in.get(dst)
        joined = state if prev is None else prev.join(state)
        if prev is None or joined != prev:
            block_in[dst] = joined
            if dst not in worklist:
                worklist.append(dst)

    # ------------------------------------------------------------------
    def _record_exit_effects(self, state: State) -> None:
        for name, cls in self.var_class.items():
            eff = self.effects.setdefault(name, VarEffect())
            eff.exit_states = eff.exit_states | state.wins.get(
                name, frozenset()
            )
        # provenance-tracked locals are invisible to callers: no summary

    def _effect(self, name: str) -> VarEffect:
        return self.effects.setdefault(name, VarEffect())

    # ------------------------------------------------------------------
    def _report(self, rule: str, line: int, message: str,
                related: tuple = (), fix: str = "") -> None:
        if not self.collect_diags:
            return
        key = (rule, line, message)
        if key not in self.diags:
            self.diags[key] = Diagnostic(
                self.path, line, rule, message, related=related,
                fix=fix or RULES[rule].fix,
            )

    def _check_leaks(self, state: State, src_block, exceptional: bool) -> None:
        exit_line = 0
        for atom in reversed(src_block.atoms):
            lineno = getattr(atom, "lineno", None)
            if lineno:
                exit_line = lineno
                break
        how = "an exception escapes" if exceptional else "the function returns"
        for name, states in sorted(state.wins.items()):
            if not self._reports_for(name):
                continue
            for status, line in sorted(states):
                if status in _LEAKABLE and line > 0:
                    verb = "start" if status == PSCW else status
                    related = (
                        Related(self.path, exit_line or line,
                                f"path leaves `{self.name}` here"),
                    )
                    self._report(
                        "ANL009", line,
                        f"epoch opened by {name}.{verb}() may still be open "
                        f"when {how}; close it on every path",
                        related=related,
                    )

    # ------------------------------------------------------------------
    # atom interpretation
    # ------------------------------------------------------------------
    def _atom(self, atom, state: State) -> None:
        if isinstance(atom, WithExit):
            for win, alias, _status, _line in self._with_epochs.get(
                id(atom.node), ()
            ):
                state.set_win(win, CLOSED)
                state.complete(win)
                self._effect(win).may_flush = True
                if alias is not None:
                    state.set_win(alias, CLOSED)
            return
        if isinstance(atom, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            return
        if isinstance(atom, (ast.If, ast.While)):
            self._eval(atom.test, state)
            return
        if isinstance(atom, ast.Match):
            self._eval(atom.subject, state)
            return
        if isinstance(atom, (ast.For, ast.AsyncFor)):
            self._eval(atom.iter, state, iter_read=True)
            for n in ast.walk(atom.target):
                if isinstance(n, ast.Name):
                    state.kill(n.id)
            return
        if isinstance(atom, (ast.With, ast.AsyncWith)):
            self._with_enter(atom, state)
            return
        if isinstance(atom, ast.Assign):
            self._eval(atom.value, state)
            self._assign(atom.targets, atom.value, state, atom.lineno)
            return
        if isinstance(atom, ast.AnnAssign):
            if atom.value is not None:
                self._eval(atom.value, state)
                self._assign([atom.target], atom.value, state, atom.lineno)
            return
        if isinstance(atom, ast.AugAssign):
            self._eval(atom.value, state)
            self._eval(atom.target, state, aug_target=True)
            return
        if isinstance(atom, ast.Return):
            if atom.value is not None:
                self._eval(atom.value, state)
            return
        if isinstance(atom, ast.Raise):
            if atom.exc is not None:
                self._eval(atom.exc, state)
            return
        if isinstance(atom, ast.Assert):
            self._eval(atom.test, state)
            return
        if isinstance(atom, ast.Delete):
            for t in atom.targets:
                if isinstance(t, ast.Name):
                    state.kill(t.id)
            return
        if isinstance(atom, ast.Expr):
            self._eval(atom.value, state)
            return
        # anything else: evaluate child expressions generically
        for child in ast.iter_child_nodes(atom):
            if isinstance(child, ast.expr):
                self._eval(child, state)

    # ------------------------------------------------------------------
    def _assign(self, targets: list, value, state: State, line: int) -> None:
        single = (
            targets[0]
            if len(targets) == 1 and isinstance(targets[0], ast.Name)
            else None
        )
        if single is not None:
            name = single.id
            state.kill(name)
            if isinstance(value, ast.Call):
                if _is_window_constructor(value):
                    state.set_win(name, CLOSED)
                    self.var_class.setdefault(name, "local")
                    self.var_class[name] = self.var_class.get(name, "local")
                    # provenance upgrades evidence: full checking
                    if self.var_class[name] == "free":
                        self.var_class[name] = "local"
                    return
                func = value.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and self._tracked(state, func.value.id)
                ):
                    win = func.value.id
                    if func.attr == "shrink":
                        state.set_win(name, CLOSED)
                        return
                    if func.attr in ("rget", "rput") and value.args:
                        first = value.args[0]
                        if isinstance(first, ast.Name):
                            self._requests[name] = (first.id, win, line)
                        return
            if isinstance(value, ast.Name) and self._tracked(state, value.id):
                state.wins[name] = state.wins[value.id]
                self.var_class.setdefault(
                    name, self.var_class.get(value.id, "local")
                )
                return
            if self.var_class.get(name) in ("param", "local"):
                state.set_win(name, UNKNOWN)
            return
        for t in targets:
            self._target_write(t, state)

    def _target_write(self, t, state: State) -> None:
        """Assignment target that is not a single plain Name.

        ``buf[...] = v`` *writes into* a buffer (pending hazards apply);
        only whole-name rebinding kills tracking.
        """
        for n in _shallow_walk(t):
            if isinstance(n, ast.Subscript) and isinstance(n.value, ast.Name):
                self._flag_get_use(state, n.value.id, n.lineno, "overwritten")
                self._flag_put_write(state, n.value.id, n.lineno)
            elif isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
                state.kill(n.id)

    # ------------------------------------------------------------------
    def _with_enter(self, stmt, state: State) -> None:
        epochs: list = []
        for item in stmt.items:
            expr = item.context_expr
            alias = (
                item.optional_vars.id
                if isinstance(item.optional_vars, ast.Name)
                else None
            )
            handled = False
            if isinstance(expr, ast.Call):
                func = expr.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and self._tracked(state, func.value.id)
                    and func.attr in _EPOCH_CTX_VERBS
                ):
                    win = func.value.id
                    status = _EPOCH_CTX_VERBS[func.attr]
                    state.set_win(win, status, expr.lineno)
                    if alias is not None:
                        state.wins[alias] = state.wins[win]
                        self.var_class.setdefault(
                            name := alias, self.var_class.get(win, "local")
                        )
                        del name
                    epochs.append((win, alias, status, expr.lineno))
                    handled = True
                elif _is_window_constructor(expr) and alias is not None:
                    state.set_win(alias, CLOSED)
                    self.var_class.setdefault(alias, "local")
                    handled = True
            if not handled:
                self._eval(expr, state)
        if epochs:
            self._with_epochs[id(stmt)] = epochs

    # ------------------------------------------------------------------
    # expression evaluation: uses scan + call effects, in source order
    # ------------------------------------------------------------------
    def _eval(self, expr, state: State, iter_read: bool = False,
              aug_target: bool = False) -> None:
        self._scan_uses(expr, state, iter_read=iter_read,
                        aug_target=aug_target)
        for call in _calls_in_order(expr):
            self._apply_call(call, state)

    # -- pending-buffer uses ------------------------------------------------
    def _pending_kinds(self, state: State, name: str):
        return state.pend.get(name, frozenset())

    def _flag_get_use(self, state: State, name: str, line: int,
                      how: str) -> None:
        entries = [e for e in self._pending_kinds(state, name)
                   if e[0] == "get"]
        if entries and self.collect_diags:
            _kind, win, op_line = sorted(entries)[0]
            self._report(
                "ANL010", line,
                f"buffer `{name}` is {how} while a get into it is still in "
                f"flight; its contents are undefined until `{win}` is flushed",
                related=(Related(self.path, op_line,
                                 "pending get issued here"),),
            )

    def _flag_put_write(self, state: State, name: str, line: int) -> None:
        entries = [e for e in self._pending_kinds(state, name)
                   if e[0] == "put"]
        if entries and self.collect_diags:
            _kind, win, op_line = sorted(entries)[0]
            self._report(
                "ANL011", line,
                f"origin buffer `{name}` is modified while a put from it is "
                f"still in flight; flush `{win}` first",
                related=(Related(self.path, op_line,
                                 "pending put issued here"),),
            )

    def _scan_uses(self, expr, state: State, iter_read: bool = False,
                   aug_target: bool = False) -> None:
        if not state.pend:
            return

        def reads(name: str, line: int, how: str) -> None:
            self._flag_get_use(state, name, line, how)

        def writes(name: str, line: int) -> None:
            self._flag_get_use(state, name, line, "overwritten")
            self._flag_put_write(state, name, line)

        if aug_target and isinstance(expr, ast.Name):
            reads(expr.id, expr.lineno, "read")
            writes(expr.id, expr.lineno)
            return
        if iter_read and isinstance(expr, ast.Name):
            reads(expr.id, expr.lineno, "iterated over")

        for node in _shallow_walk(expr):
            if isinstance(node, ast.Subscript):
                if isinstance(node.value, ast.Name):
                    name = node.value.id
                    if isinstance(node.ctx, (ast.Store, ast.Del)):
                        writes(name, node.lineno)
                    else:
                        reads(name, node.lineno, "read")
            elif isinstance(node, (ast.BinOp,)):
                for operand in (node.left, node.right):
                    if isinstance(operand, ast.Name):
                        reads(operand.id, operand.lineno, "read")
            elif isinstance(node, ast.UnaryOp):
                if isinstance(node.operand, ast.Name):
                    reads(node.operand.id, node.operand.lineno, "read")
            elif isinstance(node, ast.Compare):
                for operand in (node.left, *node.comparators):
                    if isinstance(operand, ast.Name):
                        reads(operand.id, operand.lineno, "read")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ):
                    name = func.value.id
                    if name in state.pend:
                        if func.attr in _MUTATORS:
                            writes(name, node.lineno)
                        else:
                            reads(name, node.lineno,
                                  f"read (via .{func.attr}())")
                dotted = _dotted(func)
                if dotted.startswith(_READERS_PREFIX) or dotted in _READER_FNS:
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            reads(arg.id, arg.lineno, "read")

    # -- call effects -------------------------------------------------------
    def _apply_call(self, call: ast.Call, state: State) -> None:
        func = call.func
        # 1. method call on a tracked window
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and self._tracked(state, func.value.id)
        ):
            self._window_verb(func.value.id, func.attr, call, state)
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            # request completion: r.wait() retires the rget/rput buffer
            req = self._requests.get(func.value.id)
            if req is not None and func.attr == "wait":
                buf, _win, op_line = req
                entries = state.pend.get(buf)
                if entries:
                    kept = frozenset(
                        e for e in entries if e[2] != op_line
                    )
                    if kept:
                        state.pend[buf] = kept
                    else:
                        state.pend.pop(buf)
        # 2. bound epoch/flush methods passed as arguments are assumed
        #    invoked: recovery.retrying(win.flush_all) completes, etc.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if (
                isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and self._tracked(state, arg.value.id)
            ):
                self._bound_method_effect(arg.value.id, arg.attr, call, state)
        # 3. known callee: apply its one-level summary; unknown callee:
        #    havoc any window passed as a plain argument
        if isinstance(func, ast.Name):
            summary = self.summaries.get(func.id)
        else:
            summary = None
        window_args: list[tuple[str, str | None]] = []
        for idx, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and self._tracked(state, arg.id):
                pname = (
                    summary.params[idx]
                    if summary is not None and idx < len(summary.params)
                    else None
                )
                window_args.append((arg.id, pname))
        for kw in call.keywords:
            if isinstance(kw.value, ast.Name) and self._tracked(
                state, kw.value.id
            ):
                window_args.append((kw.value.id, kw.arg))
        for win, pname in window_args:
            if summary is not None:
                eff = summary.effects.get(pname) if pname else None
                self._apply_summary_effect(win, eff, call, state)
            elif not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == win
            ):
                # unknown callee with the window as an argument: havoc
                state.set_win(win, UNKNOWN)
                state.complete(win)

    def _apply_summary_effect(self, win: str, eff: VarEffect | None,
                              call: ast.Call, state: State) -> None:
        if eff is None:
            state.set_win(win, UNKNOWN)
            state.complete(win)
            return
        if eff.may_flush:
            state.complete(win)
            self._effect(win).may_flush = True
        statuses = state.statuses(win)
        if eff.needs_epoch and statuses and statuses <= {CLOSED}:
            if self._reports_for(win):
                self._report(
                    "ANL012", call.lineno,
                    f"call issues RMA ops on `{win}` but no epoch is open "
                    "here",
                )
        exit_statuses = frozenset(s for s, _l in eff.exit_states)
        if not exit_statuses or exit_statuses == {UNKNOWN}:
            return  # callee leaves the epoch state alone
        if UNKNOWN in exit_statuses:
            state.set_win(win, UNKNOWN)
            return
        state.wins[win] = frozenset(
            (s, call.lineno if s in _LEAKABLE else 0)
            for s, _l in eff.exit_states
        )

    def _bound_method_effect(self, win: str, verb: str, call: ast.Call,
                             state: State) -> None:
        eff = self._effect(win)
        if verb in _FLUSH_VERBS:
            state.complete(win)
            eff.may_flush = True
        elif verb in _CLOSE_VERBS:
            state.set_win(win, CLOSED)
            state.complete(win)
            eff.may_flush = True
        elif verb in _OPEN_VERBS:
            status = _OPEN_VERBS[verb]
            state.set_win(win, status, call.lineno)
            if status == FENCE:
                state.complete(win)
                eff.may_flush = True

    def _window_verb(self, win: str, verb: str, call: ast.Call,
                     state: State) -> None:
        eff = self._effect(win)
        if verb in _OPEN_VERBS:
            status = _OPEN_VERBS[verb]
            if status == FENCE:
                state.complete(win)
                eff.may_flush = True
            state.set_win(win, status, call.lineno)
            return
        if verb in _CLOSE_VERBS:
            state.set_win(win, CLOSED)
            state.complete(win)
            eff.may_flush = True
            return
        if verb in _FLUSH_VERBS:
            state.complete(win)
            eff.may_flush = True
            return
        if verb == "free":
            state.set_win(win, CLOSED)
            state.complete(win)
            return
        if verb in _OPS:
            statuses = state.statuses(win)
            if UNKNOWN in statuses:
                eff.needs_epoch = True
            elif CLOSED in statuses and self._reports_for(win):
                where = (
                    "on a path where no epoch is provably open"
                    if statuses & _OPEN
                    else "with no epoch open"
                )
                self._report(
                    "ANL012", call.lineno,
                    f"{win}.{verb}() {where}; lock/lock_all/fence first",
                )
            kind = _OPS[verb]
            if kind is not None and call.args:
                first = call.args[0]
                if isinstance(first, ast.Name):
                    buf = first.id
                    if kind == "put":
                        self._flag_get_use(state, buf, call.lineno,
                                           "used as a put origin")
                    else:
                        self._flag_get_use(
                            state, buf, call.lineno,
                            "reused as a get destination",
                        )
                        self._flag_put_write(state, buf, call.lineno)
                    state.pend[buf] = state.pend.get(buf, frozenset()) | {
                        (kind, win, call.lineno)
                    }


# ---------------------------------------------------------------------------
# module driver
# ---------------------------------------------------------------------------
def _function_params(fn) -> list:
    a = fn.args
    return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]


def _summarize(path: str, fn, summaries: dict) -> Summary:
    analyzer = _FnAnalyzer(
        path, fn.name, fn.body, _function_params(fn), summaries={},
        collect_diags=False,
    )
    analyzer.run()
    return Summary(params=_function_params(fn), effects=analyzer.effects)


def verify_source(tree: ast.Module, path: str) -> list[Diagnostic]:
    """All ANL009–ANL012 findings for one parsed module."""
    functions = [
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    # phase 1: one-level summaries (callees treated as unknown inside)
    summaries: dict[str, Summary] = {}
    for fn in functions:
        summaries[fn.name] = _summarize(path, fn, summaries)
    # phase 2: diagnose every scope with summaries available
    diags: list[Diagnostic] = []
    module_body = [
        s for s in tree.body
        if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef))
    ]
    scopes = [("<module>", module_body, [])] + [
        (fn.name, fn.body, _function_params(fn)) for fn in functions
    ]
    for name, body, params in scopes:
        analyzer = _FnAnalyzer(
            path, name, body, params, summaries, collect_diags=True
        )
        diags.extend(analyzer.run())
    return sort_diagnostics(diags)


def verify_file(path: Path) -> list[Diagnostic]:
    """Typestate-verify one file, applying suppressions (incl. ANL013)."""
    tree, src, parse_diags = parse_file(path)
    if tree is None:
        return parse_diags
    supp = SuppressionIndex(str(path), src)
    diags = supp.filter(verify_source(tree, str(path)))
    diags.extend(supp.unused(VERIFY_RULES))
    return diags


def run_verify(paths: Iterable[str | Path], cache=None) -> list[Diagnostic]:
    """Verify every ``.py`` file under ``paths``; returns sorted findings."""
    findings: list[Diagnostic] = []
    for f in collect_files(paths):
        cached = None
        src = None
        if cache is not None:
            try:
                src = f.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                src = None
            if src is not None:
                cached = cache.get(f, src)
        if cached is not None:
            findings.extend(cached)
            continue
        diags = verify_file(f)
        if cache is not None and src is not None:
            cache.put(f, src, diags)
        findings.extend(diags)
    return sort_diagnostics(findings)
