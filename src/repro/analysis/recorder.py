"""Op records, violations and interval indexing for the RMA sanitizer.

The dynamic checker consumes the telemetry stream (``repro.obs``) rather
than shimming every call site: the MPI window layer already publishes one
typed event per RMA operation, stamped with the byte footprint at the
target (``base``/``span``), the local origin-buffer identity
(``origin``/``onbytes``) and the emitting rank's virtual time.  This
module turns those events into :class:`OpRecord` values and provides the
interval machinery — built on the existing :class:`repro.core.avl.AVLTree`
— that the race and epoch checkers query for byte-range overlap.

Ordering note: the deterministic scheduler serialises rank threads, so
events arrive in a global total order; ``seq`` numbers that order and is
what "before/after" means throughout the analysis (virtual clocks are
per-rank and mutually incomparable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator, Mapping

from repro.core.avl import AVLTree
from repro.mpi.errors import EpochMisuseError, MPIError, RMARaceError
from repro.obs.events import RMA_ACCUMULATE, RMA_GET, RMA_PUT, Event

#: Event kind -> short op name used in records and reports.
_OP_NAMES = {RMA_GET: "get", RMA_PUT: "put", RMA_ACCUMULATE: "accumulate"}


@dataclass(frozen=True)
class OpRecord:
    """One observed RMA operation, reduced to what the checkers need."""

    seq: int              #: global arrival index (total order, see module doc)
    op: str               #: "get" | "put" | "accumulate"
    origin: int           #: issuing rank
    target: int           #: target rank
    win: int | None       #: window id
    lo: int               #: first byte touched in the target window
    hi: int               #: one past the last byte touched
    epoch: int            #: origin's w.eph at issue
    time: float           #: origin's virtual time at issue
    acc_op: str | None = None       #: accumulate element-wise op
    origin_lo: int | None = None    #: local origin buffer address range
    origin_hi: int | None = None

    def describe(self) -> str:
        acc = f"({self.acc_op}) " if self.acc_op else ""
        return (
            f"{self.op} {acc}by rank {self.origin} -> rank {self.target} "
            f"bytes [{self.lo}, {self.hi}) of win {self.win} "
            f"(seq {self.seq}, epoch {self.epoch}, t={self.time:.3e}s)"
        )

    def to_dict(self) -> dict[str, Any]:
        d = {
            "seq": self.seq,
            "op": self.op,
            "origin": self.origin,
            "target": self.target,
            "win": self.win,
            "lo": self.lo,
            "hi": self.hi,
            "epoch": self.epoch,
            "time": self.time,
        }
        if self.acc_op is not None:
            d["acc_op"] = self.acc_op
        return d


def op_record(event: Event, seq: int) -> OpRecord | None:
    """Build an :class:`OpRecord` from an RMA op event.

    Returns ``None`` for events lacking the byte-footprint attributes
    (captures taken before the attributes existed stay loadable — they are
    simply not analysable).
    """
    attrs = event.attrs
    if "base" not in attrs or "span" not in attrs:
        return None
    lo = int(attrs["base"])
    origin_lo = attrs.get("origin")
    return OpRecord(
        seq=seq,
        op=_OP_NAMES[event.kind],
        origin=event.rank,
        target=int(attrs["target"]),
        win=event.win,
        lo=lo,
        hi=lo + int(attrs["span"]),
        epoch=event.epoch,
        time=event.time,
        acc_op=attrs.get("op"),
        origin_lo=int(origin_lo) if origin_lo is not None else None,
        origin_hi=(
            int(origin_lo) + int(attrs.get("onbytes", 0))
            if origin_lo is not None
            else None
        ),
    )


def batch_op_record(
    event: Event, op_attrs: Mapping[str, Any], seq: int
) -> OpRecord | None:
    """Build the :class:`OpRecord` of one element of an ``rma.get_batch``.

    A batch event carries one footprint dict per element under
    ``attrs["ops"]`` — the same keys a scalar ``rma.get`` stamps — so the
    checkers analyse a batch exactly like N scalar gets issued at the
    batch's (rank, virtual time, epoch).
    """
    if "base" not in op_attrs or "span" not in op_attrs:
        return None
    lo = int(op_attrs["base"])
    origin_lo = op_attrs.get("origin")
    return OpRecord(
        seq=seq,
        op="get",
        origin=event.rank,
        target=int(op_attrs["target"]),
        win=event.win,
        lo=lo,
        hi=lo + int(op_attrs["span"]),
        epoch=event.epoch,
        time=event.time,
        origin_lo=int(origin_lo) if origin_lo is not None else None,
        origin_hi=(
            int(origin_lo) + int(op_attrs.get("onbytes", 0))
            if origin_lo is not None
            else None
        ),
    )


# ---------------------------------------------------------------------------
# violations
# ---------------------------------------------------------------------------
class ViolationKind(Enum):
    """Taxonomy of detectable hazards (see ``docs/analysis.md``)."""

    RACE_PUT_GET = "race.put-get"          #: put/get overlap in one epoch
    RACE_PUT_PUT = "race.put-put"          #: put/put overlap in one epoch
    RACE_ACC_MIX = "race.acc-mix"          #: accumulate vs other-op overlap
    STALE_CACHE_HIT = "stale.cache-hit"    #: hit served past a foreign put
    LOCAL_BUFFER_HAZARD = "epoch.local-buffer"  #: origin reuse before flush
    EPOCH_LEAK = "epoch.leak"              #: epoch still open at finish


#: Which kinds raise :class:`RMARaceError` (the rest raise
#: :class:`EpochMisuseError`) in strict mode.
_RACE_KINDS = frozenset(
    {
        ViolationKind.RACE_PUT_GET,
        ViolationKind.RACE_PUT_PUT,
        ViolationKind.RACE_ACC_MIX,
        ViolationKind.STALE_CACHE_HIT,
    }
)


@dataclass(frozen=True)
class Violation:
    """One detected hazard, carrying the conflicting op records."""

    kind: ViolationKind
    message: str
    rank: int                 #: rank at whose call site it was detected
    time: float               #: that rank's virtual time
    win: int | None = None
    ops: tuple[OpRecord, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        lines = [f"[{self.kind.value}] {self.message}"]
        lines.extend(f"  - {op.describe()}" for op in self.ops)
        return "\n".join(lines)

    def error(self) -> MPIError:
        """The strict-mode exception for this violation."""
        cls = RMARaceError if self.kind in _RACE_KINDS else EpochMisuseError
        return cls(self.describe())

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "message": self.message,
            "rank": self.rank,
            "time": self.time,
            "win": self.win,
            "ops": [op.to_dict() for op in self.ops],
        }


# ---------------------------------------------------------------------------
# interval indexing (paper-infrastructure reuse: the storage AVL tree)
# ---------------------------------------------------------------------------
class IntervalIndex:
    """Byte intervals with O(log N + k) overlap queries.

    Backed by the size-keyed AVL tree of the storage allocator, re-keyed as
    ``(lo, insertion_id)`` so duplicate starts stay unique.  The query
    widens its left bound by the longest interval ever inserted — the
    standard trick that turns a start-keyed BST into an overlap index
    without node augmentation.
    """

    def __init__(self) -> None:
        self._tree = AVLTree()
        self._next_id = 0
        self._max_len = 0

    def __len__(self) -> int:
        return len(self._tree)

    def add(self, lo: int, hi: int, value: Any) -> tuple[int, int]:
        """Insert ``[lo, hi) -> value``; returns a handle for :meth:`remove`."""
        if hi < lo:
            raise ValueError(f"inverted interval [{lo}, {hi})")
        key = (lo, self._next_id)
        self._next_id += 1
        self._tree.insert(key, (hi, value))
        self._max_len = max(self._max_len, hi - lo)
        return key

    def remove(self, handle: tuple[int, int]) -> None:
        self._tree.remove(handle)

    def overlapping(self, lo: int, hi: int) -> list[Any]:
        """Values of all intervals intersecting ``[lo, hi)``."""
        if hi <= lo:
            return []
        out = []
        start = (lo - self._max_len, -1)
        for key, (ihi, value) in self._tree.range_items(start, (hi, -1)):
            if key[0] < hi and ihi > lo:
                out.append(value)
        return out

    def items(self) -> Iterator[Any]:
        for _key, (_hi, value) in self._tree.items():
            yield value


class RangeMap:
    """Latest record per exact byte range, with overlap queries.

    Used for the write-history and fetch-freshness maps of the stale-read
    checker: repeated accesses to the same range (the common case — hot
    adjacency lists, tree nodes) update one slot instead of growing the
    index, so memory is bounded by the number of *distinct* ranges.
    """

    def __init__(self) -> None:
        self._index = IntervalIndex()
        self._latest: dict[tuple[int, int], OpRecord] = {}

    def update(self, rec: OpRecord) -> None:
        key = (rec.lo, rec.hi)
        if key not in self._latest:
            self._index.add(rec.lo, rec.hi, key)
        self._latest[key] = rec

    def overlapping(self, lo: int, hi: int) -> list[OpRecord]:
        return [self._latest[k] for k in self._index.overlapping(lo, hi)]
