"""Epoch discipline and completion-order checks.

The window layer already rejects structurally invalid sequences (access
outside an epoch, mismatched unlock, nested lock_all) with
:class:`~repro.mpi.errors.EpochError` at the call site.  This tracker
covers the hazards the window cannot see because they are *semantically*
wrong while structurally legal:

* **local-buffer hazards** — MPI forbids touching a get's origin buffer
  before the operation completes (flush/unlock/fence).  The simulator
  copies payloads at issue time, so such bugs are invisible in results
  here but corrupt data on real hardware; the tracker flags any RMA op
  whose origin-buffer bytes overlap an *unflushed* get's destination on
  the same rank.
* **epoch leaks** — passive-target epochs still open when the analysis
  scope ends (a ``lock``/``lock_all`` never paired with its unlock), the
  classic source of "works under MPICH, hangs under foMPI" reports.

Lock bookkeeping consumes the ``rma.lock``/``rma.unlock`` events; pending
gets retire on the closure events (flush/unlock/fence/complete), the same
boundaries the race detector uses.
"""

from __future__ import annotations

from repro.analysis.recorder import OpRecord, Violation, ViolationKind
from repro.obs.events import Event


class EpochTracker:
    """Per-rank lock state and origin-buffer completion tracking."""

    def __init__(self) -> None:
        #: (win, rank) -> {"all": opened-at-time | None, "ranks": {target: time}}
        self._locks: dict[tuple, dict] = {}
        #: (win, rank) -> gets whose origin buffer is still in flight
        self._pending_gets: dict[tuple, list[OpRecord]] = {}

    # ------------------------------------------------------------------
    def on_lock(self, event: Event) -> None:
        state = self._locks.setdefault(
            (event.win, event.rank), {"all": None, "ranks": {}}
        )
        target = event.attrs.get("target")
        if target is None:
            state["all"] = event.time
        else:
            state["ranks"][int(target)] = event.time

    def on_close(self, event: Event, targets: set[int] | None, unlock: bool) -> None:
        """An epoch-closure event: retire pending gets; update lock state."""
        key = (event.win, event.rank)
        if unlock:
            state = self._locks.get(key)
            if state is not None:
                if targets is None:
                    state["all"] = None
                else:
                    for t in targets:
                        state["ranks"].pop(t, None)
        pending = self._pending_gets.get(key)
        if pending:
            self._pending_gets[key] = [
                g for g in pending if targets is not None and g.target not in targets
            ]

    # ------------------------------------------------------------------
    def on_op(self, rec: OpRecord) -> list[Violation]:
        """Origin-buffer overlap check against this rank's in-flight gets."""
        violations: list[Violation] = []
        if rec.origin_lo is not None and rec.origin_hi is not None:
            for g in self._pending_gets.get((rec.win, rec.origin), []):
                assert g.origin_lo is not None and g.origin_hi is not None
                if g.origin_lo < rec.origin_hi and g.origin_hi > rec.origin_lo:
                    action = (
                        "overwrites the destination of"
                        if rec.op == "get"
                        else "reads the origin buffer of"
                    )
                    violations.append(
                        Violation(
                            kind=ViolationKind.LOCAL_BUFFER_HAZARD,
                            message=(
                                f"{rec.op} by rank {rec.origin} {action} an "
                                f"incomplete get (no flush since seq {g.seq}); "
                                "origin buffers are undefined until the "
                                "operation completes"
                            ),
                            rank=rec.origin,
                            time=rec.time,
                            win=rec.win,
                            ops=(g, rec),
                        )
                    )
        if rec.op == "get":
            self._pending_gets.setdefault((rec.win, rec.origin), []).append(rec)
        return violations

    # ------------------------------------------------------------------
    def finish(self) -> list[Violation]:
        """End-of-scope audit: report epochs never closed."""
        violations: list[Violation] = []
        for (win, rank), state in sorted(
            self._locks.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
        ):
            leaks: list[str] = []
            if state["all"] is not None:
                leaks.append("lock_all")
            leaks.extend(f"lock({t})" for t in sorted(state["ranks"]))
            if not leaks:
                continue
            last = max(
                [state["all"] or 0.0, *state["ranks"].values()]
            )
            violations.append(
                Violation(
                    kind=ViolationKind.EPOCH_LEAK,
                    message=(
                        f"rank {rank} still holds {', '.join(leaks)} on win "
                        f"{win} at the end of the analysis scope "
                        "(missing unlock/unlock_all)"
                    ),
                    rank=rank,
                    time=last,
                    win=win,
                )
            )
        return violations
