"""Shared diagnostics engine for the static analyses.

Every static check in :mod:`repro.analysis` — the repo-invariant linter
(:mod:`repro.analysis.lint`, ANL001–ANL008) and the epoch/flush typestate
verifier (:mod:`repro.analysis.typestate`, ANL009–ANL012) — reports
through this module:

* :class:`Diagnostic` — one finding: rule, severity, primary span,
  related spans (e.g. "epoch opened here" for a leak reported at the
  function exit), and an optional fix-it hint;
* :data:`RULES` — the single rule registry (id, name, scope, severity,
  one-line invariant, fix hint, docs URL).  ``docs/analysis.md``'s rule
  table is *generated* from it (:func:`rules_markdown`,
  ``python -m repro.analysis rules --write-docs``) so the two can never
  drift;
* emitters — :func:`render_text`, :func:`render_json`,
  :func:`render_sarif` (SARIF 2.1.0, uploadable as a CI code-scanning
  artifact);
* suppressions — ``# analysis: allow(ANL001)`` on the offending line,
  ``# analysis: allow-file(ANL001)`` anywhere for the whole file, both
  accepting comma-separated rule lists; an allow that suppresses nothing
  a rule could have reported is itself flagged (ANL013) so stale allows
  get cleaned up;
* a checked-in **baseline** (:class:`Baseline`) of fingerprinted known
  findings, so CI fails only on *new* ones;
* an **incremental cache** (:class:`AnalysisCache`) keyed by
  mtime + content hash + a tool/registry salt, so re-running over an
  unchanged tree is I/O-bound only.

The walker (:func:`collect_files`) skips ``__pycache__`` and hidden
directories, and unparseable files surface as an ``ANL000`` diagnostic
instead of a traceback.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Bump when diagnostic semantics change; part of the cache salt.
ENGINE_VERSION = "2"

SEV_ERROR = "error"
SEV_WARNING = "warning"

_DOCS_URL = "docs/analysis.md"


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Rule:
    """One registered analysis rule."""

    code: str          #: ``ANLxxx`` id
    name: str          #: short kebab-case name (stable, used in SARIF)
    scope: str         #: where the rule applies, for the docs table
    severity: str      #: :data:`SEV_ERROR` or :data:`SEV_WARNING`
    summary: str       #: one-line invariant, shown in docs and reports
    fix: str = ""      #: generic fix-it hint

    @property
    def url(self) -> str:
        return f"{_DOCS_URL}#{self.code.lower()}"

    def __str__(self) -> str:  # keeps ``f"{RULES[code]}"`` call sites working
        return self.summary


def _rule(code: str, name: str, scope: str, severity: str, summary: str,
          fix: str = "") -> tuple[str, Rule]:
    return code, Rule(code, name, scope, severity, summary, fix)


#: The single source of truth for every ANL rule.  ``docs/analysis.md``'s
#: table is generated from this mapping; ``tests/test_analysis_diagnostics``
#: asserts they never drift.
RULES: dict[str, Rule] = dict(
    (
        _rule(
            "ANL000", "parse-error", "everywhere", SEV_ERROR,
            "source file must parse; unparseable files are reported, not skipped",
            "fix the syntax error (the message carries the parser detail)",
        ),
        _rule(
            "ANL001", "no-wall-clock", "repro.core/mpi/net", SEV_ERROR,
            "no wall-clock time sources in repro.core/mpi/net",
            "charge the simulated clock instead of time.time()/monotonic()",
        ),
        _rule(
            "ANL002", "seeded-random", "repro.core/mpi/net", SEV_ERROR,
            "RNGs in repro.core/mpi/net must be explicitly seeded",
            "use random.Random(seed) / np.random.default_rng(seed)",
        ),
        _rule(
            "ANL003", "no-resilience-bypass", "outside repro.mpi", SEV_ERROR,
            "no calls to Window resilience internals outside repro.mpi",
            "call the public op (get/put/flush/...) so retry accounting runs",
        ),
        _rule(
            "ANL004", "registered-event-names", "everywhere", SEV_ERROR,
            "obs event kinds must be registered constants",
            "add the constant to repro.obs.events and list it in ALL_KINDS",
        ),
        _rule(
            "ANL005", "no-mutable-default", "everywhere", SEV_ERROR,
            "no mutable default arguments",
            "default to None and build the container inside the function",
        ),
        _rule(
            "ANL006", "pipeline-purity", "everywhere", SEV_ERROR,
            "Window/CachedWindow op methods must not inline pipeline concerns",
            "move the concern into its repro.rma interceptor or cache stage",
        ),
        _rule(
            "ANL007", "deterministic-policies", "everywhere", SEV_ERROR,
            "cache policy classes must not use wall clock or global RNG state",
            "use ctx.seq_index / entry.last and the seed handed to bind()",
        ),
        _rule(
            "ANL008", "recovery-owns-revocation", "outside repro.recovery",
            SEV_ERROR,
            "RankRevokedError may only be caught inside repro.recovery",
            "use recovery.retrying/completed/barrier instead of a bare except",
        ),
        _rule(
            "ANL009", "epoch-leak", "typestate verify", SEV_ERROR,
            "an opened epoch must be provably closed on every path, "
            "including exception edges",
            "close the epoch in a finally: or use the scoped "
            "lock_epoch()/lock_all_epoch() context managers",
        ),
        _rule(
            "ANL010", "read-before-flush", "typestate verify", SEV_ERROR,
            "a get's result buffer is undefined until a dominating "
            "flush/flush_all or epoch close",
            "flush the window (or close the epoch) before touching the buffer",
        ),
        _rule(
            "ANL011", "origin-reuse-before-flush", "typestate verify",
            SEV_ERROR,
            "a put/accumulate origin buffer must not be modified until a "
            "dominating flush or epoch close",
            "flush the window before rewriting the origin buffer",
        ),
        _rule(
            "ANL012", "op-outside-epoch", "typestate verify", SEV_ERROR,
            "RMA ops are only callable where an epoch is provably open on "
            "every path",
            "open a lock/lock_all/fence epoch on every path reaching the op",
        ),
        _rule(
            "ANL013", "unused-suppression", "everywhere", SEV_WARNING,
            "an # analysis: allow(...) that suppresses nothing is stale and "
            "must be removed",
            "delete the allow comment (the finding it silenced is gone)",
        ),
        _rule(
            "ANL014", "gated-event-construction", "repro.core/mpi/rma/runtime",
            SEV_ERROR,
            "hot-path modules may only construct Event() inside a kind-gated "
            "_emit* helper",
            "wrap the emission in an _emit* helper that checks bus.wants(kind) "
            "before building the Event",
        ),
    )
)

#: Rules produced by the repo-invariant linter pass.
LINT_RULES = frozenset(
    {"ANL001", "ANL002", "ANL003", "ANL004", "ANL005", "ANL006", "ANL007",
     "ANL008", "ANL014"}
)
#: Rules produced by the flow-sensitive typestate verifier pass.
VERIFY_RULES = frozenset({"ANL009", "ANL010", "ANL011", "ANL012"})


# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Related:
    """A secondary location attached to a diagnostic."""

    path: str
    line: int
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {"path": self.path, "line": self.line, "message": self.message}


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding.

    Field order keeps the historical ``Finding(path, line, rule, message)``
    positional construction working; :meth:`render` keeps the historical
    one-line ``path:line: RULE message`` shape the CLI and tests rely on.
    """

    path: str
    line: int
    rule: str
    message: str
    related: tuple[Related, ...] = ()
    fix: str = ""
    col: int = 0

    @property
    def severity(self) -> str:
        rule = RULES.get(self.rule)
        return rule.severity if rule else SEV_ERROR

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def render_full(self) -> str:
        """Multi-line rendering: primary, related spans, fix hint."""
        lines = [f"{self.path}:{self.line}: {self.severity}: "
                 f"{self.rule} {self.message}"]
        lines.extend(
            f"    {r.path}:{r.line}: note: {r.message}" for r in self.related
        )
        if self.fix:
            lines.append(f"    fix: {self.fix}")
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Stable identity for baselining (line-drift tolerant)."""
        raw = f"{self.path}|{self.rule}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
        if self.related:
            out["related"] = [r.to_dict() for r in self.related]
        if self.fix:
            out["fix"] = self.fix
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            path=data["path"],
            line=int(data["line"]),
            rule=data["rule"],
            message=data["message"],
            related=tuple(
                Related(r["path"], int(r["line"]), r["message"])
                for r in data.get("related", ())
            ),
            fix=data.get("fix", ""),
        )


#: Historical alias: the linter's finding type *is* a Diagnostic now.
Finding = Diagnostic


def sort_diagnostics(diags: Iterable[Diagnostic]) -> list[Diagnostic]:
    return sorted(diags, key=lambda d: (d.path, d.line, d.rule, d.message))


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------
_ALLOW_RE = re.compile(
    r"#\s*analysis:\s*(allow(?:-file)?)\(\s*(ANL\d{3}(?:\s*,\s*ANL\d{3})*)\s*\)"
)


class SuppressionIndex:
    """Line- and file-level ``# analysis: allow(...)`` comments of one file.

    ``filter`` drops suppressed diagnostics and records which allows fired;
    ``unused`` then reports every allow that silenced nothing *although its
    rule was actually evaluated for this file* (an ``allow(ANL001)`` in a
    package ANL001 does not patrol is not "unused", it is unreachable —
    neither fires nor warns).
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        #: line -> rule codes allowed on that line
        self.line_allows: dict[int, set[str]] = {}
        #: rule code -> line of the file-level allow
        self.file_allows: dict[str, int] = {}
        self._used_lines: set[tuple[int, str]] = set()
        self._used_file: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            for kind, codes in _ALLOW_RE.findall(text):
                for code in (c.strip() for c in codes.split(",")):
                    if kind == "allow-file":
                        self.file_allows.setdefault(code, lineno)
                    else:
                        self.line_allows.setdefault(lineno, set()).add(code)

    def suppresses(self, diag: Diagnostic) -> bool:
        if diag.rule in self.line_allows.get(diag.line, ()):
            self._used_lines.add((diag.line, diag.rule))
            return True
        if diag.rule in self.file_allows:
            self._used_file.add(diag.rule)
            return True
        return False

    def filter(self, diags: Iterable[Diagnostic]) -> list[Diagnostic]:
        return [d for d in diags if not self.suppresses(d)]

    def unused(self, evaluated_rules: Iterable[str]) -> list[Diagnostic]:
        """ANL013 diagnostics for allows that fired on nothing."""
        evaluated = set(evaluated_rules)
        out: list[Diagnostic] = []
        for line, codes in sorted(self.line_allows.items()):
            for code in sorted(codes):
                if code in evaluated and (line, code) not in self._used_lines:
                    out.append(
                        Diagnostic(
                            self.path, line, "ANL013",
                            f"allow({code}) suppresses nothing on this line; "
                            "remove the stale suppression",
                            fix=RULES["ANL013"].fix,
                        )
                    )
        for code, line in sorted(self.file_allows.items()):
            if code in evaluated and code not in self._used_file:
                out.append(
                    Diagnostic(
                        self.path, line, "ANL013",
                        f"allow-file({code}) suppresses nothing in this file; "
                        "remove the stale suppression",
                        fix=RULES["ANL013"].fix,
                    )
                )
        return out


# ---------------------------------------------------------------------------
# file walking and parsing
# ---------------------------------------------------------------------------
def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, skipping caches and hidden dirs."""

    def wanted(f: Path) -> bool:
        return not any(
            part == "__pycache__" or part.startswith(".") for part in f.parts
        )

    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(f for f in sorted(path.rglob("*.py")) if wanted(f))
        else:
            files.append(path)
    return files


def parse_file(path: Path) -> tuple[ast.Module | None, str, list[Diagnostic]]:
    """``(tree, source, diagnostics)`` — parse failures become ANL000."""
    try:
        src = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, "", [
            Diagnostic(str(path), 1, "ANL000", f"cannot read file: {exc}")
        ]
    try:
        return ast.parse(src, filename=str(path)), src, []
    except SyntaxError as exc:
        line = exc.lineno or 1
        detail = exc.msg or "invalid syntax"
        return None, src, [
            Diagnostic(
                str(path), line, "ANL000",
                f"file does not parse: {detail}",
                fix=RULES["ANL000"].fix,
            )
        ]


# ---------------------------------------------------------------------------
# emitters
# ---------------------------------------------------------------------------
def render_text(diags: Iterable[Diagnostic]) -> str:
    return "\n".join(d.render_full() for d in diags)


def render_json(diags: Iterable[Diagnostic]) -> str:
    return json.dumps([d.to_dict() for d in diags], indent=2) + "\n"


SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_location(path: str, line: int, message: str | None = None) -> dict:
    loc: dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
            "region": {"startLine": max(line, 1)},
        }
    }
    if message is not None:
        loc["message"] = {"text": message}
    return loc


def render_sarif(diags: Iterable[Diagnostic]) -> str:
    """SARIF 2.1.0 log with the full rule registry in the tool driver."""
    results = []
    for d in diags:
        result: dict[str, Any] = {
            "ruleId": d.rule,
            "level": d.severity,
            "message": {"text": d.message},
            "locations": [_sarif_location(d.path, d.line)],
            "partialFingerprints": {"reproAnalysis/v1": d.fingerprint()},
        }
        if d.related:
            result["relatedLocations"] = [
                _sarif_location(r.path, r.line, r.message) for r in d.related
            ]
        if d.fix:
            result["message"]["text"] += f" (fix: {d.fix})"
        results.append(result)
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": _DOCS_URL,
                        "rules": [
                            {
                                "id": r.code,
                                "name": r.name,
                                "shortDescription": {"text": r.summary},
                                "helpUri": r.url,
                                "defaultConfiguration": {"level": r.severity},
                            }
                            for r in RULES.values()
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2) + "\n"


_FORMATS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def render(diags: Iterable[Diagnostic], fmt: str) -> str:
    try:
        return _FORMATS[fmt](list(diags))
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; expected one of {sorted(_FORMATS)}"
        ) from None


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
class Baseline:
    """Checked-in suppression baseline of fingerprinted known findings.

    ``filter`` keeps only findings whose fingerprint is *not* baselined —
    CI fails on new findings while grandfathered ones ride along until
    fixed.  Fingerprints hash path+rule+message (not the line), so pure
    line drift does not resurrect a baselined finding.
    """

    VERSION = 1

    def __init__(self, fingerprints: Mapping[str, Mapping[str, Any]] | None = None):
        self.fingerprints: dict[str, dict[str, Any]] = {
            k: dict(v) for k, v in (fingerprints or {}).items()
        }

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        p = Path(path)
        if not p.exists():
            return cls()
        data = json.loads(p.read_text(encoding="utf-8"))
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"baseline {p} has unsupported version {data.get('version')!r}"
            )
        return cls(data.get("fingerprints", {}))

    @classmethod
    def from_diagnostics(cls, diags: Iterable[Diagnostic]) -> "Baseline":
        base = cls()
        for d in diags:
            base.fingerprints[d.fingerprint()] = {
                "rule": d.rule,
                "path": d.path,
                "message": d.message,
            }
        return base

    def write(self, path: str | Path) -> None:
        payload = {
            "version": self.VERSION,
            "fingerprints": {
                k: self.fingerprints[k] for k in sorted(self.fingerprints)
            },
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def filter(self, diags: Iterable[Diagnostic]) -> list[Diagnostic]:
        return [d for d in diags if d.fingerprint() not in self.fingerprints]

    def __len__(self) -> int:
        return len(self.fingerprints)


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------
def _file_sha256(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class AnalysisCache:
    """mtime + content-hash keyed per-file diagnostic cache.

    The ``salt`` must capture everything *besides* the file content that
    can change a file's diagnostics: the engine version, the rule registry
    and any cross-file input (the linter's event-kind registry).  A salt
    mismatch invalidates the whole cache.
    """

    VERSION = 1

    def __init__(self, path: str | Path, salt: str) -> None:
        self.path = Path(path)
        self.salt = salt
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = {}
            if (
                data.get("version") == self.VERSION
                and data.get("salt") == salt
            ):
                self._entries = data.get("files", {})

    @staticmethod
    def make_salt(*parts: str) -> str:
        rules_repr = "|".join(
            f"{r.code}:{r.name}:{r.severity}:{r.summary}" for r in RULES.values()
        )
        raw = "\x1f".join((ENGINE_VERSION, rules_repr, *parts))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()

    def get(self, path: Path, source: str) -> list[Diagnostic] | None:
        entry = self._entries.get(str(path))
        if entry is None:
            return None
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return None
        # mtime is the cheap gate; the content hash is the correctness gate
        # (editors and git checkouts can rewrite identical bytes).
        if entry.get("mtime") != mtime:
            if entry.get("sha256") != _file_sha256(source):
                return None
            entry["mtime"] = mtime
            self._dirty = True
        return [Diagnostic.from_dict(d) for d in entry.get("diags", [])]

    def put(self, path: Path, source: str, diags: list[Diagnostic]) -> None:
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return
        self._entries[str(path)] = {
            "mtime": mtime,
            "sha256": _file_sha256(source),
            "diags": [d.to_dict() for d in diags],
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": self.VERSION,
            "salt": self.salt,
            "files": self._entries,
        }
        try:
            self.path.write_text(json.dumps(payload), encoding="utf-8")
        except OSError:
            pass  # caching is best-effort; never fail the analysis over it
        self._dirty = False


# ---------------------------------------------------------------------------
# docs generation
# ---------------------------------------------------------------------------
RULES_BEGIN = "<!-- rules:begin -->"
RULES_END = "<!-- rules:end -->"


def rules_markdown() -> str:
    """The docs rule table, generated from :data:`RULES`."""
    lines = [
        "| rule | name | scope | severity | invariant |",
        "|------|------|-------|----------|-----------|",
    ]
    for code in sorted(RULES):
        r = RULES[code]
        anchor = f'<a id="{code.lower()}"></a>{code}'
        lines.append(
            f"| {anchor} | `{r.name}` | {r.scope} | {r.severity} "
            f"| {r.summary} |"
        )
    return "\n".join(lines)


def docs_rules_block() -> str:
    return (
        f"{RULES_BEGIN}\n"
        "<!-- generated from repro.analysis.diagnostics.RULES by "
        "`python -m repro.analysis rules --write-docs`; do not edit -->\n"
        f"{rules_markdown()}\n{RULES_END}"
    )


def update_docs(doc_path: str | Path) -> bool:
    """Rewrite the generated rule table in ``doc_path``; True if changed."""
    p = Path(doc_path)
    text = p.read_text(encoding="utf-8")
    begin = text.find(RULES_BEGIN)
    end = text.find(RULES_END)
    if begin < 0 or end < 0:
        raise ValueError(
            f"{p} has no {RULES_BEGIN}/{RULES_END} markers to generate into"
        )
    new = text[:begin] + docs_rules_block() + text[end + len(RULES_END):]
    if new == text:
        return False
    p.write_text(new, encoding="utf-8")
    return True


def docs_in_sync(doc_path: str | Path) -> bool:
    text = Path(doc_path).read_text(encoding="utf-8")
    return docs_rules_block() in text
