"""Analysis CLI: lint, typestate verify, capture replay, app smoke.

Subcommands::

    python -m repro.analysis lint src/            # static repo-invariant lint
    python -m repro.analysis verify src/ examples/  # epoch/flush typestate
    python -m repro.analysis rules --check        # docs/analysis.md drift
    python -m repro.analysis report capture.jsonl # replay capture, report
    python -m repro.analysis smoke --strict       # LCC + Barnes-Hut sanitized

``lint`` and ``verify`` share the diagnostics plumbing: ``--format
text|json|sarif`` selects the emitter, ``--out`` writes the report to a
file (always written, even when clean — CI uploads it as an artifact),
``--baseline FILE`` filters out previously accepted findings by stable
fingerprint, ``--write-baseline`` refreshes that file from the current
findings, and ``--cache FILE`` enables mtime+hash incremental re-analysis.
Both exit 1 when any non-baselined finding survives suppression; ``report``
and ``smoke`` exit 1 when the sanitizer records a violation, so all of
them wire directly into CI.  ``smoke --report PATH`` writes the violations
as JSONL (one :meth:`repro.analysis.Violation.to_dict` object per line)
for upload as a build artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _emit(diags, args) -> None:
    from repro.analysis.diagnostics import render

    text = render(diags, args.format)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.format} report to {args.out}")
    elif args.format == "text":
        print(text, end="")
    else:
        print(text)


def _run_static(kind: str, args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import (
        RULES,
        AnalysisCache,
        Baseline,
        SEV_ERROR,
    )
    from repro.analysis.lint import _load_registry, run_lint
    from repro.analysis.typestate import run_verify

    cache = None
    if args.cache:
        if kind == "lint":
            # ANL004 findings depend on the event registry, which is
            # cross-file: fold it into the salt so registry edits
            # invalidate every cached entry.
            from repro.analysis.diagnostics import collect_files

            registry, _ = _load_registry(collect_files(args.paths))
            salt = AnalysisCache.make_salt(
                kind, json.dumps(registry, sort_keys=True)
            )
        else:
            salt = AnalysisCache.make_salt(kind)
        cache = AnalysisCache(args.cache, salt)

    runner = run_lint if kind == "lint" else run_verify
    diags = runner(args.paths, cache=cache)
    if cache is not None:
        cache.save()

    if args.write_baseline:
        baseline = Baseline.from_diagnostics(diags)
        baseline.write(args.baseline or "analysis-baseline.json")
        print(
            f"baselined {len(baseline)} finding(s) to "
            f"{args.baseline or 'analysis-baseline.json'}"
        )
        return 0

    baselined = 0
    if args.baseline:
        baseline = Baseline.load(args.baseline)
        kept = baseline.filter(diags)
        baselined = len(diags) - len(kept)
        diags = kept

    _emit(diags, args)

    errors = [d for d in diags if d.severity == SEV_ERROR]
    if diags:
        rules = sorted({d.rule for d in diags})
        note = f" ({baselined} baselined)" if baselined else ""
        print(
            f"\n{len(diags)} finding(s){note}: "
            + "; ".join(f"{r} ({RULES[r]})" for r in rules),
            file=sys.stderr,
        )
    elif not args.out:
        tag = "lint" if kind == "lint" else "verify"
        note = f" ({baselined} baselined)" if baselined else ""
        print(f"{tag} clean{note} ({', '.join(str(p) for p in args.paths)})")
    return 1 if errors else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return _run_static("lint", args)


def _cmd_verify(args: argparse.Namespace) -> int:
    return _run_static("verify", args)


def _cmd_rules(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import (
        docs_in_sync,
        rules_markdown,
        update_docs,
    )

    if args.check:
        if docs_in_sync(args.docs):
            print(f"{args.docs} rule table is in sync with the registry")
            return 0
        print(
            f"{args.docs} rule table has drifted from the RULES registry; "
            "run `python -m repro.analysis rules --write-docs`",
            file=sys.stderr,
        )
        return 1
    if args.write_docs:
        changed = update_docs(args.docs)
        print(
            f"{args.docs}: {'updated' if changed else 'already in sync'}"
        )
        return 0
    print(rules_markdown(), end="")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import Sanitizer
    from repro.obs.report import load_events

    try:
        events = load_events(args.capture)
    except OSError as exc:
        print(f"cannot read capture: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(f"malformed capture {args.capture}: {exc}", file=sys.stderr)
        return 2

    san = Sanitizer(strict=False)
    for event in events:
        san.handle(event)
    san.finish()
    print(san.render_report(), end="")
    return 1 if san.violations else 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.analysis import sanitize
    from repro.apps.barnes_hut import BarnesHutApp
    from repro.apps.cachespec import CacheSpec
    from repro.apps.lcc import LCCApp
    from repro.mpi.errors import MPIError
    from repro.runtime.scheduler import RankFailedError

    spec = CacheSpec.clampi_fixed(256, 64 * 1024)
    violations = []
    status = 0
    for name, run in (
        (
            "lcc",
            lambda: LCCApp(scale=args.scale, edge_factor=8, seed=2).run(
                nprocs=args.nprocs, spec=spec
            ),
        ),
        (
            "barnes-hut",
            lambda: BarnesHutApp(nbodies=args.nbodies, seed=3).run(
                nprocs=args.nprocs, spec=spec
            ),
        ),
    ):
        try:
            with sanitize(strict=args.strict) as san:
                result = run()
        except RankFailedError as exc:
            status = 1
            origin = exc.original if isinstance(exc.original, MPIError) else exc
            print(f"{name}: FAILED in strict mode: {origin}", file=sys.stderr)
        else:
            ok = not san.violations
            tally = (
                "clean"
                if ok
                else ", ".join(f"{k}={n}" for k, n in san.counts().items())
            )
            print(f"{name}: {tally} (nprocs={args.nprocs})")
            if not ok:
                status = 1
            del result
        violations.extend(san.violations)

    if status == 0:
        print("smoke clean: no violations in LCC or Barnes-Hut")

    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            for v in violations:
                fh.write(json.dumps(v.to_dict()) + "\n")
        print(f"wrote {len(violations)} violation(s) to {args.report}")
    return status


def _add_static_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "paths", nargs="+", help="files or directories to analyse (e.g. src/)"
    )
    sub.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    sub.add_argument(
        "--out", default=None, help="write the report to this file"
    )
    sub.add_argument(
        "--baseline",
        default=None,
        help="suppress findings whose fingerprint is in this baseline file",
    )
    sub.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh the baseline file from the current findings and exit 0",
    )
    sub.add_argument(
        "--cache",
        default=None,
        help="mtime+hash incremental cache file (created if missing)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the static repo-invariant linter")
    _add_static_flags(lint)
    lint.set_defaults(func=_cmd_lint)

    verify = sub.add_parser(
        "verify",
        help="flow-sensitive epoch/flush typestate verification (ANL009-012)",
    )
    _add_static_flags(verify)
    verify.set_defaults(func=_cmd_verify)

    rules = sub.add_parser(
        "rules", help="print or sync the generated ANL rule reference table"
    )
    rules.add_argument(
        "--docs", default="docs/analysis.md", help="docs file with rule markers"
    )
    rules.add_argument(
        "--write-docs",
        action="store_true",
        help="regenerate the rule table between the markers in --docs",
    )
    rules.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the docs rule table drifted from the registry",
    )
    rules.set_defaults(func=_cmd_rules)

    rep = sub.add_parser(
        "report", help="replay a JSONL capture through the sanitizer"
    )
    rep.add_argument("capture", help="path to the JSONL capture file")
    rep.set_defaults(func=_cmd_report)

    smoke = sub.add_parser(
        "smoke", help="run LCC and Barnes-Hut under the sanitizer"
    )
    smoke.add_argument(
        "--strict", action="store_true", help="raise at the first violation"
    )
    smoke.add_argument(
        "--report", default=None, help="write violations as JSONL to this path"
    )
    smoke.add_argument("--nprocs", type=int, default=4)
    smoke.add_argument("--scale", type=int, default=7, help="LCC graph scale")
    smoke.add_argument(
        "--nbodies", type=int, default=192, help="Barnes-Hut body count"
    )
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
