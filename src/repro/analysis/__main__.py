"""Analysis CLI: lint, offline capture replay, and sanitized app smoke.

Subcommands::

    python -m repro.analysis lint src/            # static repo-invariant lint
    python -m repro.analysis report capture.jsonl # replay capture, report
    python -m repro.analysis smoke --strict       # LCC + Barnes-Hut sanitized

``lint`` exits 1 when any finding survives suppression; ``report`` and
``smoke`` exit 1 when the sanitizer records a violation, so all three wire
directly into CI.  ``smoke --report PATH`` writes the violations as JSONL
(one :meth:`repro.analysis.Violation.to_dict` object per line) for upload
as a build artifact.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import RULES, run_lint

    findings = run_lint(args.paths)
    for f in findings:
        print(f.render())
    if findings:
        rules = sorted({f.rule for f in findings})
        print(
            f"\n{len(findings)} finding(s): "
            + "; ".join(f"{r} ({RULES[r]})" for r in rules),
            file=sys.stderr,
        )
        return 1
    print(f"lint clean ({', '.join(str(p) for p in args.paths)})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import Sanitizer
    from repro.obs.report import load_events

    try:
        events = load_events(args.capture)
    except OSError as exc:
        print(f"cannot read capture: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(f"malformed capture {args.capture}: {exc}", file=sys.stderr)
        return 2

    san = Sanitizer(strict=False)
    for event in events:
        san.handle(event)
    san.finish()
    print(san.render_report(), end="")
    return 1 if san.violations else 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.analysis import sanitize
    from repro.apps.barnes_hut import BarnesHutApp
    from repro.apps.cachespec import CacheSpec
    from repro.apps.lcc import LCCApp
    from repro.mpi.errors import MPIError
    from repro.runtime.scheduler import RankFailedError

    spec = CacheSpec.clampi_fixed(256, 64 * 1024)
    violations = []
    status = 0
    for name, run in (
        (
            "lcc",
            lambda: LCCApp(scale=args.scale, edge_factor=8, seed=2).run(
                nprocs=args.nprocs, spec=spec
            ),
        ),
        (
            "barnes-hut",
            lambda: BarnesHutApp(nbodies=args.nbodies, seed=3).run(
                nprocs=args.nprocs, spec=spec
            ),
        ),
    ):
        try:
            with sanitize(strict=args.strict) as san:
                result = run()
        except RankFailedError as exc:
            status = 1
            origin = exc.original if isinstance(exc.original, MPIError) else exc
            print(f"{name}: FAILED in strict mode: {origin}", file=sys.stderr)
        else:
            ok = not san.violations
            tally = (
                "clean"
                if ok
                else ", ".join(f"{k}={n}" for k, n in san.counts().items())
            )
            print(f"{name}: {tally} (nprocs={args.nprocs})")
            if not ok:
                status = 1
            del result
        violations.extend(san.violations)

    if status == 0:
        print("smoke clean: no violations in LCC or Barnes-Hut")

    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            for v in violations:
                fh.write(json.dumps(v.to_dict()) + "\n")
        print(f"wrote {len(violations)} violation(s) to {args.report}")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the static repo-invariant linter")
    lint.add_argument(
        "paths", nargs="+", help="files or directories to lint (e.g. src/)"
    )
    lint.set_defaults(func=_cmd_lint)

    rep = sub.add_parser(
        "report", help="replay a JSONL capture through the sanitizer"
    )
    rep.add_argument("capture", help="path to the JSONL capture file")
    rep.set_defaults(func=_cmd_report)

    smoke = sub.add_parser(
        "smoke", help="run LCC and Barnes-Hut under the sanitizer"
    )
    smoke.add_argument(
        "--strict", action="store_true", help="raise at the first violation"
    )
    smoke.add_argument(
        "--report", default=None, help="write violations as JSONL to this path"
    )
    smoke.add_argument("--nprocs", type=int, default=4)
    smoke.add_argument("--scale", type=int, default=7, help="LCC graph scale")
    smoke.add_argument(
        "--nbodies", type=int, default=192, help="Barnes-Hut body count"
    )
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
