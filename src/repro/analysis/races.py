"""Race detection over the observed RMA op stream (MPI-3 semantics).

MPI-3's separate memory model makes *conflicting* accesses to overlapping
window locations within one exposure epoch erroneous: a put concurrent
with any get or put, and an accumulate overlapping anything that is not an
accumulate with the **same** element-wise op (same-op accumulates are the
one sanctioned form of concurrent conflicting access).  Gets never
conflict with gets.

An op stays *outstanding* from issue until its origin closes an epoch that
covers its target — ``flush``/``flush_all``, ``unlock``/``unlock_all``,
``fence`` or PSCW ``complete``; this mirrors the window layer's own
epoch-closure events, so the checker and the simulator agree on epoch
boundaries by construction.  Each new op is overlap-checked against every
outstanding op on the same ``(window, target)`` before being added.

The CLaMPI-specific stale-read checker rides the same stream: writes
(put/accumulate) are remembered per ``(window, target)`` range; raw
network gets refresh a per-reader freshness map; a ``cache.access`` event
classified as a full/pending hit whose range was written by *another* rank
after the reader last fetched it is a stale-cache-hit hazard — exactly the
transparency promise the paper's invalidation rules exist to keep.
"""

from __future__ import annotations

from repro.analysis.recorder import (
    IntervalIndex,
    OpRecord,
    RangeMap,
    Violation,
    ViolationKind,
)
from repro.core.stats import AccessType
from repro.obs.events import Event

#: ``cache.access`` classifications that are served from the cache.
_CACHE_SERVED = frozenset({AccessType.HIT_FULL.value, AccessType.HIT_PENDING.value})


def conflict_kind(a: OpRecord, b: OpRecord) -> ViolationKind | None:
    """MPI-3 conflict matrix for two overlapping ops in one epoch."""
    ops = {a.op, b.op}
    if ops == {"get"}:
        return None
    if "accumulate" in ops:
        if ops == {"accumulate"}:
            # Same-op accumulates are explicitly permitted (MPI-3 11.7.1).
            return None if a.acc_op == b.acc_op else ViolationKind.RACE_ACC_MIX
        return ViolationKind.RACE_ACC_MIX
    if ops == {"put"}:
        return ViolationKind.RACE_PUT_PUT
    return ViolationKind.RACE_PUT_GET


class RaceDetector:
    """Epoch-scoped byte-range conflict and stale-cache-hit detection."""

    def __init__(self) -> None:
        #: outstanding ops per (win, target): interval index over byte ranges
        self._outstanding: dict[tuple, IntervalIndex] = {}
        #: per (win, origin): [(target, index, handle, record)] for retirement
        self._open_ops: dict[tuple, list] = {}
        #: write history per (win, target) — never retired (stale detection
        #: must see writes from *closed* epochs)
        self._writes: dict[tuple, RangeMap] = {}
        #: network-fetch freshness per (win, reader, target)
        self._fetches: dict[tuple, RangeMap] = {}

    # ------------------------------------------------------------------
    def on_op(self, rec: OpRecord) -> list[Violation]:
        """Check ``rec`` against outstanding ops, then track it."""
        key = (rec.win, rec.target)
        index = self._outstanding.get(key)
        violations: list[Violation] = []
        if index is None:
            index = self._outstanding[key] = IntervalIndex()
        else:
            for other in index.overlapping(rec.lo, rec.hi):
                kind = conflict_kind(other, rec)
                if kind is None:
                    continue
                violations.append(
                    Violation(
                        kind=kind,
                        message=(
                            f"conflicting {other.op}/{rec.op} overlap on bytes "
                            f"[{max(rec.lo, other.lo)}, {min(rec.hi, other.hi)}) "
                            f"of rank {rec.target}'s window within one epoch"
                        ),
                        rank=rec.origin,
                        time=rec.time,
                        win=rec.win,
                        ops=(other, rec),
                    )
                )
        handle = index.add(rec.lo, rec.hi, rec)
        self._open_ops.setdefault((rec.win, rec.origin), []).append(
            (rec.target, index, handle, rec)
        )
        if rec.op == "get":
            self._fetches.setdefault(
                (rec.win, rec.origin, rec.target), RangeMap()
            ).update(rec)
        else:
            self._writes.setdefault((rec.win, rec.target), RangeMap()).update(rec)
        return violations

    def on_close(self, win: int | None, rank: int, targets: set[int] | None) -> None:
        """Retire ``rank``'s outstanding ops covered by an epoch closure."""
        open_ops = self._open_ops.get((win, rank))
        if not open_ops:
            return
        kept = []
        for entry in open_ops:
            target, index, handle, _rec = entry
            if targets is None or target in targets:
                index.remove(handle)
            else:
                kept.append(entry)
        self._open_ops[(win, rank)] = kept

    # ------------------------------------------------------------------
    def on_cache_access(self, event: Event, seq: int) -> list[Violation]:
        """Stale-read check for one classified ``cache.access`` event."""
        attrs = event.attrs
        if attrs.get("access") not in _CACHE_SERVED or "base" not in attrs:
            return []
        reader = event.rank
        target = int(attrs["target"])
        lo = int(attrs["base"])
        hi = lo + int(attrs["nbytes"])
        writes = self._writes.get((event.win, target))
        if writes is None:
            return []
        fetches = self._fetches.get((event.win, reader, target))
        fresh = -1
        if fetches is not None:
            fresh = max((r.seq for r in fetches.overlapping(lo, hi)), default=-1)
        violations = []
        for w in writes.overlapping(lo, hi):
            if w.origin == reader or w.seq <= fresh:
                continue
            violations.append(
                Violation(
                    kind=ViolationKind.STALE_CACHE_HIT,
                    message=(
                        f"cache hit by rank {reader} on bytes [{lo}, {hi}) of "
                        f"rank {target}'s window was served after a foreign "
                        f"write (last fetched from the network at seq {fresh})"
                    ),
                    rank=reader,
                    time=event.time,
                    win=event.win,
                    ops=(w,),
                )
            )
        return violations
