"""Static repo-invariant linter (``python -m repro.analysis lint src/``).

AST-based checks for the project rules the deterministic simulator and the
telemetry pipeline depend on.  These are *repo* invariants, not style: each
rule guards a property some subsystem assumes (reproducibility of virtual
time, resilience of the RMA path, integrity of the event taxonomy).

Rules
-----
``ANL001`` **no-wall-clock** — ``time.time``/``monotonic``/``perf_counter``
    /``process_time`` and ``datetime.now``-style calls are banned inside
    ``repro.core``, ``repro.mpi`` and ``repro.net``: results there must be
    functions of the *virtual* clock only, or runs stop being replayable.
``ANL002`` **seeded-random** — in the same packages every RNG must be
    seeded explicitly (``random.Random(seed)``, ``default_rng(seed)``);
    module-level ``random.*``/``np.random.*`` global-state draws are banned.
``ANL003`` **no-resilience-bypass** — the ``_*_once``/``_inject_*``/
    ``_resilient`` internals of :class:`repro.mpi.window.Window` implement
    the retry/fault layer; calling them from outside ``repro.mpi`` skips
    retry accounting and fault injection and is forbidden.
``ANL004`` **registered-event-names** — every obs event kind must be a
    registered constant: emissions may not use unregistered literals or
    names, raw literals that *are* registered must use the constant, and
    every constant in ``repro.obs.events`` must be in ``ALL_KINDS``.
``ANL005`` **no-mutable-default** — mutable default arguments
    (``[]``/``{}``/``set()`` and friends) anywhere in the tree.
``ANL006`` **pipeline-purity** — the RMA op entry points of
    :class:`repro.mpi.window.Window` and
    :class:`repro.core.window.CachedWindow` (``get``/``put``/``flush``/…)
    must describe + issue through the :mod:`repro.rma` pipeline only: no
    inlined cost, fault, retry or telemetry logic (``self.cost``,
    ``self._faults``, ``self._emit`` and friends) in their bodies.  Each
    cross-cutting concern lives in exactly one interceptor/stage.
``ANL007`` **deterministic-policies** — cache policy implementations
    (classes with a base ending in ``Policy``, i.e. anything pluggable
    into the :mod:`repro.core.policy` registry) must not read wall-clock
    time or draw from global RNG state — *in any package*, since
    user-registered policies can live anywhere yet still decide victim
    scores on the virtual-time-critical path.  Use ``ctx.seq_index`` /
    ``entry.last`` for recency and the seed handed to ``bind()`` for
    randomness.
``ANL014`` **gated-event-construction** — inside the hot-path packages
    (``repro.core``, ``repro.mpi``, ``repro.rma``, ``repro.runtime``)
    telemetry :class:`~repro.obs.Event` objects may only be constructed
    inside a ``_emit*`` helper, the convention for call sites that check
    ``bus.wants(kind)`` first.  A raw ``Event(...)`` on an op path
    allocates even when no sink consumes the kind, which is exactly the
    per-op overhead the kind-gated telemetry discipline removes.
``ANL008`` **recovery-owns-revocation** — ``except`` clauses naming
    ``RankRevokedError`` are banned outside :mod:`repro.recovery`: the
    revocation exception marks a *permanent* crash, and ad-hoc handlers
    tend to swallow it once and deadlock at the next collective.  Use the
    loop-until-stable helpers (``recovery.retrying``, ``.completed``,
    ``.barrier``, ``.shrink``) instead, which re-observe the failure set
    on every retry.

A finding on a given line is suppressed by an ``# analysis: allow(ANLxxx)``
comment on that line; a whole file opts out of a rule with
``# analysis: allow-file(ANLxxx)``.  Stale suppressions are themselves
reported (ANL013).  ``docs/analysis.md`` documents how to add a rule.

The rule registry, the :class:`Diagnostic` record, suppression parsing,
file walking and the text/json/SARIF emitters all live in
:mod:`repro.analysis.diagnostics`; this module contributes the check
functions and the lint driver.  ``Finding``/``RULES`` are re-exported for
backwards compatibility.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.diagnostics import (
    LINT_RULES,
    RULES,
    Diagnostic,
    Finding,
    SuppressionIndex,
    collect_files,
    parse_file,
    sort_diagnostics,
)

__all__ = ["Finding", "RULES", "lint_file", "run_lint"]

#: Packages in which ANL001/ANL002 apply (virtual-time-critical hot paths).
RESTRICTED_PACKAGES = ("core", "mpi", "net")

#: Packages in which ANL014 applies: the RMA data plane, where per-op
#: Event construction must stay behind a kind-gated ``_emit*`` helper.
HOT_PATH_PACKAGES = ("core", "mpi", "rma", "runtime")

#: Resilience-layer internals of repro.mpi.window.Window (ANL003).
RESILIENCE_INTERNALS = frozenset(
    {
        "_get_once",
        "_put_once",
        "_flush_once",
        "_flush_all_once",
        "_unlock_once",
        "_unlock_all_once",
        "_inject_op_fault",
        "_inject_sync_fault",
        "_resilient",
    }
)

#: RMA op entry points whose bodies must stay pipeline-only (ANL006).
PIPELINE_OP_METHODS = frozenset(
    {
        "get",
        "put",
        "accumulate",
        "rget",
        "rput",
        "get_batch",
        "get_blocking",
        "flush",
        "flush_all",
        "unlock",
        "unlock_all",
        "fence",
        "lock",
        "lock_all",
        "complete",
    }
)

#: Cross-cutting concern attributes owned by the repro.rma pipeline (ANL006):
#: accessing them from an op method re-inlines a concern an interceptor or
#: cache stage already owns.
PIPELINE_CONCERNS = frozenset(
    {
        "_emit",
        "_emit_access",
        "_obs",
        "obs",
        "_faults",
        "_retry",
        "_resilient",
        "_inject_op_fault",
        "_inject_sync_fault",
        "_post",
        "cost",
        "_sync_fault_counters",
        "_maybe_adapt",
    }
)

#: Classes whose op methods ANL006 applies to.
_PIPELINE_CLASSES = frozenset({"Window", "CachedWindow"})

_WALL_CLOCK_TIME_FNS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time"}
)
_WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


# ---------------------------------------------------------------------------
# event-kind registry
# ---------------------------------------------------------------------------
def _parse_registry(events_src: str) -> tuple[dict[str, str], set[str]]:
    """``{CONSTANT: value}`` and the ALL_KINDS member names from events.py."""
    tree = ast.parse(events_src)
    constants: dict[str, str] = {}
    all_kind_names: set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if (
            target.id.isupper()
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
            and "." in node.value.value
        ):
            constants[target.id] = node.value.value
        if target.id == "ALL_KINDS":
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Name) and inner.id.isupper():
                    all_kind_names.add(inner.id)
    return constants, all_kind_names


def _load_registry(
    files: Iterable[Path],
) -> tuple[dict[str, str], list[Finding]]:
    """Event-kind registry plus registration-consistency findings.

    Prefers the ``obs/events.py`` inside the linted tree (so the lint run
    checks exactly what it sees); falls back to importing
    :mod:`repro.obs.events` when linting a subset that excludes it.
    """
    events_file = next(
        (f for f in files if f.as_posix().endswith("obs/events.py")), None
    )
    findings: list[Finding] = []
    if events_file is not None:
        constants, registered = _parse_registry(events_file.read_text())
        for name in sorted(set(constants) - registered):
            findings.append(
                Finding(
                    str(events_file),
                    1,
                    "ANL004",
                    f"event constant {name} = {constants[name]!r} is not "
                    "registered in ALL_KINDS",
                )
            )
        for name in sorted(registered - set(constants)):
            findings.append(
                Finding(
                    str(events_file),
                    1,
                    "ANL004",
                    f"ALL_KINDS member {name} has no string constant",
                )
            )
        return constants, findings
    try:
        from repro.obs import events as ev
    except ImportError:
        return {}, findings
    constants = {
        n: v
        for n, v in vars(ev).items()
        if n.isupper() and isinstance(v, str) and "." in v
    }
    constants.pop("ALL_KINDS", None)
    return constants, findings


# ---------------------------------------------------------------------------
# per-file checks
# ---------------------------------------------------------------------------
def _docstring_nodes(tree: ast.Module) -> set[int]:
    """ids of Constant nodes that are docstrings (exempt from ANL004)."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


def _is_restricted(posix_path: str) -> bool:
    return any(f"repro/{pkg}/" in posix_path for pkg in RESTRICTED_PACKAGES)


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of an attribute chain ('np.random.rand')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _check_wall_clock(tree: ast.Module) -> Iterator[tuple[int, str, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        head, _, fn = dotted.rpartition(".")
        if head == "time" and fn in _WALL_CLOCK_TIME_FNS:
            yield node.lineno, "ANL001", (
                f"wall-clock call {dotted}() in a virtual-time package; "
                "charge the simulated clock instead"
            )
        elif fn in _WALL_CLOCK_DATETIME_FNS and head.split(".")[0] == "datetime":
            yield node.lineno, "ANL001", (
                f"wall-clock call {dotted}() in a virtual-time package"
            )


def _check_seeded_random(tree: ast.Module) -> Iterator[tuple[int, str, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        seeded = bool(node.args or node.keywords)
        if dotted.startswith("random."):
            fn = dotted[len("random."):]
            if fn == "Random":
                if not seeded:
                    yield node.lineno, "ANL002", (
                        "random.Random() without a seed; determinism requires "
                        "an explicit seed"
                    )
            elif "." not in fn:
                yield node.lineno, "ANL002", (
                    f"global-state RNG call {dotted}(); use a seeded "
                    "random.Random instance"
                )
        elif dotted in ("np.random.default_rng", "numpy.random.default_rng"):
            if not seeded:
                yield node.lineno, "ANL002", (
                    "default_rng() without a seed; determinism requires an "
                    "explicit seed"
                )
        elif dotted.startswith(("np.random.", "numpy.random.")):
            yield node.lineno, "ANL002", (
                f"global-state RNG call {dotted}(); use "
                "np.random.default_rng(seed)"
            )
        elif dotted == "Random" and not seeded:
            yield node.lineno, "ANL002", "Random() without a seed"


def _check_resilience_bypass(tree: ast.Module) -> Iterator[tuple[int, str, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr in RESILIENCE_INTERNALS:
            yield node.lineno, "ANL003", (
                f"access to Window resilience internal {node.attr!r} outside "
                "repro.mpi bypasses the retry/fault layer"
            )


def _event_kind_args(node: ast.Call) -> Iterator[ast.expr]:
    """Expressions holding an event kind in a call, if any."""
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if name == "_emit" and node.args:
        yield node.args[0]
    elif name == "Event":
        if node.args:
            yield node.args[0]
        for kw in node.keywords:
            if kw.arg == "kind":
                yield kw.value
    elif name == "CallbackSink":
        for kw in node.keywords:
            if kw.arg == "kinds" and isinstance(
                kw.value, (ast.Tuple, ast.List, ast.Set)
            ):
                yield from kw.value.elts


def _check_event_names(
    tree: ast.Module, registry: dict[str, str], is_events_module: bool
) -> Iterator[tuple[int, str, str]]:
    if not registry or is_events_module:
        return
    values = set(registry.values())
    docstrings = _docstring_nodes(tree)
    checked: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for arg in _event_kind_args(node):
            checked.add(id(arg))
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if arg.value not in values:
                    yield arg.lineno, "ANL004", (
                        f"emitted event kind {arg.value!r} is not registered "
                        "in repro.obs.events.ALL_KINDS"
                    )
            elif isinstance(arg, ast.Name) and arg.id.isupper():
                if arg.id not in registry:
                    yield arg.lineno, "ANL004", (
                        f"emitted event kind name {arg.id} is not a "
                        "repro.obs.events constant"
                    )
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in values
            and id(node) not in docstrings
            and id(node) not in checked
        ):
            const = next(n for n, v in registry.items() if v == node.value)
            yield node.lineno, "ANL004", (
                f"raw event-kind literal {node.value!r}; use the "
                f"{const} constant"
            )


def _check_pipeline_purity(tree: ast.Module) -> Iterator[tuple[int, str, str]]:
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef) or cls.name not in _PIPELINE_CLASSES:
            continue
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name not in PIPELINE_OP_METHODS:
                continue
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in PIPELINE_CONCERNS
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    yield node.lineno, "ANL006", (
                        f"op method {cls.name}.{fn.name}() touches "
                        f"{node.attr!r}; that concern belongs to a repro.rma "
                        "interceptor/stage — describe + issue only"
                    )


def _check_policy_purity(tree: ast.Module) -> Iterator[tuple[int, str, str]]:
    """ANL007: policy classes must stay deterministic, in any package.

    ANL001/ANL002 only patrol the virtual-time packages; a cache policy
    registered from application code runs on the same victim-scoring path,
    so the same two bans apply to any class with a ``*Policy`` base.
    """
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        if not any(
            _dotted(b).rpartition(".")[2].endswith("Policy") for b in cls.bases
        ):
            continue
        body = ast.Module(body=cls.body, type_ignores=[])
        for line, _rule, msg in _check_wall_clock(body):
            yield line, "ANL007", f"in policy class {cls.name}: {msg}"
        for line, _rule, msg in _check_seeded_random(body):
            yield line, "ANL007", f"in policy class {cls.name}: {msg}"


def _check_revocation_handlers(
    tree: ast.Module,
) -> Iterator[tuple[int, str, str]]:
    """ANL008: only repro.recovery may catch RankRevokedError."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or node.type is None:
            continue
        exprs = (
            node.type.elts
            if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        for expr in exprs:
            if _dotted(expr).rpartition(".")[2] == "RankRevokedError":
                yield node.lineno, "ANL008", (
                    "except RankRevokedError outside repro.recovery; use the "
                    "loop-until-stable helpers (recovery.retrying/completed/"
                    "barrier) so the failure set is re-observed on retry"
                )


def _is_hot_path(posix_path: str) -> bool:
    return any(f"repro/{pkg}/" in posix_path for pkg in HOT_PATH_PACKAGES)


def _check_gated_event_construction(
    tree: ast.Module,
) -> Iterator[tuple[int, str, str]]:
    """ANL014: hot-path Event() construction only inside ``_emit*`` helpers.

    Flags calls to the bare ``Event`` name (and ``obs.Event`` /
    ``events.Event`` attribute spellings) lexically outside a function
    whose name starts with ``_emit``.  Helpers named ``_emit*`` are the
    repo convention for kind-gated emission: they check
    ``bus.wants(kind)`` before allocating, so sink-less runs build zero
    Event objects on the op path.
    """

    def visit(
        node: ast.AST, in_emit_helper: bool
    ) -> Iterator[tuple[int, str, str]]:
        for child in ast.iter_child_nodes(node):
            inside = in_emit_helper
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # once lexically inside a gated helper, nested closures
                # are covered by the same wants() check
                inside = in_emit_helper or child.name.startswith("_emit")
            if isinstance(child, ast.Call) and not in_emit_helper:
                dotted = _dotted(child.func)
                head, _, name = dotted.rpartition(".")
                if name == "Event" and (
                    not head or head.rpartition(".")[2] in ("obs", "events")
                ):
                    yield child.lineno, "ANL014", (
                        "Event constructed outside a kind-gated _emit* "
                        "helper in a hot-path package; route the emission "
                        "through a helper that checks bus.wants(kind) first"
                    )
            yield from visit(child, inside)

    yield from visit(tree, False)


def _check_mutable_defaults(tree: ast.Module) -> Iterator[tuple[int, str, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for d in defaults:
            bad = isinstance(d, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(d, ast.Call)
                and isinstance(d.func, ast.Name)
                and d.func.id in ("list", "dict", "set", "bytearray")
            )
            if bad:
                yield d.lineno, "ANL005", (
                    f"mutable default argument in {node.name}(); default to "
                    "None and build inside the function"
                )


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def _collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Back-compat alias for :func:`repro.analysis.diagnostics.collect_files`."""
    return collect_files(paths)


def lint_file(
    path: Path, registry: dict[str, str]
) -> list[Finding]:
    """All findings for one source file (suppressions applied).

    Unparseable or unreadable files yield a single ANL000 diagnostic
    instead of a traceback, so one bad file cannot take down a tree-wide
    lint run.
    """
    tree, src, parse_diags = parse_file(path)
    if tree is None:
        return parse_diags
    posix = path.as_posix()

    raw: list[tuple[int, str, str]] = []
    evaluated: set[str] = {"ANL004", "ANL005", "ANL006"}
    if _is_restricted(posix):
        evaluated |= {"ANL001", "ANL002"}
        raw.extend(_check_wall_clock(tree))
        raw.extend(_check_seeded_random(tree))
    if "repro/mpi/" not in posix:
        evaluated.add("ANL003")
        raw.extend(_check_resilience_bypass(tree))
    raw.extend(
        _check_event_names(
            tree, registry, is_events_module=posix.endswith("obs/events.py")
        )
    )
    raw.extend(_check_pipeline_purity(tree))
    if not _is_restricted(posix):
        # inside the restricted packages ANL001/ANL002 already flag these
        evaluated.add("ANL007")
        raw.extend(_check_policy_purity(tree))
    if "repro/recovery/" not in posix:
        evaluated.add("ANL008")
        raw.extend(_check_revocation_handlers(tree))
    if _is_hot_path(posix):
        evaluated.add("ANL014")
        raw.extend(_check_gated_event_construction(tree))
    raw.extend(_check_mutable_defaults(tree))

    supp = SuppressionIndex(str(path), src)
    findings = supp.filter(
        Diagnostic(str(path), line, rule, message, fix=RULES[rule].fix)
        for line, rule, message in raw
    )
    findings.extend(supp.unused(evaluated & LINT_RULES))
    return findings


def run_lint(
    paths: Iterable[str | Path], cache=None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings.

    ``cache`` is an optional :class:`repro.analysis.diagnostics.AnalysisCache`
    for mtime+hash incremental reuse; registry-consistency findings are
    never cached (they are cross-file).
    """
    files = collect_files(paths)
    registry, findings = _load_registry(files)
    for f in files:
        cached = None
        src = None
        if cache is not None:
            try:
                src = f.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                src = None
            if src is not None:
                cached = cache.get(f, src)
        if cached is not None:
            findings.extend(cached)
            continue
        diags = lint_file(f, registry)
        if cache is not None and src is not None:
            cache.put(f, src, diags)
        findings.extend(diags)
    return sort_diagnostics(findings)
