"""``repro.analysis`` — RMA correctness analysis for the reproduction.

Two complementary checkers guard the transparency claim of the paper (a
cached get must never observe stale or racy data):

* a **dynamic sanitizer** (:class:`Sanitizer`, :func:`sanitize`) that
  subscribes to the :mod:`repro.obs` event bus and detects, per window and
  per exposure epoch: conflicting put/get/accumulate byte-range overlaps
  (MPI-3 11.7), reuse of a get's origin buffer before completion,
  passive-target epochs leaked open, and CLaMPI-specific stale-cache-hit
  hazards (a hit served after a foreign put invalidated the range);
* a **static repo-invariant linter** (:mod:`repro.analysis.lint`,
  ``python -m repro.analysis lint src/``) enforcing the project rules the
  deterministic simulator depends on — no wall-clock or unseeded
  randomness in hot paths, no bypassing the resilient RMA entry points,
  every emitted obs event kind registered, no mutable default arguments;
* a **flow-sensitive typestate verifier** (:mod:`repro.analysis.typestate`,
  ``python -m repro.analysis verify src/ examples/``) that abstractly
  interprets each function's CFG and proves the MPI-3 RMA epoch and
  completion discipline *statically* — epochs closed on every path
  including exception edges (ANL009), get results and put origins never
  touched while pending (ANL010/ANL011), ops only issued under a provably
  open epoch (ANL012).

All static findings share one :class:`Diagnostic` record (severity,
primary + related spans, fix-it hint, stable fingerprint) with text/json/
SARIF emitters, a checked-in suppression baseline and mtime+hash
incremental caching — see :mod:`repro.analysis.diagnostics`.

Typical dynamic use::

    from repro import analysis

    with analysis.sanitize(strict=True):          # raises at the bad call
        app.run(nprocs=4, spec=spec)

    with analysis.sanitize() as san:              # report mode
        app.run(nprocs=4, spec=spec)
    for v in san.violations:
        print(v.describe())

In strict mode a violation raises :class:`repro.mpi.RMARaceError` or
:class:`repro.mpi.EpochMisuseError` *at the violating call site* (the obs
bus delivers events synchronously), with both conflicting op records in
the message.  Every violation is also published as a typed
``analysis.violation`` event, so JSONL captures carry the findings next to
the operations that caused them; ``python -m repro.analysis report`` replays
any capture offline.  See ``docs/analysis.md`` for the violation taxonomy
and the lint rule list.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

_T = TypeVar("_T")

from repro.analysis.diagnostics import Diagnostic, Related, Rule
from repro.analysis.epochs import EpochTracker
from repro.analysis.lint import Finding, run_lint
from repro.analysis.typestate import run_verify
from repro.analysis.races import RaceDetector
from repro.analysis.recorder import (
    OpRecord,
    Violation,
    ViolationKind,
    batch_op_record,
    op_record,
)
from repro.obs import get_bus
from repro.obs.bus import EventBus
from repro.obs.events import (
    ANALYSIS_VIOLATION,
    CACHE_ACCESS,
    CACHE_ACCESS_BATCH,
    RMA_ACCUMULATE,
    RMA_FENCE,
    RMA_FLUSH,
    RMA_GET,
    RMA_GET_BATCH,
    RMA_LOCK,
    RMA_PUT,
    RMA_UNLOCK,
    Event,
)
from repro.obs.sinks import Sink

__all__ = [
    "Diagnostic",
    "Finding",
    "OpRecord",
    "Related",
    "Rule",
    "Sanitizer",
    "Violation",
    "ViolationKind",
    "run_lint",
    "run_sanitized",
    "run_verify",
    "sanitize",
]

_OP_KINDS = frozenset({RMA_GET, RMA_PUT, RMA_ACCUMULATE})
_CLOSE_KINDS = frozenset({RMA_FLUSH, RMA_UNLOCK, RMA_FENCE})


class Sanitizer(Sink):
    """Dynamic RMA checker, attached to an event bus like any sink.

    ``strict=False`` (report mode) collects :class:`Violation` records;
    ``strict=True`` additionally raises the violation's typed error at the
    call site of the offending operation.  :meth:`finish` runs the
    end-of-scope audits (epoch leaks); :func:`sanitize` calls it
    automatically on clean exit.
    """

    def __init__(self, strict: bool = False, bus: EventBus | None = None):
        self.strict = strict
        self.violations: list[Violation] = []
        self._bus = bus  #: where analysis.violation events are published
        self._races = RaceDetector()
        self._epochs = EpochTracker()
        self._seq = 0
        self._finished = False

    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        kind = event.kind
        if kind == ANALYSIS_VIOLATION:
            return  # our own reports, re-delivered through the bus
        self._seq += 1
        found: list[Violation] = []
        if kind in _OP_KINDS:
            rec = op_record(event, self._seq)
            if rec is None:
                return
            found.extend(self._epochs.on_op(rec))
            found.extend(self._races.on_op(rec))
        elif kind in _CLOSE_KINDS:
            target = event.attrs.get("target")
            targets = None if target is None else {int(target)}
            if kind == RMA_FENCE:
                targets = None
            self._races.on_close(event.win, event.rank, targets)
            self._epochs.on_close(event, targets, unlock=kind == RMA_UNLOCK)
        elif kind == RMA_LOCK:
            self._epochs.on_lock(event)
        elif kind == CACHE_ACCESS:
            found.extend(self._races.on_cache_access(event, self._seq))
        elif kind == RMA_GET_BATCH:
            # Batched gets suppress per-op events; the batch entry carries
            # one footprint per element, analysed like N scalar gets.
            for op_attrs in event.attrs.get("ops", ()):
                rec = batch_op_record(event, op_attrs, self._seq)
                if rec is None:
                    continue
                found.extend(self._epochs.on_op(rec))
                found.extend(self._races.on_op(rec))
                self._seq += 1
        elif kind == CACHE_ACCESS_BATCH:
            for op_attrs in event.attrs.get("ops", ()):
                sub = Event(
                    CACHE_ACCESS,
                    event.rank,
                    event.time,
                    epoch=event.epoch,
                    win=event.win,
                    attrs=op_attrs,
                )
                found.extend(self._races.on_cache_access(sub, self._seq))
                self._seq += 1
        if found:
            self._record(found)

    def finish(self) -> list[Violation]:
        """End-of-scope audit; returns all violations seen.

        Idempotent: the leak audit runs once, further calls just return
        the accumulated list.
        """
        if not self._finished:
            self._finished = True
            leaks = self._epochs.finish()
            if leaks:
                self._record(leaks)
        return self.violations

    # ------------------------------------------------------------------
    def _record(self, found: list[Violation]) -> None:
        self.violations.extend(found)
        if self._bus is not None and self._bus.enabled:
            for v in found:
                self._bus.emit(
                    Event(
                        ANALYSIS_VIOLATION,
                        v.rank,
                        v.time,
                        win=v.win,
                        attrs=v.to_dict(),
                    )
                )
        if self.strict:
            raise found[0].error()

    def counts(self) -> dict[str, int]:
        """Violation tally per kind value (stable order)."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.kind.value] = out.get(v.kind.value, 0) + 1
        return out

    def render_report(self) -> str:
        """Human-readable multi-line summary of all violations."""
        if not self.violations:
            return "no violations detected\n"
        lines = [f"{len(self.violations)} violation(s) detected"]
        for kind, n in sorted(self.counts().items()):
            lines.append(f"  {kind}: {n}")
        lines.append("")
        lines.extend(v.describe() for v in self.violations)
        return "\n".join(lines) + "\n"


def run_sanitized(
    fn: "Callable[[], _T]", bus: EventBus | None = None
) -> "tuple[_T, list[Violation]]":
    """Run ``fn`` under a report-mode sanitizer; return its result + findings.

    The library face of the checker for harnesses that need the verdict as
    *data* rather than as a raised error (the transparency fuzzer's oracle
    matrix treats "sanitizer found something" as one more comparable
    observable).  Nothing raises: end-of-scope audits (epoch leaks) are
    folded into the returned list, and the bus is restored on exit.
    """
    with sanitize(strict=False, bus=bus) as san:
        result = fn()
    return result, san.violations


@contextmanager
def sanitize(
    strict: bool = False, bus: EventBus | None = None
) -> Iterator[Sanitizer]:
    """Attach a :class:`Sanitizer` to the (global) bus for the duration.

    On clean exit the end-of-scope audits run (and, in strict mode, may
    raise); if the body itself raised — e.g. a strict violation — the
    audits are skipped so the original error surfaces unmasked.
    """
    b = bus if bus is not None else get_bus()
    san = Sanitizer(strict=strict, bus=b)
    b.attach(san)
    try:
        yield san
        san.finish()
    finally:
        b.detach(san)
