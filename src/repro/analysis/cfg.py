"""Control-flow graphs over Python function bodies.

The epoch/flush typestate verifier (:mod:`repro.analysis.typestate`) is a
flow-sensitive abstract interpreter; this module gives it the graph.  A
:class:`CFG` is built per function body (or module body) and models:

* branches (``if``/``match``), loops (``for``/``while`` with back edges,
  ``break``/``continue``, loop ``else``);
* ``try``/``except``/``else``/``finally`` — statements inside a ``try``
  get **exception edges** to every handler and to the ``finally``'s
  exceptional copy, so state that was live mid-``try`` (e.g. "epoch
  open") reaches the handlers;
* ``with`` blocks — desugared to ``try``/``finally`` whose cleanup is a
  synthetic :class:`WithExit` atom, so context-managed epochs close on
  *every* edge out of the body, exceptional or not;
* abrupt exits — ``return``/``break``/``continue`` route through every
  enclosing ``finally`` (and ``with`` cleanup) before reaching their
  target, exactly like the runtime does.

Exception edges are deliberately *selective*: outside any ``try``/
``with``, only an explicit ``raise`` jumps to the function's exceptional
exit.  Treating every call as potentially raising would flag nearly all
straight-line ``lock_all(); ...; unlock_all()`` code as a leak; the
dynamic sanitizer covers that residue at runtime, while the verifier
stays false-positive-free on idiomatic code.

Blocks hold "atoms": ordinary simple statements, the *head* statement of
a compound (only its test/iterator/items expression is interpreted), or
a :class:`WithExit`.  Each block records its normal successors and its
exception targets; the interpreter propagates the running state after
each atom to the exception targets, giving statement-level precision
with block-level edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


class WithExit:
    """Synthetic cleanup atom for one ``with`` statement's ``__exit__``."""

    __slots__ = ("node",)

    def __init__(self, node: ast.With) -> None:
        self.node = node

    @property
    def lineno(self) -> int:
        return self.node.lineno

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WithExit(line={self.node.lineno})"


Atom = "ast.stmt | WithExit"


@dataclass
class Block:
    """A straight-line run of atoms with explicit successors."""

    id: int
    atoms: list = field(default_factory=list)
    #: normal successors: (block id, edge kind) — kind in
    #: {"next", "true", "false", "loop", "back", "return", "raise"}
    succs: list = field(default_factory=list)
    #: exception targets: state mid-block may jump to any of these
    exc: list = field(default_factory=list)

    def add_succ(self, dst: int, kind: str = "next") -> None:
        if (dst, kind) not in self.succs:
            self.succs.append((dst, kind))


@dataclass
class CFG:
    """One function (or module) body as a graph."""

    blocks: dict = field(default_factory=dict)
    entry: int = 0
    exit: int = 0        #: normal-return exit (virtual, empty block)
    raise_exit: int = 0  #: uncaught-exception exit (virtual, empty block)

    def block(self, bid: int) -> Block:
        return self.blocks[bid]

    def preds(self, bid: int) -> list:
        out = []
        for b in self.blocks.values():
            for dst, kind in b.succs:
                if dst == bid:
                    out.append((b.id, kind))
            if bid in b.exc:
                out.append((b.id, "exc"))
        return out


class _FinallyCtx:
    """One enclosing ``finally`` (or ``with`` cleanup) abrupt exits must run."""

    __slots__ = ("kind", "payload", "exc_targets")

    def __init__(self, kind: str, payload, exc_targets: list) -> None:
        self.kind = kind          # "finally" | "with"
        self.payload = payload    # list[ast.stmt] | ast.With
        self.exc_targets = exc_targets  # where its own exceptions go


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._next_id = 0
        # virtual exits first so ids are stable
        self.cfg.exit = self._new_block().id
        self.cfg.raise_exit = self._new_block().id
        #: stack of exception-target lists ([] outside any try/with)
        self._exc_stack: list[list[int]] = []
        #: stack of (break_target, continue_target, finally_depth)
        self._loops: list[tuple[int, int, int]] = []
        #: stack of _FinallyCtx, innermost last
        self._finallies: list[_FinallyCtx] = []

    # ------------------------------------------------------------------
    def _new_block(self) -> Block:
        b = Block(self._next_id)
        self._next_id += 1
        self.cfg.blocks[b.id] = b
        return b

    def _current_exc_targets(self) -> list[int]:
        return self._exc_stack[-1] if self._exc_stack else []

    def _atom(self, block: Block, node) -> None:
        block.atoms.append(node)
        for t in self._current_exc_targets():
            if t not in block.exc:
                block.exc.append(t)

    # ------------------------------------------------------------------
    def build(self, fn_body: list) -> CFG:
        entry = self._new_block()
        self.cfg.entry = entry.id
        last = self._stmts(fn_body, entry)
        if last is not None:
            last.add_succ(self.cfg.exit, "next")
        return self.cfg

    def _stmts(self, stmts: list, current: Block | None) -> Block | None:
        for stmt in stmts:
            if current is None:
                # unreachable code after return/raise/break — still build it
                # so its own structure is sane, but nothing flows in.
                current = self._new_block()
            current = self._stmt(stmt, current)
        return current

    # ------------------------------------------------------------------
    def _stmt(self, stmt, current: Block) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, ast.While):
            return self._while(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, ast.Return):
            self._atom(current, stmt)
            tail = self._run_finallies(current, 0)
            tail.add_succ(self.cfg.exit, "return")
            return None
        if isinstance(stmt, ast.Raise):
            self._atom(current, stmt)
            targets = self._current_exc_targets()
            if targets:
                for t in targets:
                    current.add_succ(t, "raise")
            else:
                tail = self._run_finallies(current, 0)
                tail.add_succ(self.cfg.raise_exit, "raise")
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                break_t, _cont, depth = self._loops[-1]
                tail = self._run_finallies(current, depth)
                tail.add_succ(break_t, "next")
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                _break_t, cont_t, depth = self._loops[-1]
                tail = self._run_finallies(current, depth)
                tail.add_succ(cont_t, "back")
            return None
        # simple statement (incl. nested def/class, treated opaquely)
        self._atom(current, stmt)
        return current

    # ------------------------------------------------------------------
    def _run_finallies(self, current: Block, upto_depth: int) -> Block:
        """Inline enclosing finally/with cleanups (innermost first) down to
        ``upto_depth``; returns the block control ends in."""
        for ctx in reversed(self._finallies[upto_depth:]):
            nxt = self._new_block()
            current.add_succ(nxt.id, "next")
            current = nxt
            if ctx.kind == "with":
                self._atom(current, WithExit(ctx.payload))
            else:
                saved_exc = self._exc_stack
                self._exc_stack = [ctx.exc_targets] if ctx.exc_targets else []
                end = self._stmts(ctx.payload, current)
                self._exc_stack = saved_exc
                if end is None:
                    end = self._new_block()  # finally itself diverged
                current = end
        return current

    # ------------------------------------------------------------------
    def _if(self, stmt: ast.If, current: Block) -> Block | None:
        self._atom(current, stmt)  # interpreter reads stmt.test only
        after = self._new_block()
        body_entry = self._new_block()
        current.add_succ(body_entry.id, "true")
        body_end = self._stmts(stmt.body, body_entry)
        if body_end is not None:
            body_end.add_succ(after.id, "next")
        if stmt.orelse:
            else_entry = self._new_block()
            current.add_succ(else_entry.id, "false")
            else_end = self._stmts(stmt.orelse, else_entry)
            if else_end is not None:
                else_end.add_succ(after.id, "next")
        else:
            current.add_succ(after.id, "false")
        return after if self.cfg.preds(after.id) else None

    def _loop(self, stmt, current: Block, head_atom) -> Block | None:
        head = self._new_block()
        current.add_succ(head.id, "next")
        self._atom(head, head_atom)
        after = self._new_block()
        body_entry = self._new_block()
        head.add_succ(body_entry.id, "loop")
        self._loops.append((after.id, head.id, len(self._finallies)))
        body_end = self._stmts(stmt.body, body_entry)
        self._loops.pop()
        if body_end is not None:
            body_end.add_succ(head.id, "back")
        if stmt.orelse:
            else_entry = self._new_block()
            head.add_succ(else_entry.id, "false")
            else_end = self._stmts(stmt.orelse, else_entry)
            if else_end is not None:
                else_end.add_succ(after.id, "next")
        else:
            head.add_succ(after.id, "false")
        return after if self.cfg.preds(after.id) else None

    def _for(self, stmt, current: Block) -> Block | None:
        return self._loop(stmt, current, stmt)

    def _while(self, stmt: ast.While, current: Block) -> Block | None:
        return self._loop(stmt, current, stmt)

    def _match(self, stmt: ast.Match, current: Block) -> Block | None:
        self._atom(current, stmt)  # interpreter reads stmt.subject only
        after = self._new_block()
        for case in stmt.cases:
            case_entry = self._new_block()
            current.add_succ(case_entry.id, "true")
            case_end = self._stmts(case.body, case_entry)
            if case_end is not None:
                case_end.add_succ(after.id, "next")
        current.add_succ(after.id, "false")  # no case may match
        return after

    # ------------------------------------------------------------------
    def _with(self, stmt, current: Block) -> Block | None:
        self._atom(current, stmt)  # interpreter opens epochs from stmt.items
        # exceptional cleanup: body exceptions run __exit__ then propagate
        exc_cleanup = self._new_block()
        self._atom(exc_cleanup, WithExit(stmt))
        outer_targets = self._current_exc_targets()
        if outer_targets:
            for t in outer_targets:
                exc_cleanup.add_succ(t, "raise")
        else:
            exc_cleanup.add_succ(self.cfg.raise_exit, "raise")

        body_entry = self._new_block()
        current.add_succ(body_entry.id, "next")
        self._exc_stack.append([exc_cleanup.id])
        self._finallies.append(_FinallyCtx("with", stmt, outer_targets))
        body_end = self._stmts(stmt.body, body_entry)
        self._finallies.pop()
        self._exc_stack.pop()

        if body_end is None:
            return None
        normal_cleanup = self._new_block()
        self._atom(normal_cleanup, WithExit(stmt))
        body_end.add_succ(normal_cleanup.id, "next")
        return normal_cleanup

    # ------------------------------------------------------------------
    def _try(self, stmt: ast.Try, current: Block) -> Block | None:
        after = self._new_block()
        outer_targets = self._current_exc_targets()

        # exceptional finally copy (if any): runs, then propagates outward
        fin_exc_entry: Block | None = None
        if stmt.finalbody:
            fin_exc_entry = self._new_block()
            saved = self._exc_stack
            self._exc_stack = [outer_targets] if outer_targets else []
            fin_exc_end = self._stmts(stmt.finalbody, fin_exc_entry)
            self._exc_stack = saved
            if fin_exc_end is not None:
                if outer_targets:
                    for t in outer_targets:
                        fin_exc_end.add_succ(t, "raise")
                else:
                    fin_exc_end.add_succ(self.cfg.raise_exit, "raise")

        handler_entries: list[Block] = [
            self._new_block() for _ in stmt.handlers
        ]
        body_targets = [b.id for b in handler_entries]
        if fin_exc_entry is not None:
            body_targets = body_targets + [fin_exc_entry.id]

        def run_normal_finally(block: Block) -> Block | None:
            if not stmt.finalbody:
                return block
            entry = self._new_block()
            block.add_succ(entry.id, "next")
            saved = self._exc_stack
            self._exc_stack = [outer_targets] if outer_targets else []
            end = self._stmts(stmt.finalbody, entry)
            self._exc_stack = saved
            return end

        # --- body (and else) ---
        body_entry = self._new_block()
        current.add_succ(body_entry.id, "next")
        self._exc_stack.append(body_targets)
        if stmt.finalbody:
            self._finallies.append(
                _FinallyCtx("finally", stmt.finalbody, outer_targets)
            )
        body_end = self._stmts(stmt.body, body_entry)
        if body_end is not None and stmt.orelse:
            body_end = self._stmts(stmt.orelse, body_end)
        self._exc_stack.pop()

        # --- handlers: their own exceptions go to finally-exc or outward ---
        handler_targets = (
            [fin_exc_entry.id] if fin_exc_entry is not None else outer_targets
        )
        for handler, entry in zip(stmt.handlers, handler_entries):
            self._exc_stack.append(handler_targets)
            h_end = self._stmts(handler.body, entry)
            self._exc_stack.pop()
            if h_end is not None:
                h_end = run_normal_finally(h_end)
                if h_end is not None:
                    h_end.add_succ(after.id, "next")
        if stmt.finalbody:
            self._finallies.pop()

        if body_end is not None:
            body_end = run_normal_finally(body_end)
            if body_end is not None:
                body_end.add_succ(after.id, "next")

        return after if self.cfg.preds(after.id) else None


def build_cfg(body: list) -> CFG:
    """Build the CFG of one function/module body (a list of statements)."""
    return _Builder().build(body)
