"""Virtual-time charges for cache-management work (Fig. 7 decomposition).

CLaMPI's promise is *bounded overhead in the miss case*; to evaluate that
(micro-benchmarks of Sec. IV-A) every management step must cost virtual
time:

* ``lookup``     — the constant-time cuckoo query;
* ``probes``     — extra hash-table probes during insertion walks;
* ``alloc_steps``/``free_steps`` — AVL search/rebalance steps;
* ``eviction_visits`` — slots visited while sampling a victim;
* ``descriptor_updates`` — linked-list / ``d_c`` bookkeeping;
* ``copy``       — payload memcpy (hit path and materialisation);
* ``invalidate`` — clearing the structures;
* ``adjust``     — adaptive resize: structure re-allocation + invalidation.

The sink is usually ``SimProcess.advance``; standalone (non-MPI) cache
experiments pass no sink and just read :attr:`CostModel.total`.
"""

from __future__ import annotations

from typing import Callable

from repro.net.model import MemoryModel

#: fixed cost of tearing down the structures on invalidation
INVALIDATE_BASE = 1.0e-6
#: per-live-entry cost of invalidation (descriptor/score teardown)
INVALIDATE_PER_ENTRY = 30e-9
#: per-slot cost of (re)initialising the index (memset-like)
SLOT_INIT = 1.0e-9
#: per-byte cost of (re)allocating the storage buffer (page touch)
STORAGE_INIT_PER_BYTE = 0.05e-9


class CostModel:
    """Accumulates management time and forwards it to a clock sink."""

    def __init__(
        self,
        memory: MemoryModel | None = None,
        sink: Callable[[float], None] | None = None,
    ):
        self.memory = memory or MemoryModel()
        self._sink = sink
        self.total = 0.0  #: cumulative management time (seconds)

    def _charge(self, seconds: float) -> None:
        self.total += seconds
        if self._sink is not None:
            self._sink(seconds)

    # ------------------------------------------------------------------
    def lookup(self) -> None:
        self._charge(self.memory.lookup_time)

    def probes(self, n: int) -> None:
        self._charge(n * self.memory.probe_time)

    def copy(self, nbytes: int) -> None:
        self._charge(self.memory.copy_time(nbytes))

    def avl_steps(self, n: int) -> None:
        self._charge(n * self.memory.avl_step_time)

    def eviction_visits(self, n: int) -> None:
        self._charge(n * self.memory.eviction_visit_time)

    def descriptor_updates(self, n: int) -> None:
        self._charge(n * self.memory.descriptor_update_time)

    def invalidate(self, live_entries: int) -> None:
        self._charge(INVALIDATE_BASE + live_entries * INVALIDATE_PER_ENTRY)

    def adjust(self, new_slots: int, new_storage_bytes: int) -> None:
        """Adaptive resize: rebuild index + storage (then invalidate)."""
        self._charge(new_slots * SLOT_INIT + new_storage_bytes * STORAGE_INIT_PER_BYTE)
