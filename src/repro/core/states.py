"""Cache-entry state machine (paper Fig. 5).

Every cache entry is conceptually in one of three states:

* ``MISSING`` — not present (the initial state, and the state after
  eviction/invalidation);
* ``PENDING`` — the data has been requested by a get in the current epoch
  but the epoch has not closed yet, so the payload is not in ``S_w``;
* ``CACHED`` — the payload sits in ``S_w`` and can be copied to any
  destination buffer.

Legal transitions (Fig. 5): MISSING→PENDING on a successful *direct*,
*conflicting* or *capacity* access; PENDING→CACHED at epoch closure;
CACHED→MISSING on eviction or invalidation; PENDING→MISSING on invalidation
(transparent-mode closure).  Everything else is a bug and
:func:`check_transition` raises.
"""

from __future__ import annotations

from enum import Enum


class EntryState(Enum):
    MISSING = "missing"
    PENDING = "pending"
    CACHED = "cached"


_LEGAL: frozenset[tuple[EntryState, EntryState]] = frozenset(
    {
        (EntryState.MISSING, EntryState.PENDING),   # successful miss access
        (EntryState.PENDING, EntryState.CACHED),    # epoch closure
        (EntryState.CACHED, EntryState.MISSING),    # eviction / invalidation
        (EntryState.PENDING, EntryState.MISSING),   # invalidation before close
        (EntryState.CACHED, EntryState.PENDING),    # partial-hit extension refetch
    }
)


class IllegalTransition(RuntimeError):
    """Raised when an entry attempts a transition not present in Fig. 5."""


def check_transition(old: EntryState, new: EntryState) -> None:
    """Validate a state change; raises :class:`IllegalTransition` if bogus."""
    if old == new:
        return
    if (old, new) not in _LEGAL:
        raise IllegalTransition(f"illegal cache-entry transition {old} -> {new}")
