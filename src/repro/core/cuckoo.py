"""The index ``I_w``: a cuckoo hash table (paper Sec. III-C1).

Entries are keyed by ``(target_rank, displacement)`` — the paper defines a
hit as ``x.trg == i.trg and x.dsp == i.dsp``, which is what makes the index
a constant-lookup-time structure (as opposed to overlap queries on interval
trees).

Collision resolution follows Fotakis et al. ("space efficient hash tables
with worst case constant access time"): ``p`` universal hash functions give
each key ``p`` candidate slots; insertion performs a random walk displacing
occupants; the walk is bounded to detect cycles.  CLaMPI's twist: instead of
rehashing on insertion failure, the failure is surfaced as a *conflicting
access* and one of the entries on the **insertion path** is evicted
(Sec. III-D).

The table never grows by itself — resizing is the adaptive controller's job
and implies a full invalidation (Sec. III-E1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Protocol

_PRIME = (1 << 61) - 1  # Mersenne prime for universal hashing


class Indexable(Protocol):
    """What the index needs from an entry: a key and a writable slot."""

    key: tuple[int, int]
    slot: int


def _mix_key(key: tuple[int, int]) -> int:
    """Map an (trg, dsp) key to a well-spread 64-bit integer."""
    trg, dsp = key
    x = (trg * 0x9E3779B97F4A7C15 + dsp * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return x


@dataclass
class InsertResult:
    """Outcome of one insertion attempt."""

    success: bool
    probes: int = 0
    #: entries visited along the insertion path (for conflict eviction)
    path: list = field(default_factory=list)
    #: the entry left homeless on failure (the displaced chain's tail)
    homeless: object | None = None


class CuckooIndex:
    """Fixed-capacity cuckoo hash table over cache entries."""

    def __init__(
        self,
        capacity: int,
        num_hashes: int = 4,
        max_iterations: int = 32,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if num_hashes < 2:
            raise ValueError("need at least 2 hash functions")
        self.capacity = capacity
        self.num_hashes = num_hashes
        self.max_iterations = max_iterations
        self._rng = random.Random(seed)
        # Universal hashing: h_i(x) = ((a_i * x + b_i) mod P) mod capacity
        self._coeffs = [
            (self._rng.randrange(1, _PRIME), self._rng.randrange(0, _PRIME))
            for _ in range(num_hashes)
        ]
        self._slots: list[Indexable | None] = [None] * capacity
        self._count = 0
        # Candidate-slot memo: h_1..h_p are pure functions of the key (the
        # coefficients and capacity are fixed for the table's lifetime), and
        # workloads re-probe the same (trg, dsp) keys millions of times, so
        # mixing + p modular hashes are computed once per distinct key.  The
        # memo is bounded (cleared wholesale when full) so adversarial key
        # streams cannot grow it without limit.
        self._cand_memo: dict[tuple[int, int], tuple[int, ...]] = {}
        self._memo_limit = max(1024, 8 * capacity)

    # ------------------------------------------------------------------
    def _candidates(self, key: tuple[int, int]) -> tuple[int, ...]:
        """All p candidate slots of ``key``, memoized."""
        c = self._cand_memo.get(key)
        if c is None:
            if len(self._cand_memo) >= self._memo_limit:
                self._cand_memo.clear()
            mix = _mix_key(key)
            c = tuple(
                ((a * mix + b) % _PRIME) % self.capacity
                for a, b in self._coeffs
            )
            self._cand_memo[key] = c
        return c

    def _hash(self, key: tuple[int, int], i: int) -> int:
        return self._candidates(key)[i]

    def candidate_slots(self, key: tuple[int, int]) -> list[int]:
        """The p candidate slot indices of ``key`` (may contain repeats)."""
        return list(self._candidates(key))

    # ------------------------------------------------------------------
    def lookup(self, key: tuple[int, int]) -> tuple[Indexable | None, int]:
        """Return ``(entry, probes)``; entry is None on miss.

        Worst-case constant time: at most ``p`` probes.
        """
        probes = 0
        slots = self._slots
        for slot in self._candidates(key):
            probes += 1
            e = slots[slot]
            if e is not None and e.key == key:
                return e, probes
        return None, probes

    def insert(self, entry: Indexable) -> InsertResult:
        """Random-walk insertion; never rehashes.

        On success the entry (and any displaced entries) have valid
        ``slot`` fields.  On failure the table is left *consistent* —
        every stored entry is reachable — and ``homeless`` carries the
        entry that could not be placed (it may be ``entry`` itself or a
        displaced occupant); ``path`` lists the distinct entries visited,
        i.e. the candidates for a conflict eviction.
        """
        existing, _ = self.lookup(entry.key)
        if existing is not None:
            raise ValueError(f"duplicate key {entry.key}")

        probes = 0
        path: list[Indexable] = []
        seen_ids: set[int] = set()
        current = entry
        last_slot = -1  # slot we were just displaced from (avoid ping-pong)
        for _ in range(self.max_iterations):
            # Try all candidate slots of the current item for a free one.
            cands = self._candidates(current.key)
            probes += len(cands)
            free = [s for s in cands if self._slots[s] is None]
            if free:
                slot = free[0]
                self._place(current, slot)
                self._count += 1  # net effect of the whole walk: one new entry
                return InsertResult(True, probes, path)
            # No free slot: displace a random occupant (not the slot we
            # came from, when avoidable).
            choices = [s for s in cands if s != last_slot] or cands
            slot = choices[self._rng.randrange(len(choices))]
            victim = self._slots[slot]
            assert victim is not None
            if id(victim) not in seen_ids:
                seen_ids.add(id(victim))
                path.append(victim)
            self._slots[slot] = None  # pop the victim, then place current
            self._place(current, slot)
            current = victim
            current.slot = -1
            last_slot = slot
        # Cycle detected: undo nothing (table is consistent), report the
        # homeless tail so the caller can evict somebody on ``path``.
        return InsertResult(False, probes, path, homeless=current)

    def remove(self, entry: Indexable) -> None:
        """Remove a stored entry in O(1) via its slot."""
        slot = entry.slot
        if slot < 0 or slot >= self.capacity or self._slots[slot] is not entry:
            raise KeyError(f"entry {entry.key} not stored in this index")
        self._slots[slot] = None
        entry.slot = -1
        self._count -= 1

    def _place(self, entry: Indexable, slot: int) -> None:
        """Store ``entry`` at ``slot``; count bookkeeping is the caller's.

        During the random walk a placement always pairs with a displacement
        (net zero), so ``_count`` is only bumped on a successful walk (one
        genuinely new entry) and on :meth:`remove`.  On a *failed* walk the
        new entry is stored but one displaced occupant ends up homeless, so
        the net count change is likewise zero.
        """
        self._slots[slot] = entry
        entry.slot = slot

    # ------------------------------------------------------------------
    def entry_at(self, slot: int) -> Indexable | None:
        """Direct slot access (victim sampling walks the table this way)."""
        return self._slots[slot]

    def __len__(self) -> int:
        return self._count

    @property
    def load_factor(self) -> float:
        return len(self) / self.capacity

    def entries(self) -> Iterator[Indexable]:
        for s in self._slots:
            if s is not None:
                yield s

    def clear(self) -> None:
        for i, e in enumerate(self._slots):
            if e is not None:
                e.slot = -1
            self._slots[i] = None
        self._count = 0
