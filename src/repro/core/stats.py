"""Access-type accounting for a caching layer.

The paper classifies every get_c (Sec. III-B):

* *hitting* — lookup found a CACHED or PENDING entry (full or partial);
* *direct* — miss served without any eviction;
* *conflicting* — miss that required an index (cuckoo insertion-path)
  eviction;
* *capacity* — miss that required a storage eviction which then freed
  enough space;
* *failing* — miss that could not be cached (no resources even after the
  bounded eviction attempt).

Figures 13, 16 and 18 plot exactly these counters normalised by the total
number of gets; the adaptive controller (Sec. III-E) consumes the same
counters over a sliding interval, so :class:`CacheStats` keeps both a
cumulative and a resettable *interval* view.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum

#: Version of the public ``CacheStats.snapshot()`` schema.  Bump whenever a
#: counter is added, removed or renamed so downstream consumers (captures,
#: dashboards, the obs report CLI) can detect incompatible dumps.
#: v2: added the resilience counters (faults_injected, retries,
#: storage_faults, degraded_gets, quarantines).
#: v3: added the resolved eviction/admission policy name (``policy``, a
#: string — the one non-numeric snapshot value besides schema_version)
#: and the ``admission_rejects`` counter.
#: v4: added the crash-recovery counters (rank_failures,
#: failed_target_gets, recovered_gets, recovery_pinned, recovery_dropped).
SCHEMA_VERSION = 4


class AccessType(Enum):
    HIT_FULL = "hit_full"
    HIT_PARTIAL = "hit_partial"
    HIT_PENDING = "hit_pending"
    DIRECT = "direct"
    CONFLICTING = "conflicting"
    CAPACITY = "capacity"
    FAILING = "failing"


@dataclass
class Counters:
    """Raw event counters (one instance per accounting scope)."""

    gets: int = 0
    hit_full: int = 0
    hit_partial: int = 0
    hit_pending: int = 0
    direct: int = 0
    conflicting: int = 0
    capacity: int = 0
    failing: int = 0
    evictions: int = 0
    eviction_visited: int = 0       #: index slots visited by capacity evictions
    eviction_nonempty: int = 0      #: of those, how many held an entry
    capacity_evictions: int = 0     #: evictions triggered by storage pressure
    conflict_evictions: int = 0     #: evictions triggered by cuckoo cycles
    invalidations: int = 0
    adjustments: int = 0            #: adaptive parameter changes
    bytes_from_cache: int = 0
    bytes_from_network: int = 0
    # -- resilience counters (schema v2) --------------------------------
    faults_injected: int = 0        #: injected get/put/flush faults observed
    retries: int = 0                #: backoff retries performed underneath
    storage_faults: int = 0         #: injected S_w allocation failures
    degraded_gets: int = 0          #: gets served direct while quarantined
    quarantines: int = 0            #: times the cache self-disabled
    # -- policy counters (schema v3) ------------------------------------
    admission_rejects: int = 0      #: misses the admission policy refused
    # -- crash-recovery counters (schema v4) ----------------------------
    rank_failures: int = 0          #: crashed target ranks this cache observed
    failed_target_gets: int = 0     #: gets refused because the target is dead
    recovered_gets: int = 0         #: gets served from a dead rank's entries
    recovery_pinned: int = 0        #: entries pinned read-only on target death
    recovery_dropped: int = 0       #: entries invalidated on target death

    def record_access(self, access: AccessType) -> None:
        self.gets += 1
        name = access.value
        setattr(self, name, getattr(self, name) + 1)

    @property
    def hits(self) -> int:
        return self.hit_full + self.hit_partial + self.hit_pending

    @property
    def misses(self) -> int:
        return self.direct + self.conflicting + self.capacity + self.failing

    def ratio(self, value: int) -> float:
        """``value`` normalised by total gets (0.0 when no gets yet)."""
        return value / self.gets if self.gets else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.ratio(self.hits)

    @property
    def conflict_ratio(self) -> float:
        return self.ratio(self.conflicting)

    @property
    def capacity_failed_ratio(self) -> float:
        return self.ratio(self.capacity + self.failing)

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class CacheStats:
    """Cumulative + interval counters for one caching layer."""

    total: Counters = field(default_factory=Counters)
    interval: Counters = field(default_factory=Counters)
    #: classification of the most recent get (handy for per-get benchmarks)
    last_access: AccessType | None = None
    #: resolved eviction/admission policy name (schema v3; set by the
    #: owning CachedWindow, None for standalone CacheStats instances)
    policy: str | None = None

    def record_access(self, access: AccessType) -> None:
        self.total.record_access(access)
        self.interval.record_access(access)
        self.last_access = access

    def record_eviction(self, visited: int, nonempty: int, *, conflict: bool) -> None:
        for c in (self.total, self.interval):
            c.evictions += 1
            if conflict:
                c.conflict_evictions += 1
            else:
                c.capacity_evictions += 1
                c.eviction_visited += visited
                c.eviction_nonempty += nonempty

    def record_invalidation(self) -> None:
        self.total.invalidations += 1
        self.interval.invalidations += 1

    def record_adjustment(self) -> None:
        self.total.adjustments += 1
        self.interval.adjustments += 1

    def record_faults(self, n: int = 1) -> None:
        self.total.faults_injected += n
        self.interval.faults_injected += n

    def record_retries(self, n: int = 1) -> None:
        self.total.retries += n
        self.interval.retries += n

    def record_storage_fault(self) -> None:
        self.total.storage_faults += 1
        self.interval.storage_faults += 1

    def record_degraded_get(self) -> None:
        self.total.degraded_gets += 1
        self.interval.degraded_gets += 1

    def record_quarantine(self) -> None:
        self.total.quarantines += 1
        self.interval.quarantines += 1

    def record_admission_reject(self) -> None:
        self.total.admission_rejects += 1
        self.interval.admission_rejects += 1

    def record_rank_failure(self, pinned: int = 0, dropped: int = 0) -> None:
        """One crashed target observed, with the entry disposition counts."""
        for c in (self.total, self.interval):
            c.rank_failures += 1
            c.recovery_pinned += pinned
            c.recovery_dropped += dropped

    def record_failed_target_get(self) -> None:
        self.total.failed_target_gets += 1
        self.interval.failed_target_gets += 1

    def record_recovered_get(self) -> None:
        self.total.recovered_gets += 1
        self.interval.recovered_gets += 1

    def record_cache_bytes(self, nbytes: int) -> None:
        self.total.bytes_from_cache += nbytes
        self.interval.bytes_from_cache += nbytes

    def record_network_bytes(self, nbytes: int) -> None:
        self.total.bytes_from_network += nbytes
        self.interval.bytes_from_network += nbytes

    def reset_interval(self) -> None:
        self.interval.reset()

    def snapshot(self) -> dict[str, int | str]:
        """Cumulative counters as a plain dict (cheap to gather/compare).

        The dict carries a ``schema_version`` key (see
        :data:`SCHEMA_VERSION`) alongside the raw counters; the counter
        names are stable across releases within one schema version.
        Since v3 it also carries ``policy`` — the resolved
        eviction/admission policy name ("" when unattached).
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "policy": self.policy or "",
            **self.total.as_dict(),
        }

    def conservation_violations(self) -> list[str]:
        """Broken counter identities of the cumulative view (empty = OK).

        Convenience wrapper over :func:`conservation_violations` for an
        attached stats object — the transparency fuzzer's oracle calls
        this after every run.
        """
        return conservation_violations(self.snapshot())

    def breakdown(self) -> dict[str, float]:
        """Fig. 13/16/18-style normalised access breakdown.

        Keys are exactly the :class:`AccessType` values (a test pins this),
        each mapped to its count divided by the total number of gets.
        """
        t = self.total
        return {a.value: t.ratio(getattr(t, a.value)) for a in AccessType}


# ---------------------------------------------------------------------------
# conservation identities (the transparency fuzzer's stats oracle)
# ---------------------------------------------------------------------------
def conservation_violations(snapshot: "dict[str, int | str]") -> list[str]:
    """Counter identities every schema-v4 snapshot must satisfy.

    Returns one human-readable string per broken identity (empty list =
    conserved).  The identities are schema facts, not heuristics:

    * every classified get is exactly one of the seven access classes:
      ``gets == hit_full + hit_partial + hit_pending + direct +
      conflicting + capacity + failing`` (bypass gets are never counted);
    * every eviction has exactly one trigger:
      ``evictions == capacity_evictions + conflict_evictions``;
    * degraded, admission-rejected and failed-target gets are all
      recorded as FAILING accesses, so their sum can never exceed
      ``failing``;
    * recovered gets are served as full hits: ``recovered_gets <=
      hit_full``;
    * no counter is ever negative.
    """
    out: list[str] = []

    def n(key: str) -> int:
        v = snapshot.get(key, 0)
        return int(v) if not isinstance(v, str) else 0

    for key, value in snapshot.items():
        if key in ("schema_version", "policy"):
            continue
        if isinstance(value, (int, float)) and value < 0:
            out.append(f"negative counter: {key} = {value}")

    access_sum = sum(
        n(k)
        for k in (
            "hit_full",
            "hit_partial",
            "hit_pending",
            "direct",
            "conflicting",
            "capacity",
            "failing",
        )
    )
    if n("gets") != access_sum:
        out.append(
            f"gets ({n('gets')}) != sum of access classes ({access_sum})"
        )
    ev_sum = n("capacity_evictions") + n("conflict_evictions")
    if n("evictions") != ev_sum:
        out.append(
            f"evictions ({n('evictions')}) != capacity+conflict ({ev_sum})"
        )
    failing_floor = (
        n("degraded_gets") + n("admission_rejects") + n("failed_target_gets")
    )
    if failing_floor > n("failing"):
        out.append(
            "degraded_gets + admission_rejects + failed_target_gets "
            f"({failing_floor}) > failing ({n('failing')})"
        )
    if n("recovered_gets") > n("hit_full"):
        out.append(
            f"recovered_gets ({n('recovered_gets')}) > hit_full ({n('hit_full')})"
        )
    return out
