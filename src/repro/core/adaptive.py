"""Adaptive parameter selection (paper Sec. III-E1).

Every ``check_interval`` gets the controller inspects the interval counters
and may resize the structures; any resize invalidates the cache:

* ``conflicting / total_gets > conflict_threshold`` → grow ``|I_w|`` by
  ``index_increase_factor`` (the index is too small for the working set);
* eviction sparsity ``q = nonempty_visited / visited < sparsity_threshold``
  → shrink ``|I_w|`` by ``index_decrease_factor`` (a sparse index degrades
  victim-selection quality);
* ``(capacity + failed) / total_gets > capacity_threshold`` → grow
  ``|S_w|`` by ``memory_increase_factor``;
* working set stable (``hits / total_gets > stable_threshold``) *and* free
  space above ``free_space_threshold`` → shrink ``|S_w|`` by
  ``memory_decrease_factor``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AdaptiveParams
from repro.core.stats import CacheStats


@dataclass(frozen=True)
class Adjustment:
    """A decided resize; ``reason`` is a short diagnostic tag."""

    index_entries: int
    storage_bytes: int
    reason: str


class AdaptiveController:
    """Decides |I_w| / |S_w| resizes from interval statistics."""

    def __init__(self, params: AdaptiveParams):
        self.params = params

    def evaluate(
        self,
        stats: CacheStats,
        index_entries: int,
        storage_bytes: int,
        free_bytes: int,
    ) -> Adjustment | None:
        """Return an :class:`Adjustment` or None; caller resets the interval.

        Must only be called once ``stats.interval.gets >= check_interval``.
        """
        p = self.params
        itv = stats.interval
        reasons: list[str] = []
        new_index = index_entries
        new_storage = storage_bytes

        # -- index ------------------------------------------------------
        if itv.conflict_ratio > p.conflict_threshold:
            new_index = min(
                p.max_index_entries, int(index_entries * p.index_increase_factor)
            )
            if new_index != index_entries:
                reasons.append(f"conflicts {itv.conflict_ratio:.2f} -> grow index")
        elif itv.eviction_visited > 0:
            q = itv.eviction_nonempty / itv.eviction_visited
            if q < p.sparsity_threshold:
                new_index = max(
                    p.min_index_entries, int(index_entries / p.index_decrease_factor)
                )
                if new_index != index_entries:
                    reasons.append(f"sparsity q={q:.2f} -> shrink index")

        # -- storage ----------------------------------------------------
        if itv.capacity_failed_ratio > p.capacity_threshold:
            new_storage = min(
                p.max_storage_bytes, int(storage_bytes * p.memory_increase_factor)
            )
            if new_storage != storage_bytes:
                reasons.append(
                    f"capacity/failed {itv.capacity_failed_ratio:.2f} -> grow storage"
                )
        elif (
            itv.hit_ratio > p.stable_threshold
            and storage_bytes > 0
            and free_bytes / storage_bytes > p.free_space_threshold
        ):
            new_storage = max(
                p.min_storage_bytes, int(storage_bytes / p.memory_decrease_factor)
            )
            if new_storage != storage_bytes:
                reasons.append(
                    f"stable hits {itv.hit_ratio:.2f}, free "
                    f"{free_bytes / storage_bytes:.2f} -> shrink storage"
                )

        if new_index == index_entries and new_storage == storage_bytes:
            return None
        return Adjustment(new_index, new_storage, "; ".join(reasons))
