"""Caching-enabled windows: the CLaMPI get_c processing engine (Sec. III).

A :class:`CachedWindow` wraps a :class:`repro.mpi.Window` and intercepts
``get``:

1. the index ``I_w`` is queried (constant-time cuckoo lookup);
2. a CACHED/PENDING entry that *covers* the request is a **full hit**
   (CACHED → copy from ``S_w``; PENDING → the data was already requested in
   this epoch, the destination is served and the copy charged at epoch
   close);
3. a covering entry that is too small is a **partial hit**: the remote get
   is issued for the whole request and the entry is extended only if
   ``S_w`` has space;
4. otherwise the access is a miss: the remote get is issued (overlapping
   the management work), the entry is inserted into ``I_w`` (a cuckoo
   insertion failure triggers a **conflicting** eviction on the insertion
   path) and storage is allocated (allocation failure triggers at most a
   constant number of **capacity** evictions — weak caching); if space still
   cannot be found the access is **failing** and simply behaves like an
   uncached get.

PENDING entries materialise into ``S_w`` when the epoch closes (flush,
unlock, fence — Sec. II): the payload is copied out of the fetching get's
origin buffer, which MPI guarantees untouched until completion.

Operational modes (Sec. III-A): TRANSPARENT invalidates at every epoch
closure (only intra-epoch reuse); ALWAYS_CACHE never invalidates;
USER_DEFINED is ALWAYS_CACHE plus the explicit :meth:`invalidate`
(CLAMPI_Invalidate).

The get_c flow is orchestrated by the staged pipeline of
:mod:`repro.rma.cache` (Accounting → Degradation → Consult → Miss →
Adapt): each concern — sequence accounting, quarantine, the cost-charged
index consult, miss insertion/eviction, adaptation — lives in exactly one
stage; this class keeps the structural machinery (index, storage,
evictor) the stages drive.  :meth:`CachedWindow.get_batch` serves N
requests through the same stages with one accounting event and one
batched event for the miss traffic.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Mapping

import numpy as np

from repro.core.adaptive import AdaptiveController, Adjustment
from repro.core.config import (
    INFO_MODE_KEY,
    INFO_POLICY_KEY,
    INFO_RECOVERY_KEY,
    Config,
    Mode,
)
from repro.core.costmodel import CostModel
from repro.core.cuckoo import CuckooIndex, InsertResult
from repro.core.entry import CacheEntry
from repro.core.eviction import EvictionEngine
from repro.core.policy import canonical_policy_name, make_policy
from repro.core.states import EntryState
from repro.core.stats import AccessType, CacheStats
from repro.core.storage import Storage
from repro.mpi.comm import Communicator
from repro.mpi.datatypes import Datatype
from repro.mpi.errors import StorageFault, TargetFailedError
from repro.mpi.window import Window
from repro.obs import (
    CACHE_ACCESS,
    CACHE_ADAPT,
    CACHE_ADMIT,
    CACHE_DEGRADED,
    CACHE_EPOCH,
    CACHE_EVICT,
    CACHE_INVALIDATE,
    CACHE_RECOVERED,
    CallbackSink,
    Event,
    EventBus,
    get_bus,
)
from repro.rma.cache import (
    CacheGetRequest,
    build_cache_pipeline,
    describe_cached_get,
    emit_cache_batch,
    serve_write,
)
from repro.rma.descriptor import describe_get
from repro.rma.interceptors import emit_get_batch


class CachedWindow:
    """A caching layer ``C_w = (I_w, S_w)`` wrapped around an MPI window."""

    def __init__(self, window: Window, config: Config | None = None):
        self._win = window
        cfg = config or Config()
        info_mode = window.info.get(INFO_MODE_KEY)
        if info_mode is not None:
            cfg = _replace_mode(cfg, Mode(info_mode))
        info_policy = window.info.get(INFO_POLICY_KEY)
        if info_policy is not None:
            cfg = _replace_policy(cfg, info_policy)
        info_recovery = window.info.get(INFO_RECOVERY_KEY)
        if info_recovery is not None:
            cfg = _replace_recovery(cfg, info_recovery)
        self.config = cfg
        self.mode = cfg.mode
        #: crash-recovery mode ("invalidate" | "serve-stale")
        self.recovery_mode = cfg.recovery
        #: crashed target ranks whose entries were already dispositioned
        self._observed_failures: set[int] = set()
        #: resolved registry name of the eviction/admission policy
        self.policy_name = canonical_policy_name(cfg.policy)
        self.stats = CacheStats(policy=self.policy_name)
        self.cost = CostModel(
            memory=window.comm.perf.memory, sink=window.comm.proc.advance
        )
        self.index_entries = cfg.index_entries  #: current |I_w|
        self.storage_bytes = cfg.storage_bytes  #: current |S_w|
        self._build_structures()
        self._seq = 0        #: i — position in the get sequence C_w.G
        self._size_sum = 0   #: running sum of get sizes (for ags)
        self._pending: list[CacheEntry] = []
        self._orphan_waiter_bytes: list[int] = []
        self._controller = (
            AdaptiveController(cfg.adaptive_params) if cfg.adaptive else None
        )
        self._cooldown = 0  #: intervals left before the controller may act
        # -- graceful degradation (docs/resilience.md) -------------------
        #: consecutive storage faults since the last successful allocation
        self._fault_streak = 0
        self._quarantined = False
        self._probe_countdown = 0
        #: last observed (faults_injected, retries) of the wrapped window,
        #: folded into the stats snapshot incrementally
        self._win_fault_base = [0, 0]
        #: per-window telemetry bus; forwards to the process-global bus so a
        #: single capture sees every layer (repro.obs design)
        self.obs = EventBus(parent=get_bus())
        #: optional (eph, gets, hits) samples appended at every epoch close.
        #: Fed by the ``cache.epoch`` events of this window's bus — the one
        #: measurement pipeline — via a private CallbackSink.
        self.timeline: list[tuple[int, int, int]] | None = None
        if cfg.record_timeline:
            self.timeline = []
            self.obs.attach(
                CallbackSink(self._timeline_sample, kinds=(CACHE_EPOCH,))
            )
        #: the staged get_c pipeline (repro.rma.cache) every cached get
        #: flows through; stages drive the structures kept on this class
        self._get_pipe = build_cache_pipeline()
        window.add_epoch_close_hook(self._on_epoch_close)

    def _timeline_sample(self, event: Event) -> None:
        assert self.timeline is not None
        self.timeline.append(
            (event.attrs["eph"], event.attrs["gets"], event.attrs["hits"])
        )

    def _emit(self, kind: str, duration: float = 0.0, **attrs: Any) -> None:
        """Publish one telemetry event stamped (rank, virtual time, epoch)."""
        comm = self._win.comm
        self.obs.emit(
            Event(
                kind,
                comm.rank,
                comm.proc.clock,
                self._win.eph,
                self._win.win_id,
                duration=duration,
                attrs=attrs,
            )
        )

    # ------------------------------------------------------------------
    # plumbing / introspection
    # ------------------------------------------------------------------
    @property
    def raw(self) -> Window:
        """The underlying (uncached) MPI window."""
        return self._win

    @property
    def comm(self) -> Communicator:
        return self._win.comm

    @property
    def eph(self) -> int:
        return self._win.eph

    @property
    def info(self) -> Mapping[str, Any]:
        return self._win.info

    @property
    def local_buffer(self) -> np.ndarray:
        return self._win.local_buffer

    def local_view(self, dtype: np.dtype | type) -> np.ndarray:
        return self._win.local_view(dtype)

    @property
    def index(self) -> CuckooIndex:
        return self._index

    @property
    def storage(self) -> Storage:
        return self._storage

    @property
    def avg_get_size(self) -> float:
        """``C_w.ags(i)`` — average size of the gets processed so far."""
        return self._size_sum / self._seq if self._seq else 0.0

    @property
    def seq_index(self) -> int:
        """Number of gets processed (the current index ``i`` in ``C_w.G``)."""
        return self._seq

    def _build_structures(self) -> None:
        cfg = self.config
        self._index = CuckooIndex(
            self.index_entries,
            num_hashes=cfg.num_hashes,
            max_iterations=cfg.max_insert_iterations,
            seed=cfg.seed,
        )
        injector = getattr(self._win.comm, "faults", None)
        self._storage = Storage(
            self.storage_bytes,
            fit=cfg.allocator_fit,
            fault_hook=injector.storage_hook if injector is not None else None,
        )
        perf = self._win.comm.perf
        rank = self._win.comm.rank
        self._evictor = EvictionEngine(
            self._index,
            self._storage,
            make_policy(self.policy_name, seed=cfg.seed + 1),
            cfg.sample_size,
            seed=cfg.seed + 1,
            # cost-aware policies weigh victims by the virtual-time miss
            # penalty of refetching them from their home rank
            miss_cost=lambda e: perf.get_time(rank, e.trg, e.size),
        )

    # ------------------------------------------------------------------
    # epoch management (proxied to the underlying window)
    # ------------------------------------------------------------------
    def lock(self, rank: int, lock_type: str = "shared") -> None:
        self._win.lock(rank, lock_type)

    def lock_all(self) -> None:
        self._win.lock_all()

    def unlock(self, rank: int) -> None:
        self._win.unlock(rank)

    def unlock_all(self) -> None:
        self._win.unlock_all()

    def flush(self, rank: int) -> None:
        self._win.flush(rank)

    def flush_all(self) -> None:
        self._win.flush_all()

    def fence(self) -> None:
        self._win.fence()

    @contextmanager
    def lock_epoch(
        self, rank: int, lock_type: str = "shared"
    ) -> Iterator["CachedWindow"]:
        """Scoped passive-target epoch towards ``rank`` (see Window.lock_epoch)."""
        with self._win.lock_epoch(rank, lock_type):
            yield self

    @contextmanager
    def lock_all_epoch(self) -> Iterator["CachedWindow"]:
        """Scoped passive-target epoch towards every rank."""
        with self._win.lock_all_epoch():
            yield self

    @contextmanager
    def fence_epoch(self) -> Iterator["CachedWindow"]:
        """Scoped active-target epoch: fence on entry and exit."""
        with self._win.fence_epoch():
            yield self

    def free(self) -> None:
        self._win.free()

    def put(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """Puts are never cached (Sec. II); pass straight through.

        As a defensive consistency guard (beyond the paper, which relies on
        the MPI epoch rules alone), any cached entries overlapping the
        written target range are dropped so a later epoch cannot serve
        stale bytes.
        """
        return serve_write(
            self, "put", origin, target_rank, target_disp, count, datatype
        )

    def accumulate(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        op: str = "sum",
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """Accumulates are writes: pass through and drop overlapping entries."""
        return serve_write(
            self,
            "accumulate",
            origin,
            target_rank,
            target_disp,
            count,
            datatype,
            acc_op=op,
        )

    def _invalidate_overlapping(self, trg: int, lo: int, hi: int) -> None:
        """Drop cached/pending entries of ``trg`` overlapping [lo, hi)."""
        du = self._win._group.disp_units[trg]
        victims = [
            e
            for e in list(self._index.entries())
            if isinstance(e, CacheEntry)
            and e.trg == trg
            and e.dsp * du < hi
            and e.dsp * du + e.dtype.extent * e.count > lo
        ]
        victims.extend(
            e
            for e in list(self._pending)
            if e.slot < 0
            and e.trg == trg
            and e.dsp * du < hi
            and e.dsp * du + e.dtype.extent * e.count > lo
        )
        for e in victims:
            self._drop_entry(e)
        if victims:
            self.cost.descriptor_updates(len(victims))

    # ------------------------------------------------------------------
    # the cached get (get_c)
    # ------------------------------------------------------------------
    def get(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
        bypass_cache: bool = False,
    ) -> int:
        """Cached one-sided get; returns payload bytes.

        Semantically identical to :meth:`repro.mpi.Window.get` — including
        the epoch rules, which are enforced by the wrapped window — but
        served from ``S_w`` whenever possible.

        ``bypass_cache=True`` is the per-operation escape hatch the paper
        floats as a possible MPI-standard extension (Sec. III-A): the get
        goes straight to the network, is never looked up, never inserted,
        and never counted in the cache statistics.
        """
        if bypass_cache:
            return self._win.get(origin, target_rank, target_disp, count, datatype)
        req = describe_cached_get(
            self, origin, target_rank, target_disp, count, datatype
        )
        return self._get_pipe.serve(self, req)

    def get_batch(self, requests) -> list[int]:
        """Serve a batch of cached gets with one accounting pass.

        ``requests`` holds ``(origin, target_rank, target_disp[, count
        [, datatype]])`` tuples.  Every element flows through the same
        staged pipeline as a scalar :meth:`get` — classification, cost
        charges, quarantine probes and adaptation checks are per-element,
        so virtual time is bit-identical to N scalar gets — but telemetry
        is batched: misses (and degraded/partial-hit refetches) issue
        through the wrapped window's quiet descriptor path and surface as
        one ``rma.get_batch`` event, and the per-get ``cache.access``
        events collapse into one ``cache.access_batch`` event.
        """
        access_sink: list[dict] = []
        net_sink: list = []
        results = [
            self._get_pipe.serve(
                self,
                describe_cached_get(
                    self,
                    req[0],
                    req[1],
                    req[2],
                    req[3] if len(req) > 3 else None,
                    req[4] if len(req) > 4 else None,
                    quiet=True,
                    access_sink=access_sink,
                    net_sink=net_sink,
                ),
            )
            for req in requests
        ]
        emit_get_batch(self._win, net_sink)
        emit_cache_batch(self, access_sink)
        return results

    def _consult(self, req: CacheGetRequest) -> int | None:
        """Cost-charged index consult (the Consult stage's ``before``)."""
        self.cost.lookup()
        entry, _probes = self._index.lookup((req.target, req.disp))
        if entry is None or not isinstance(entry, CacheEntry):
            return None
        if entry.state is not EntryState.CACHED and entry.state is not EntryState.PENDING:
            return None
        if entry.covers(req.dtype, req.count):
            return self._serve_full_hit(entry, req.origin, req.size)
        return self._serve_partial_hit(entry, req)

    def _raw_get(self, req: CacheGetRequest) -> int:
        """Issue ``req``'s bytes on the wrapped (uncached) window.

        Scalar requests use the plain op method; batch elements issue a
        quiet descriptor through the window's pipeline and record it for
        the batch-level ``rma.get_batch`` event.
        """
        if req.net_sink is None:
            return self._win.get(
                req.origin, req.target, req.disp, req.count, req.dtype
            )
        desc = describe_get(
            self._win, req.origin, req.target, req.disp, req.count, req.dtype,
            quiet=True,
        )
        self._win.issue(desc)
        req.net_sink.append(desc)
        return desc.result

    def _emit_access(self, target_rank: int, target_disp: int, size: int) -> None:
        """One ``cache.access`` event per classified get_c."""
        if not self.obs.wants(CACHE_ACCESS):
            return
        assert self.stats.last_access is not None
        self._emit(
            CACHE_ACCESS,
            access=self.stats.last_access.value,
            target=target_rank,
            disp=target_disp,
            nbytes=size,
            base=target_disp * self._win._group.disp_units[target_rank],
        )

    def get_blocking(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        n = self.get(origin, target_rank, target_disp, count, datatype)
        self.flush(target_rank)
        return n

    # ------------------------------------------------------------------
    def _serve_full_hit(
        self, entry: CacheEntry, origin: np.ndarray, size: int
    ) -> int:
        entry.last = self._seq
        self._evictor.notify_hit(entry, self._seq, self.avg_get_size)
        obuf = Window._origin_bytes(origin)
        if entry.state is EntryState.CACHED:
            obuf[:size] = self._storage.read(entry.desc, size)
            self.cost.copy(size)
            self.stats.record_access(AccessType.HIT_FULL)
        else:  # PENDING: same data already in flight from an earlier get
            assert entry.pending_source is not None
            obuf[:size] = entry.pending_source[:size]
            entry.pending_waiter_bytes.append(size)
            self.stats.record_access(AccessType.HIT_PENDING)
        self.stats.record_cache_bytes(size)
        return size

    def _serve_partial_hit(self, entry: CacheEntry, req: CacheGetRequest) -> int:
        """Partial hit: refetch everything; extend the entry if space allows."""
        origin, dtype, count, size = req.origin, req.dtype, req.count, req.size
        entry.last = self._seq
        self._evictor.notify_hit(entry, self._seq, self.avg_get_size)
        self.stats.record_access(AccessType.HIT_PARTIAL)
        nbytes = self._raw_get(req)
        self.stats.record_network_bytes(nbytes)
        # Extension: allocate the larger region *first* so a failure leaves
        # the existing (smaller but valid) entry untouched.
        new_desc = self._allocate_tracked(size)
        if new_desc is None:
            return nbytes
        was_pending = entry.state is EntryState.PENDING
        if entry.desc is not None:
            self._release_tracked(entry)
        entry.desc = new_desc
        new_desc.entry = entry
        entry.relayout(dtype, count)
        entry.pending_source = Window._origin_bytes(origin)[:size]
        if not was_pending:
            entry.transition(EntryState.PENDING)
            self._pending.append(entry)
        self.cost.descriptor_updates(2)
        return nbytes

    def _serve_miss(self, req: CacheGetRequest) -> int:
        origin, dtype, count, size = req.origin, req.dtype, req.count, req.size
        # Issue the remote get immediately: its flight time overlaps all the
        # cache-management work below (Sec. III-B2).
        nbytes = self._raw_get(req)
        self.stats.record_network_bytes(nbytes)

        entry = CacheEntry(req.target, req.disp, dtype, count)
        entry.last = self._seq
        self._evictor.notify_miss(entry.key, size, self._seq, self.avg_get_size)

        # Oversized requests can never be stored: fail fast, no eviction
        # storm for a sporadically accessed big segment (Sec. III-D2).
        if size > self._storage.capacity:
            self.stats.record_access(AccessType.FAILING)
            return nbytes

        # Admission gate: a policy may refuse to cache this miss before
        # any index/storage work is spent on it (e.g. TinyLFU rejecting
        # one-hit wonders).  A rejected miss behaves like a failing
        # access: the data was already fetched, nothing is cached.
        if not self._evictor.admit(entry, self._seq, self.avg_get_size):
            self.stats.record_access(AccessType.FAILING)
            self.stats.record_admission_reject()
            if self.obs.wants(CACHE_ADMIT):
                self._emit(
                    CACHE_ADMIT,
                    admitted=False,
                    policy=self.policy_name,
                    target=req.target,
                    disp=req.disp,
                    nbytes=size,
                )
            return nbytes

        res = self._index.insert(entry)
        self.cost.probes(res.probes)
        conflicted = not res.success
        if conflicted and not self._resolve_conflict(res, entry):
            self.stats.record_access(AccessType.FAILING)
            return nbytes

        desc, evicted = self._allocate_with_eviction(size)
        if desc is None:
            self._index.remove(entry)
            self.stats.record_access(AccessType.FAILING)
            return nbytes

        entry.desc = desc
        desc.entry = entry
        entry.transition(EntryState.PENDING)
        entry.pending_source = Window._origin_bytes(origin)[:size]
        self._pending.append(entry)
        self.cost.descriptor_updates(1)
        self._evictor.notify_insert(entry, self._seq, self.avg_get_size)

        if conflicted:
            self.stats.record_access(AccessType.CONFLICTING)
        elif evicted:
            self.stats.record_access(AccessType.CAPACITY)
        else:
            self.stats.record_access(AccessType.DIRECT)
        return nbytes

    # ------------------------------------------------------------------
    # eviction machinery
    # ------------------------------------------------------------------
    def _allocate_tracked(self, size: int):
        s0 = self._storage.steps
        try:
            desc = self._storage.allocate(size)
        except StorageFault:
            # Injected memory pressure: behaves like a failed allocation,
            # but a streak of them quarantines the cache (see get()).
            self.cost.avl_steps(self._storage.steps - s0)
            self._note_storage_fault()
            return None
        self.cost.avl_steps(self._storage.steps - s0)
        if desc is not None:
            self._fault_streak = 0
        return desc

    def _release_tracked(self, entry: CacheEntry) -> None:
        assert entry.desc is not None
        s0 = self._storage.steps
        self._storage.release(entry.desc)
        self.cost.avl_steps(self._storage.steps - s0)
        self.cost.descriptor_updates(1)
        entry.desc = None

    def _allocate_with_eviction(self, size: int):
        """Best-fit allocate; on failure run the bounded capacity eviction."""
        desc = self._allocate_tracked(size)
        if desc is not None:
            return desc, False
        evicted_any = False
        for _ in range(self.config.max_capacity_evictions):
            sample = self._evictor.sample_capacity_victim(
                self._seq, self.avg_get_size
            )
            self.cost.eviction_visits(sample.visited)
            if sample.victim is None:
                break
            self.stats.record_eviction(
                sample.visited, sample.nonempty, conflict=False
            )
            if self.obs.wants(CACHE_EVICT):
                self._emit(
                    CACHE_EVICT,
                    reason="capacity",
                    visited=sample.visited,
                    policy=self.policy_name,
                    score=sample.score,
                )
            self._evict(sample.victim)
            evicted_any = True
            desc = self._allocate_tracked(size)
            if desc is not None:
                return desc, True
        return None, evicted_any

    def _evict(self, entry: CacheEntry) -> None:
        """Evict a CACHED entry that is stored in the index."""
        assert entry.state is EntryState.CACHED
        self._index.remove(entry)
        self._release_tracked(entry)
        entry.transition(EntryState.MISSING)
        self._evictor.notify_free(entry, "evicted")

    def _drop_entry(self, entry: CacheEntry) -> None:
        """Remove an entry wherever it is (index, storage, pending list)."""
        self._evictor.notify_free(entry, "dropped")
        if entry.slot >= 0:
            self._index.remove(entry)
        if entry.state is EntryState.PENDING:
            self._orphan_waiter_bytes.extend(entry.pending_waiter_bytes)
            entry.pending_waiter_bytes = []
            entry.pending_source = None
            if entry in self._pending:
                self._pending.remove(entry)
        if entry.desc is not None:
            self._release_tracked(entry)
        if entry.state is not EntryState.MISSING:
            entry.transition(EntryState.MISSING)

    def _resolve_conflict(self, res: InsertResult, entry: CacheEntry) -> bool:
        """Handle a cuckoo insertion failure (conflicting access).

        Evicts the lowest-score CACHED entry on the insertion path and
        re-inserts the homeless tail, retrying a bounded number of times.
        Returns True when ``entry`` ends up stored in the index.
        """
        for _ in range(4):
            homeless = res.homeless
            assert isinstance(homeless, CacheEntry)
            victim = self._evictor.select_conflict_victim(
                [e for e in res.path if isinstance(e, CacheEntry)],
                self._seq,
                self.avg_get_size,
                exclude=entry,
            )
            if victim is None:
                # Nothing evictable on the path: drop the homeless tail.
                self._drop_entry(homeless)
                return homeless is not entry
            self.stats.record_eviction(0, 0, conflict=True)
            if self.obs.wants(CACHE_EVICT):
                self._emit(
                    CACHE_EVICT,
                    reason="conflict",
                    visited=0,
                    policy=self.policy_name,
                    score=self._evictor.score(
                        victim, self._seq, self.avg_get_size
                    ),
                )
            if victim is homeless:
                # Already out of the table; just release its resources.
                self._drop_entry(victim)
                return True
            self._evict(victim)
            res2 = self._index.insert(homeless)
            self.cost.probes(res2.probes)
            if res2.success:
                return True
            res = res2
        self._drop_entry(res.homeless)  # give up on the last homeless tail
        return res.homeless is not entry

    # ------------------------------------------------------------------
    # graceful degradation (fault quarantine)
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while the cache is quarantined and serving gets direct."""
        return self._quarantined

    def _note_storage_fault(self) -> None:
        self._fault_streak += 1
        self.stats.record_storage_fault()

    def _enter_quarantine(self) -> None:
        """Self-disable: drop all content, serve direct until the probe."""
        live = self._invalidate_entries(None)
        for n in self._orphan_waiter_bytes:
            self.cost.copy(n)
        self._orphan_waiter_bytes = []
        self.cost.invalidate(live)
        self._quarantined = True
        self._fault_streak = 0
        self._probe_countdown = self.config.quarantine_probe_interval
        self.stats.record_quarantine()
        if self.obs.wants(CACHE_DEGRADED):
            self._emit(
                CACHE_DEGRADED,
                state="quarantined",
                dropped=live,
                probe_in=self._probe_countdown,
            )

    def _leave_quarantine(self) -> None:
        """Probe: re-enable caching; a new fault streak re-quarantines."""
        self._quarantined = False
        self._fault_streak = 0
        self._probe_countdown = 0
        if self.obs.wants(CACHE_DEGRADED):
            self._emit(CACHE_DEGRADED, state="re-enabled")

    def _serve_degraded(self, req: CacheGetRequest) -> int:
        """Quarantined get: straight to the network, classified FAILING.

        Accounting emission and the probe countdown run in the Accounting
        and Degradation stages' ``after`` passes, in that (telemetry
        contract) order.
        """
        nbytes = self._raw_get(req)
        self.stats.record_access(AccessType.FAILING)
        self.stats.record_degraded_get()
        self.stats.record_network_bytes(nbytes)
        return nbytes

    def _sync_fault_counters(self) -> None:
        """Fold the wrapped window's fault/retry counters into the stats.

        The resilience layer lives in :class:`repro.mpi.Window`; the stats
        snapshot is the cache's.  Diffing (rather than copying) keeps the
        counters correct across adaptive rebuilds and invalidations.
        """
        fi = getattr(self._win, "faults_injected", 0)
        rt = getattr(self._win, "retries", 0)
        base = self._win_fault_base
        if fi > base[0]:
            self.stats.record_faults(fi - base[0])
            base[0] = fi
        if rt > base[1]:
            self.stats.record_retries(rt - base[1])
            base[1] = rt

    # ------------------------------------------------------------------
    # crash recovery (docs/resilience.md)
    # ------------------------------------------------------------------
    def _observe_failures(self) -> None:
        """Disposition the entries of any newly crashed target ranks.

        ``serve-stale`` pins a dead rank's indexed entries read-only (they
        are epoch-consistent: RMA writes from other ranks would have been
        fenced by the same epochs that admitted the entries) and keeps
        serving exact-match reads from them; ``invalidate`` drops them so
        every later get towards the rank fails fast.  Orphan PENDING
        entries (mid-conflict, out of the index) are unreachable for
        serving and are dropped in both modes.
        """
        proc = self._win._comm.proc
        new = proc.failed_ranks - self._observed_failures
        if not new:
            return
        for rank in sorted(new):
            self._observed_failures.add(rank)
            pinned = dropped = 0
            indexed = [
                e
                for e in list(self._index.entries())
                if isinstance(e, CacheEntry) and e.trg == rank
            ]
            orphans = [
                e for e in list(self._pending) if e.slot < 0 and e.trg == rank
            ]
            if self.recovery_mode == "serve-stale":
                for e in indexed:
                    e.pinned = True
                    pinned += 1
            else:
                for e in indexed:
                    self._drop_entry(e)
                    dropped += 1
            for e in orphans:
                self._drop_entry(e)
                dropped += 1
            self.stats.record_rank_failure(pinned=pinned, dropped=dropped)
            if self.obs.wants(CACHE_RECOVERED):
                self._emit(
                    CACHE_RECOVERED,
                    rank=rank,
                    mode=self.recovery_mode,
                    pinned=pinned,
                    dropped=dropped,
                )

    def _serve_failed_target(self, req: CacheGetRequest) -> int:
        """A get towards a crashed rank (the CacheRecovery stage's serve).

        ``serve-stale`` serves exact full hits from the rank's pinned
        entries; anything else — and every get in ``invalidate`` mode —
        is classified FAILING and fails with a deferred
        :class:`TargetFailedError` (raised after the accounting passes).
        """
        if self.recovery_mode == "serve-stale":
            self.cost.lookup()
            entry, _probes = self._index.lookup((req.target, req.disp))
            if (
                isinstance(entry, CacheEntry)
                and entry.state in (EntryState.CACHED, EntryState.PENDING)
                and entry.covers(req.dtype, req.count)
            ):
                nbytes = self._serve_full_hit(entry, req.origin, req.size)
                self.stats.record_recovered_get()
                return nbytes
        self.stats.record_access(AccessType.FAILING)
        self.stats.record_failed_target_get()
        req.failure = TargetFailedError(req.target, "get")
        return 0

    # ------------------------------------------------------------------
    # epoch closure, invalidation, adaptation
    # ------------------------------------------------------------------
    def _on_epoch_close(self, _win: Window, targets: set[int] | None) -> None:
        # Observe any crash that happened inside the closing epoch first,
        # so serve-stale pins land before TRANSPARENT-mode invalidation.
        if self._win._comm.proc.can_fail:
            self._observe_failures()

        def closes(e: CacheEntry) -> bool:
            return targets is None or e.trg in targets

        still_pending: list[CacheEntry] = []
        for e in self._pending:
            if not closes(e):
                still_pending.append(e)
                continue
            for n in e.pending_waiter_bytes:
                self.cost.copy(n)
            e.pending_waiter_bytes = []
            if self.mode is Mode.TRANSPARENT and not e.pinned:
                # The entry dies at closure anyway: skip the materialisation
                # copy, release its resources.
                e.pending_source = None
                if e.slot >= 0:
                    self._index.remove(e)
                if e.desc is not None:
                    self._release_tracked(e)
                e.transition(EntryState.MISSING)
                self._evictor.notify_free(e, "dropped")
            else:
                assert e.pending_source is not None and e.desc is not None
                self._storage.write(e.desc, e.pending_source[: e.size])
                self.cost.copy(e.size)
                e.pending_source = None
                e.transition(EntryState.CACHED)
        self._pending = still_pending

        for n in self._orphan_waiter_bytes:
            self.cost.copy(n)
        self._orphan_waiter_bytes = []

        if self.mode is Mode.TRANSPARENT:
            # Pinned entries (serve-stale crash survivors) outlive epoch
            # closure: they are the only remaining copy of the dead
            # rank's data and can never be refreshed or go stale.
            self._invalidate_entries(targets, include_pinned=False)

        self._sync_fault_counters()
        if self.obs.wants(CACHE_EPOCH):
            # The hook runs before ``eph`` is bumped: the stamp names the
            # epoch being closed, matching the historical timeline samples.
            t = self.stats.total
            self._emit(
                CACHE_EPOCH, eph=self._win.eph, gets=t.gets, hits=t.hits
            )

    def _invalidate_entries(
        self, targets: set[int] | None, *, include_pinned: bool = True
    ) -> int:
        """Drop all (or per-target) entries; returns how many were live.

        ``include_pinned=False`` (epoch closure) spares the serve-stale
        crash survivors; explicit invalidation, quarantine and adaptive
        rebuilds drop them too.
        """
        victims = [
            e
            for e in list(self._index.entries())
            if isinstance(e, CacheEntry)
            and (targets is None or e.trg in targets)
            and (include_pinned or not e.pinned)
        ]
        for e in victims:
            self._drop_entry(e)
        if targets is None:
            # Pending entries outside the index (mid-conflict orphans) die too.
            for e in list(self._pending):
                if include_pinned or not e.pinned:
                    self._drop_entry(e)
        return len(victims)

    def invalidate(self) -> None:
        """CLAMPI_Invalidate: explicitly drop the whole cache content.

        This is the USER_DEFINED-mode call from the paper's Listing 1; any
        same-epoch pending waiters are charged immediately.
        """
        live = self._invalidate_entries(None)
        for n in self._orphan_waiter_bytes:
            self.cost.copy(n)
        self._orphan_waiter_bytes = []
        self.cost.invalidate(live)
        self.stats.record_invalidation()
        self._sync_fault_counters()
        if self.obs.wants(CACHE_INVALIDATE):
            self._emit(CACHE_INVALIDATE, live=live)

    def check_invariants(self) -> None:
        """Structural audit of the whole caching layer (used by tests).

        Verifies the cross-structure invariants that the get_c engine must
        maintain at every quiescent point:

        * every indexed entry is CACHED or PENDING, knows its slot, and its
          key matches its (trg, dsp);
        * every CACHED entry owns a live storage descriptor large enough
          for its payload and back-referencing it;
        * the pending list is exactly the set of PENDING entries, each with
          a materialisation source;
        * storage bookkeeping (descriptor list, free tree, used bytes) is
          internally consistent.
        """
        indexed = [e for e in self._index.entries() if isinstance(e, CacheEntry)]
        for e in indexed:
            assert e.state in (EntryState.CACHED, EntryState.PENDING), e
            assert e.slot >= 0, e
            assert self._index.entry_at(e.slot) is e, e
            assert e.key == (e.trg, e.dsp), e
            assert e.desc is not None and not e.desc.free, e
            assert e.desc.size >= e.size, e
            assert e.desc.entry is e, e
        pending_in_index = {id(e) for e in indexed if e.state is EntryState.PENDING}
        pending_list = {id(e) for e in self._pending}
        assert pending_in_index <= pending_list, "indexed PENDING not tracked"
        for e in self._pending:
            assert e.state is EntryState.PENDING, e
            assert e.pending_source is not None, e
        used = sum(e.desc.size for e in indexed)
        orphan_pending = [e for e in self._pending if e.slot < 0 and e.desc]
        used += sum(e.desc.size for e in orphan_pending)
        assert used == self._storage.used_bytes, (
            f"storage accounting: entries hold {used}, "
            f"storage says {self._storage.used_bytes}"
        )
        self._storage.check_invariants()

    def _maybe_adapt(self) -> None:
        if self._controller is None:
            return
        if self.stats.interval.gets < self.config.adaptive_params.check_interval:
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            self.stats.reset_interval()
            return
        adj = self._controller.evaluate(
            self.stats,
            self.index_entries,
            self.storage_bytes,
            self._storage.free_bytes,
        )
        self.stats.reset_interval()
        if adj is None:
            return
        self._cooldown = self.config.adaptive_params.cooldown_intervals
        self._apply_adjustment(adj)

    def _apply_adjustment(self, adj: Adjustment) -> None:
        """Resize |I_w|/|S_w|: invalidate, rebuild, charge the rebuild."""
        live = self._invalidate_entries(None)
        for n in self._orphan_waiter_bytes:
            self.cost.copy(n)
        self._orphan_waiter_bytes = []
        self.cost.invalidate(live)
        self.stats.record_invalidation()
        self.index_entries = adj.index_entries
        self.storage_bytes = adj.storage_bytes
        self._pending = []
        self._build_structures()
        self.cost.adjust(adj.index_entries, adj.storage_bytes)
        self.stats.record_adjustment()
        if self.obs.wants(CACHE_ADAPT):
            self._emit(
                CACHE_ADAPT,
                index_entries=adj.index_entries,
                storage_bytes=adj.storage_bytes,
            )


def _replace_mode(cfg: Config, mode: Mode) -> Config:
    from dataclasses import replace

    return replace(cfg, mode=mode)


def _replace_policy(cfg: Config, policy: str) -> Config:
    from dataclasses import replace

    return replace(cfg, policy=policy)


def _replace_recovery(cfg: Config, recovery: str) -> Config:
    from dataclasses import replace

    return replace(cfg, recovery=recovery)
