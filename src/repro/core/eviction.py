"""Victim selection and eviction (paper Sec. III-D).

Two eviction triggers exist:

* **conflicting** — a cuckoo insertion walk cycled; the victim is chosen
  among the entries on the *insertion path* (plus the homeless tail), by
  lowest score;
* **capacity** — the storage allocator found no fitting hole; the victim is
  sampled from a circular window of ``M`` index slots starting at a random
  position ("if the sample is empty, the procedure keeps scanning until at
  least one non-empty entry is found"), again by lowest score.

Only CACHED entries are evictable: a PENDING entry's payload is not in
``S_w`` yet and its destination buffers are still owed data at epoch close.
Entries pinned by crash recovery (``recovery="serve-stale"``) are likewise
never victims — they are the only remaining source of a dead rank's data.

The eviction engine reports how many slots it visited and how many of them
were non-empty — the sparsity signal ``q`` consumed by the adaptive
controller (Sec. III-E1) and plotted in Fig. 11.

Since the policy redesign the engine is pure *mechanism*: sampling walks,
insertion-path scans and the RNG stream live here, while scoring and
admission decisions are delegated to a pluggable
:class:`repro.core.policy.CachePolicy`.  The victim sample's randomness
comes from a **per-engine seeded stream** (``Random(seed)``, one instance
per window/engine, never the module-level RNG), so two caching-enabled
windows in one run can never perturb each other's eviction choices and a
given seed always replays the same eviction trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.config import EvictionPolicy
from repro.core.cuckoo import CuckooIndex
from repro.core.entry import CacheEntry
from repro.core.policy import CachePolicy, PolicyContext, make_policy
from repro.core.states import EntryState
from repro.core.storage import Storage


@dataclass
class SampleResult:
    """Outcome of a capacity-victim sampling walk."""

    victim: CacheEntry | None
    visited: int      #: total slots visited (v_i = max(M, k_i) in the paper)
    nonempty: int     #: slots holding any entry
    score: float = float("inf")  #: the victim's score under the policy


class EvictionEngine:
    """Samples candidates and applies one policy's scores/decisions.

    ``policy`` may be a :class:`~repro.core.policy.CachePolicy` instance,
    a registry name, or (deprecated) an :class:`EvictionPolicy` enum
    value.  ``miss_cost`` — when the engine serves a window — estimates
    the virtual-time refetch penalty of an entry for cost-aware policies.
    """

    def __init__(
        self,
        index: CuckooIndex,
        storage: Storage,
        policy: CachePolicy | str | EvictionPolicy,
        sample_size: int,
        seed: int = 0,
        miss_cost: Callable[[CacheEntry], float] | None = None,
    ):
        self.index = index
        self.storage = storage
        if not isinstance(policy, CachePolicy):
            policy = make_policy(policy, seed=seed)
        self.policy = policy
        policy.bind(index.capacity, seed)
        self.sample_size = sample_size
        self.miss_cost = miss_cost
        #: per-engine seeded stream — one independent RNG per window
        self._rng = random.Random(seed)
        # One reusable context per engine: policy hooks fire once or more
        # per get, so a fresh PolicyContext per decision costs millions of
        # throwaway allocations per run.  Hooks treat the context as
        # ephemeral (see PolicyContext docstring), so in-place field
        # updates are observationally identical.
        self._pooled_ctx = PolicyContext(
            seq_index=0, avg_get_size=0.0, miss_cost=miss_cost
        )

    # ------------------------------------------------------------------
    def _ctx(
        self, seq_index: int, avg_get_size: float, entry: CacheEntry | None = None
    ) -> PolicyContext:
        ctx = self._pooled_ctx
        ctx.seq_index = seq_index
        ctx.avg_get_size = avg_get_size
        ctx.adjacent_free = (
            self.storage.adjacent_free(entry.desc)
            if entry is not None and entry.desc
            else 0
        )
        return ctx

    def score(self, entry: CacheEntry, seq_index: int, avg_get_size: float) -> float:
        """Entry score under the configured policy (lower = better victim)."""
        return self.policy.victim_score(
            entry, self._ctx(seq_index, avg_get_size, entry)
        )

    # -- policy observation forwarding ---------------------------------
    def notify_hit(
        self, entry: CacheEntry, seq_index: int, avg_get_size: float
    ) -> None:
        self.policy.on_hit(entry, self._ctx(seq_index, avg_get_size, entry))

    def notify_miss(
        self,
        key: tuple[int, int],
        nbytes: int,
        seq_index: int,
        avg_get_size: float,
    ) -> None:
        self.policy.on_miss(key, nbytes, self._ctx(seq_index, avg_get_size))

    def notify_insert(
        self, entry: CacheEntry, seq_index: int, avg_get_size: float
    ) -> None:
        self.policy.on_insert(entry, self._ctx(seq_index, avg_get_size, entry))

    def notify_free(self, entry: CacheEntry, reason: str) -> None:
        self.policy.on_free(entry, reason)

    def admit(
        self, entry: CacheEntry, seq_index: int, avg_get_size: float
    ) -> bool:
        """Admission decision for a miss (before any index/storage work)."""
        return self.policy.admit(entry, self._ctx(seq_index, avg_get_size))

    # ------------------------------------------------------------------
    def sample_capacity_victim(
        self, seq_index: int, avg_get_size: float
    ) -> SampleResult:
        """Pick the lowest-score CACHED entry in a random circular sample.

        Visits ``M`` consecutive slots of ``I_w`` (modelled as a circular
        array) starting at a random position; if none of them holds an
        evictable entry it keeps scanning until one is found or the whole
        table has been visited.
        """
        cap = self.index.capacity
        start = self._rng.randrange(cap)
        visited = 0
        nonempty = 0
        best: CacheEntry | None = None
        best_score = float("inf")
        i = start
        while visited < cap:
            entry = self.index.entry_at(i)
            visited += 1
            if entry is not None:
                nonempty += 1
                assert isinstance(entry, CacheEntry)
                if entry.state is EntryState.CACHED and not entry.pinned:
                    s = self.score(entry, seq_index, avg_get_size)
                    if s < best_score:
                        best_score = s
                        best = entry
            i = (i + 1) % cap
            # Paper stopping rule: v_i = max(M, k_i) — visit M entries, and
            # keep scanning only while the sample is still empty.  A sample
            # containing only PENDING (non-evictable) entries yields no
            # victim; the access then fails (weak caching).
            if visited >= self.sample_size and nonempty > 0:
                break
        return SampleResult(best, visited, nonempty, best_score)

    def select_conflict_victim(
        self,
        path: list[CacheEntry],
        seq_index: int,
        avg_get_size: float,
        exclude: CacheEntry | None = None,
    ) -> CacheEntry | None:
        """Lowest-score evictable entry on a cuckoo insertion path."""
        best: CacheEntry | None = None
        best_score = float("inf")
        for e in path:
            if e is exclude:
                continue
            if e.state is not EntryState.CACHED or e.pinned:
                continue
            s = self.score(e, seq_index, avg_get_size)
            if s < best_score:
                best_score = s
                best = e
        return best
