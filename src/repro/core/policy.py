"""Pluggable eviction/admission policies for the caching layer.

The paper evaluates a single score-driven eviction scheme (Sec. III-D1:
full/positional/temporal scores).  This module generalises it into a
first-class policy subsystem: a :class:`CachePolicy` observes the cache's
lifecycle (hits, misses, inserts, frees), scores eviction candidates and
may veto admissions, while the *mechanism* — sampling, cuckoo-path victim
selection, storage bookkeeping — stays in
:class:`repro.core.eviction.EvictionEngine`.

Protocol
--------
A policy sees four observation hooks and two decision points:

=================  =======================================================
``on_hit``         a get matched a CACHED/PENDING entry (full or partial)
``on_miss``        a get missed; called for *every* miss, even ones the
                   policy later rejects (frequency sketches need this)
``on_insert``      an entry was inserted and holds storage (now PENDING)
``on_free``        an entry left the cache (evicted / invalidated / dropped)
``victim_score``   score an eviction candidate; **lower = better victim**
``admit``          accept/reject a miss before any index/storage work
=================  =======================================================

Decisions receive a :class:`PolicyContext` carrying the get-sequence
position, the running average get size, the candidate's adjacent free
space ``d_c`` and (when the engine is attached to a window) a
``miss_cost`` estimator of the virtual time a refetch of an entry would
take.

Registry
--------
Policies are selected **by name** through a process-global registry::

    from repro.core import policy
    policy.register("my-policy", MyPolicy)
    cfg = clampi.configure(policy="my-policy")

Built-in names: ``clampi-full`` (paper default, bit-identical to the
historical score engine), ``clampi-temporal``, ``clampi-positional``,
``lru``, ``slru``, ``gdsf`` and ``tinylfu``.  The legacy
:class:`~repro.core.config.EvictionPolicy` enum values remain accepted
everywhere a name is (``FULL`` → ``clampi-full`` and so on) but are
**deprecated** aliases; new code should pass registry names.

Determinism: policies must not read wall clocks or global RNG state
(lint rule ANL007) — any randomness must come from the seed handed to
:meth:`CachePolicy.bind`, so eviction traces replay bit-identically.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Type

from repro.core.config import EvictionPolicy
from repro.core.scores import full_score, positional_score, temporal_score

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.entry import CacheEntry

#: Default policy name (the paper's full-score engine).
DEFAULT_POLICY = "clampi-full"

#: Legacy EvictionPolicy enum values / bare score names -> registry names.
LEGACY_ALIASES = {
    "full": "clampi-full",
    "temporal": "clampi-temporal",
    "positional": "clampi-positional",
}


@dataclass
class PolicyContext:
    """View of the cache state at a policy decision point.

    Treat it as **read-only and ephemeral**: the eviction engine reuses a
    single mutable instance across decisions (millions per run), updating
    the fields in place before each hook call.  Policies must not mutate
    it or retain a reference past the hook's return.
    """

    seq_index: int            #: position ``i`` in the get sequence ``C_w.G``
    avg_get_size: float       #: ``C_w.ags(i)`` — running average get size
    adjacent_free: int = 0    #: ``d_c`` of the scored candidate (bytes)
    #: virtual-time estimate of refetching one entry (None when the engine
    #: runs standalone, e.g. in unit tests); cost-aware policies fall back
    #: to a size-proportional surrogate in that case
    miss_cost: Callable[["CacheEntry"], float] | None = None

    def refetch_cost(self, entry: "CacheEntry") -> float:
        """Miss penalty of losing ``entry`` (virtual seconds)."""
        if self.miss_cost is not None:
            return self.miss_cost(entry)
        # Standalone surrogate: linear in payload size (1 ns/B), so
        # cost-aware policies still order candidates sensibly in tests.
        return entry.size * 1e-9


class CachePolicy:
    """Base class / protocol for eviction + admission policies.

    Subclasses override the hooks they need; every hook has a no-op
    default so a minimal policy only implements :meth:`victim_score`.
    State must be rebuilt from scratch on :meth:`bind` — the engine
    re-binds after adaptive resizes and invalidation rebuilds.
    """

    #: registry name (set by subclasses; surfaced in stats/events)
    name = "abstract"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.capacity = 0

    def bind(self, capacity: int, seed: int) -> None:
        """Attach to an engine: learn the index capacity, reseed state."""
        self.capacity = capacity
        self.seed = seed

    # -- observation hooks ------------------------------------------------
    def on_hit(self, entry: "CacheEntry", ctx: PolicyContext) -> None:
        """A get matched ``entry`` (full, partial or pending hit)."""

    def on_miss(self, key: tuple[int, int], nbytes: int, ctx: PolicyContext) -> None:
        """A get missed on ``key``; fires before the admission decision."""

    def on_insert(self, entry: "CacheEntry", ctx: PolicyContext) -> None:
        """``entry`` was admitted, indexed and holds storage."""

    def on_free(self, entry: "CacheEntry", reason: str) -> None:
        """``entry`` left the cache (``evicted``/``invalidated``/``dropped``)."""

    # -- decision points --------------------------------------------------
    def victim_score(self, entry: "CacheEntry", ctx: PolicyContext) -> float:
        """Eviction priority; the engine evicts the **lowest** score."""
        raise NotImplementedError

    def admit(self, entry: "CacheEntry", ctx: PolicyContext) -> bool:
        """Accept ``entry`` into the cache?  Rejected misses stay uncached."""
        return True


# ---------------------------------------------------------------------------
# Built-in policies: the paper's score engine, re-expressed
# ---------------------------------------------------------------------------
class ClampiFullPolicy(CachePolicy):
    """Paper default: ``R = R_P x R_T`` (Sec. III-D1), bit-identical."""

    name = "clampi-full"

    def victim_score(self, entry: "CacheEntry", ctx: PolicyContext) -> float:
        return full_score(
            ctx.avg_get_size, ctx.adjacent_free, entry.last, ctx.seq_index
        )


class ClampiTemporalPolicy(CachePolicy):
    """Single-factor temporal score ``R_T`` (the Fig. 10/11 ablation)."""

    name = "clampi-temporal"

    def victim_score(self, entry: "CacheEntry", ctx: PolicyContext) -> float:
        return temporal_score(entry.last, ctx.seq_index)


class ClampiPositionalPolicy(CachePolicy):
    """Single-factor positional score ``R_P`` (the Fig. 10/11 ablation)."""

    name = "clampi-positional"

    def victim_score(self, entry: "CacheEntry", ctx: PolicyContext) -> float:
        return positional_score(ctx.avg_get_size, ctx.adjacent_free)


# ---------------------------------------------------------------------------
# New policies
# ---------------------------------------------------------------------------
class LRUPolicy(CachePolicy):
    """Pure least-recently-used: the raw sequence index of the last match.

    Equivalent ordering to ``clampi-temporal`` (which normalises by the
    sequence position) but with no clamping — the canonical baseline every
    cache paper compares against.
    """

    name = "lru"

    def victim_score(self, entry: "CacheEntry", ctx: PolicyContext) -> float:
        return float(entry.last)


class SegmentedLRUPolicy(CachePolicy):
    """Segmented LRU: probationary entries are evicted before protected.

    An entry enters the *probationary* segment on insert and is promoted
    to *protected* on its first subsequent hit.  Victims are drawn from
    probation first (scan-resistance: one-touch entries cannot displace
    the proven working set); within a segment the least-recently-used
    entry goes first.  Segment membership is tracked by entry identity
    and torn down in :meth:`on_free`, so re-inserted keys restart on
    probation.
    """

    name = "slru"

    #: protected entries score above every probationary entry
    _PROTECTED_OFFSET = 1 << 40

    def bind(self, capacity: int, seed: int) -> None:
        super().bind(capacity, seed)
        self._protected: set[int] = set()

    def on_hit(self, entry: "CacheEntry", ctx: PolicyContext) -> None:
        self._protected.add(id(entry))

    def on_free(self, entry: "CacheEntry", reason: str) -> None:
        self._protected.discard(id(entry))

    def victim_score(self, entry: "CacheEntry", ctx: PolicyContext) -> float:
        base = float(entry.last)
        if id(entry) in self._protected:
            return base + self._PROTECTED_OFFSET
        return base


class GDSFPolicy(CachePolicy):
    """Cost-aware Greedy-Dual-Size-Frequency.

    Classic GDSF (Cherkasova '98) adapted to RMA caching: each entry's
    priority is ``L + freq * miss_cost(entry) / size`` — the virtual-time
    refetch penalty *per byte of cache space occupied*, scaled by observed
    access frequency, plus the aging clock ``L``.  Evicting the lowest
    priority sheds the bytes that are cheapest to lose; ``L`` rises to the
    priority of each victim so long-idle entries age out even when their
    refetch cost is high.
    """

    name = "gdsf"

    def bind(self, capacity: int, seed: int) -> None:
        super().bind(capacity, seed)
        self._clock = 0.0                      #: aging clock L
        self._freq: dict[tuple[int, int], int] = {}
        self._prio: dict[int, float] = {}      #: id(entry) -> priority

    def _reprioritise(self, entry: "CacheEntry", ctx: PolicyContext) -> None:
        freq = self._freq.get(entry.key, 1)
        per_byte = ctx.refetch_cost(entry) / max(entry.size, 1)
        self._prio[id(entry)] = self._clock + freq * per_byte

    def on_hit(self, entry: "CacheEntry", ctx: PolicyContext) -> None:
        self._freq[entry.key] = self._freq.get(entry.key, 1) + 1
        self._reprioritise(entry, ctx)

    def on_miss(self, key: tuple[int, int], nbytes: int, ctx: PolicyContext) -> None:
        self._freq[key] = self._freq.get(key, 0) + 1

    def on_insert(self, entry: "CacheEntry", ctx: PolicyContext) -> None:
        self._reprioritise(entry, ctx)

    def on_free(self, entry: "CacheEntry", reason: str) -> None:
        prio = self._prio.pop(id(entry), None)
        if reason == "evicted" and prio is not None:
            self._clock = max(self._clock, prio)

    def victim_score(self, entry: "CacheEntry", ctx: PolicyContext) -> float:
        prio = self._prio.get(id(entry))
        if prio is None:  # scored before on_insert (e.g. standalone engine)
            freq = self._freq.get(entry.key, 1)
            prio = self._clock + freq * ctx.refetch_cost(entry) / max(entry.size, 1)
        return prio


class _CountMinSketch:
    """Seeded conservative count-min sketch with periodic halving.

    Hashing is plain multiplicative mixing of the integer key — no
    dependence on :func:`hash` or process state, so estimates replay
    bit-identically for a given seed.
    """

    ROWS = 4

    def __init__(self, width: int, seed: int):
        if width < 16:
            raise ValueError("sketch width must be >= 16")
        self.width = 1 << (width - 1).bit_length()  # power of two
        self._mask = self.width - 1
        # distinct odd multipliers per row, perturbed by the seed
        self._salts = [
            (0x9E3779B97F4A7C15 ^ (seed * 0xBF58476D1CE4E5B9 + r * 0x94D049BB133111EB))
            | 1
            for r in range(self.ROWS)
        ]
        self.rows = [[0] * self.width for _ in range(self.ROWS)]
        self.additions = 0
        #: halve all counters after this many additions (keeps estimates fresh)
        self.sample_period = 16 * self.width

    def _ix(self, row: int, key: int) -> int:
        x = (key * self._salts[row]) & 0xFFFFFFFFFFFFFFFF
        return (x >> 32) & self._mask

    def add(self, key: int) -> None:
        for r in range(self.ROWS):
            self.rows[r][self._ix(r, key)] += 1
        self.additions += 1
        if self.additions >= self.sample_period:
            self._age()

    def estimate(self, key: int) -> int:
        return min(self.rows[r][self._ix(r, key)] for r in range(self.ROWS))

    def _age(self) -> None:
        for row in self.rows:
            for i, v in enumerate(row):
                row[i] = v >> 1
        self.additions = 0


class TinyLFUPolicy(CachePolicy):
    """Frequency-sketch admission filter (TinyLFU-style), seeded.

    A count-min sketch estimates each key's access frequency over a
    sliding sample (periodic counter halving).  Admission rejects
    first-touch keys: a miss is only cached once the sketch has seen the
    key before, so one-hit wonders never displace proven entries — the
    dominant win on heavily skewed reuse.  Eviction is frequency-first
    with an LRU tie-break.
    """

    name = "tinylfu"

    def __init__(self, seed: int = 0, width: int = 1024):
        super().__init__(seed)
        self._width = width
        self._sketch = _CountMinSketch(width, seed)

    def bind(self, capacity: int, seed: int) -> None:
        super().bind(capacity, seed)
        # size the sketch to the index so estimates track the working set
        self._sketch = _CountMinSketch(max(self._width, capacity), seed)

    @staticmethod
    def _mix(key: tuple[int, int]) -> int:
        trg, dsp = key
        return (trg * 0x85EBCA6B + dsp * 0xC2B2AE35 + 0x27D4EB2F) & 0xFFFFFFFFFFFFFFFF

    def on_hit(self, entry: "CacheEntry", ctx: PolicyContext) -> None:
        self._sketch.add(self._mix(entry.key))

    def on_miss(self, key: tuple[int, int], nbytes: int, ctx: PolicyContext) -> None:
        self._sketch.add(self._mix(key))

    def admit(self, entry: "CacheEntry", ctx: PolicyContext) -> bool:
        # on_miss already counted this access: estimate 1 == first touch.
        return self._sketch.estimate(self._mix(entry.key)) >= 2

    def victim_score(self, entry: "CacheEntry", ctx: PolicyContext) -> float:
        freq = self._sketch.estimate(self._mix(entry.key))
        return freq + temporal_score(entry.last, max(ctx.seq_index, 1))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, Callable[..., CachePolicy]] = {}


def register(
    name: str,
    factory: Type[CachePolicy] | Callable[..., CachePolicy],
    *,
    replace: bool = False,
) -> None:
    """Register a policy factory under ``name``.

    ``factory`` is called as ``factory(seed=<int>)`` and must return a
    :class:`CachePolicy`.  Names are case-sensitive, lower-case by
    convention; re-registration requires ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"policy name must be a non-empty string, got {name!r}")
    if name in LEGACY_ALIASES:
        raise ValueError(
            f"{name!r} is a reserved legacy alias for {LEGACY_ALIASES[name]!r}"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"policy {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = factory


def available_policies() -> list[str]:
    """Registered policy names, sorted (the bench matrix iterates this)."""
    return sorted(_REGISTRY)


def canonical_policy_name(spec: "str | EvictionPolicy") -> str:
    """Resolve any accepted policy spelling to its registry name.

    Accepts registry names verbatim, the legacy bare score names
    (``"full"``/``"temporal"``/``"positional"``) and the deprecated
    :class:`EvictionPolicy` enum values.  Unknown names raise
    ``ValueError`` listing what is registered.
    """
    if isinstance(spec, EvictionPolicy):
        warnings.warn(
            f"EvictionPolicy.{spec.name} is deprecated; pass the registry "
            f"name {LEGACY_ALIASES[spec.value]!r} instead "
            "(see docs/api.md, policy registry)",
            DeprecationWarning,
            stacklevel=3,
        )
        spec = spec.value
    if not isinstance(spec, str):
        raise TypeError(f"policy must be a str or EvictionPolicy, got {spec!r}")
    name = LEGACY_ALIASES.get(spec, spec)
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown policy {spec!r}; registered: {available_policies()}"
        )
    return name


def make_policy(spec: "str | EvictionPolicy", seed: int = 0) -> CachePolicy:
    """Instantiate the policy named by ``spec`` (name, alias or enum)."""
    name = canonical_policy_name(spec)
    pol = _REGISTRY[name](seed=seed)
    if pol.name != name:
        # factories may be lambdas over a configurable class: stamp the
        # registered name so stats/events report what was selected
        pol.name = name
    return pol


for _cls in (
    ClampiFullPolicy,
    ClampiTemporalPolicy,
    ClampiPositionalPolicy,
    LRUPolicy,
    SegmentedLRUPolicy,
    GDSFPolicy,
    TinyLFUPolicy,
):
    register(_cls.name, _cls)
