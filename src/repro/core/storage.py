"""The storage ``S_w``: contiguous cache memory with best-fit allocation.

Implements paper Sec. III-C2/3 and Fig. 6:

* cache entries are stored **contiguously** in one memory buffer (hardware
  prefetching helps the hit-path copy);
* allocation granularity is the CPU cache-line size;
* free regions are indexed by an AVL tree keyed on size → **best-fit**
  allocations in O(log N);
* cache-entry and free-region descriptors form a doubly linked list sorted
  by offset, which makes insertion/removal O(1) and gives O(1) access to
  ``d_c`` — the total free memory adjacent to an entry — needed by the
  positional score;
* freeing coalesces with free neighbours, enlarging the adjacent region
  ("if c is adjacent to a free region f, then f is enlarged").

The allocator returns ``None`` when nothing fits: deciding to evict is the
cache's job, not the allocator's (weak caching, Sec. III-D2).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from repro.core.avl import AVLTree
from repro.util import CACHE_LINE, align_up


class Descriptor:
    """One region of ``S_w``: either a cache entry's bytes or a free hole."""

    __slots__ = ("offset", "size", "free", "prev", "next", "entry")

    def __init__(self, offset: int, size: int, free: bool):
        self.offset = offset
        self.size = size
        self.free = free
        self.prev: Descriptor | None = None
        self.next: Descriptor | None = None
        self.entry: Any = None  # back-reference to the owning cache entry

    @property
    def end(self) -> int:
        return self.offset + self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "free" if self.free else "used"
        return f"Desc({kind} [{self.offset}, {self.end}))"


class Storage:
    """Contiguous, cache-line-aligned storage buffer.

    ``fit`` selects the allocation policy: ``"best"`` (the paper's choice —
    AVL-indexed best fit, O(log N)) or ``"first"`` (first fit by walking the
    descriptor list, O(N) — kept as an ablation of the design decision).

    ``fault_hook``, when given, is consulted with the (aligned) request
    size before every allocation and may raise
    :class:`~repro.mpi.errors.StorageFault` to simulate memory pressure —
    the integration point of the :mod:`repro.faults` chaos machinery.  The
    storage itself stays policy-free: deciding how to *react* to the fault
    (degrade, quarantine) is the caching engine's job, mirroring how the
    ``None`` return leaves eviction decisions to the cache.
    """

    def __init__(
        self,
        capacity: int,
        alignment: int = CACHE_LINE,
        fit: str = "best",
        fault_hook: Callable[[int], None] | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if alignment < 1:
            raise ValueError("alignment must be >= 1")
        if fit not in ("best", "first"):
            raise ValueError(f"unknown fit policy: {fit}")
        self.fit = fit
        self.capacity = capacity
        self.alignment = alignment
        self._fault_hook = fault_hook
        self.data = np.zeros(capacity, dtype=np.uint8)
        self._free_tree = AVLTree()
        head = Descriptor(0, capacity, free=True)
        self._head: Descriptor = head
        self._free_tree.insert((head.size, head.offset), head)
        self.used_bytes = 0
        self.steps = 0  #: cumulative AVL steps (consumed by the cost model)

    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def num_free_regions(self) -> int:
        return len(self._free_tree)

    def largest_free(self) -> int:
        """Size of the largest free region (0 when storage is full)."""
        best = 0
        for (size, _off), _d in self._free_tree.items():
            best = max(best, size)
        return best

    # ------------------------------------------------------------------
    def allocate(self, nbytes: int) -> Descriptor | None:
        """Best-fit allocate ``nbytes`` (rounded up to the alignment).

        Returns the used descriptor, or ``None`` if no free region is large
        enough (external fragmentation or genuine lack of space).
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        want = align_up(max(nbytes, 1), self.alignment)
        if self._fault_hook is not None:
            self._fault_hook(want)  # may raise StorageFault (injected pressure)
        if self.fit == "best":
            key, region, steps = self._free_tree.ceiling(want)
            self.steps += steps
            if key is None:
                return None
        else:  # first fit: offset-order walk of the descriptor list
            region = None
            for d in self.descriptors():
                self.steps += 1
                if d.free and d.size >= want:
                    region = d
                    break
            if region is None:
                return None
            key = (region.size, region.offset)
        assert isinstance(region, Descriptor) and region.free
        self.steps += self._free_tree.remove(key)
        if region.size == want:
            region.free = False
            self.used_bytes += want
            return region
        # Split: the used part sits at the start; the remainder stays free
        # and keeps ``region``'s descriptor (so its list links survive).
        used = Descriptor(region.offset, want, free=False)
        region.offset += want
        region.size -= want
        self._link_before(used, region)
        self.steps += self._free_tree.insert((region.size, region.offset), region)
        self.used_bytes += want
        return used

    def release(self, desc: Descriptor) -> None:
        """Free a used descriptor, coalescing with free neighbours."""
        if desc.free:
            raise ValueError(f"double free of {desc!r}")
        self.used_bytes -= desc.size
        desc.free = True
        desc.entry = None
        merged = desc
        prev = merged.prev
        if prev is not None and prev.free:
            self.steps += self._free_tree.remove((prev.size, prev.offset))
            prev.size += merged.size
            self._unlink(merged)
            merged = prev
        nxt = merged.next
        if nxt is not None and nxt.free:
            self.steps += self._free_tree.remove((nxt.size, nxt.offset))
            merged.size += nxt.size
            self._unlink(nxt)
        self.steps += self._free_tree.insert((merged.size, merged.offset), merged)

    # ------------------------------------------------------------------
    def adjacent_free(self, desc: Descriptor) -> int:
        """``d_c``: total free memory adjacent to an entry's region (O(1))."""
        total = 0
        if desc.prev is not None and desc.prev.free:
            total += desc.prev.size
        if desc.next is not None and desc.next.free:
            total += desc.next.size
        return total

    # ------------------------------------------------------------------
    def write(self, desc: Descriptor, payload: np.ndarray) -> None:
        """Copy payload bytes into the descriptor's region."""
        if desc.free:
            raise ValueError("write into a free region")
        n = payload.nbytes
        if n > desc.size:
            raise ValueError(f"payload {n} B exceeds region {desc.size} B")
        self.data[desc.offset : desc.offset + n] = payload.view(np.uint8).reshape(-1)

    def read(self, desc: Descriptor, nbytes: int) -> np.ndarray:
        """View of the first ``nbytes`` cached bytes of the region."""
        if desc.free:
            raise ValueError("read from a free region")
        if nbytes > desc.size:
            raise ValueError(f"read {nbytes} B exceeds region {desc.size} B")
        return self.data[desc.offset : desc.offset + nbytes]

    # ------------------------------------------------------------------
    def descriptors(self) -> Iterator[Descriptor]:
        """Walk the descriptor list in offset order."""
        d: Descriptor | None = self._head
        while d is not None:
            yield d
            d = d.next

    def _link_before(self, new: Descriptor, anchor: Descriptor) -> None:
        new.prev = anchor.prev
        new.next = anchor
        if anchor.prev is not None:
            anchor.prev.next = new
        else:
            self._head = new
        anchor.prev = new

    def _unlink(self, desc: Descriptor) -> None:
        if desc.prev is not None:
            desc.prev.next = desc.next
        else:
            assert self._head is desc
            self._head = desc.next if desc.next is not None else desc
        if desc.next is not None:
            desc.next.prev = desc.prev
        desc.prev = desc.next = None

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Structural audit used by unit/property tests."""
        descs = list(self.descriptors())
        assert descs[0].offset == 0, "list must start at offset 0"
        total = 0
        used = 0
        prev: Descriptor | None = None
        free_keys = set()
        for d in descs:
            assert d.size > 0, f"empty descriptor {d!r}"
            if prev is not None:
                assert prev.end == d.offset, f"gap/overlap at {d!r}"
                assert d.prev is prev and prev.next is d, "broken links"
                assert not (prev.free and d.free), "uncoalesced free regions"
            total += d.size
            if d.free:
                free_keys.add((d.size, d.offset))
            else:
                used += d.size
            prev = d
        assert total == self.capacity, f"covered {total} != {self.capacity}"
        assert used == self.used_bytes, "used_bytes out of sync"
        tree_keys = {k for k, _v in self._free_tree.items()}
        assert tree_keys == free_keys, "AVL tree out of sync with list"
        self._free_tree.check_invariants()
