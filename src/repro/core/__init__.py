"""CLaMPI — the paper's contribution: a caching layer for RMA gets.

Subpackage map (paper section in brackets):

* :mod:`repro.core.states` — cache-entry state machine (Fig. 5).
* :mod:`repro.core.cuckoo` — the index ``I_w``: cuckoo hash table with p=4
  universal hash functions and insertion-path tracking (Sec. III-C1).
* :mod:`repro.core.avl` — size-keyed AVL tree over free regions (Sec. III-C2).
* :mod:`repro.core.storage` — the storage ``S_w``: contiguous buffer,
  cache-line-aligned best-fit allocation, descriptor list, ``d_c``
  bookkeeping (Sec. III-C2/3, Fig. 6).
* :mod:`repro.core.scores` — positional/temporal/full entry scores
  (Sec. III-C2, III-D1).
* :mod:`repro.core.policy` — pluggable eviction/admission policies and
  the name registry (the paper's score engine is the default policy).
* :mod:`repro.core.eviction` — victim selection mechanism (Sec. III-D).
* :mod:`repro.core.adaptive` — runtime parameter tuning (Sec. III-E).
* :mod:`repro.core.stats` — access-type accounting (Figs. 13/16/18).
* :mod:`repro.core.costmodel` — virtual-time charges for cache management.
* :mod:`repro.core.window` — :class:`CachedWindow`, the get_c processing
  engine and the operational modes (Sec. III-A/B).

The user-facing facade lives in :mod:`repro.clampi`.
"""

from repro.core.config import Config, EvictionPolicy, Mode
from repro.core.policy import CachePolicy, PolicyContext
from repro.core.stats import AccessType, CacheStats
from repro.core.states import EntryState
from repro.core.window import CachedWindow

__all__ = [
    "AccessType",
    "CachePolicy",
    "CacheStats",
    "CachedWindow",
    "Config",
    "EntryState",
    "EvictionPolicy",
    "Mode",
    "PolicyContext",
]
