"""Cache entries: the values stored in ``I_w`` pointing into ``S_w``.

Paper Sec. II-A: an index entry is ``i = (trg, dsp, dtype, count, ptr)``;
``ptr`` is our storage :class:`~repro.core.storage.Descriptor`.  We add the
bookkeeping the algorithms need: the Fig. 5 state, ``last`` (index of the
last matching get in ``C_w.G``, for the temporal score) and, while PENDING,
a view of the source buffer the payload will be materialised from at epoch
closure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.states import EntryState, check_transition
from repro.mpi.datatypes import Block, Datatype

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.storage import Descriptor


def payload_prefix_blocks(blocks: list[Block], nbytes: int) -> list[Block]:
    """Clip a flattened block list to its first ``nbytes`` payload bytes.

    Used to decide whether a smaller get is layout-compatible with a cached
    entry: the get is a *full hit* iff its own flattened blocks equal the
    prefix of the entry's blocks covering the same payload size.
    """
    if nbytes < 0:
        raise ValueError(f"negative prefix size: {nbytes}")
    out: list[Block] = []
    remaining = nbytes
    for off, size in blocks:
        if remaining == 0:
            break
        take = min(size, remaining)
        out.append((off, take))
        remaining -= take
    if remaining:
        raise ValueError(f"prefix {nbytes} exceeds payload {nbytes - remaining}")
    return out


class CacheEntry:
    """One cached get: identity, layout, storage pointer and metadata."""

    __slots__ = (
        "trg",
        "dsp",
        "dtype",
        "count",
        "size",
        "state",
        "desc",
        "last",
        "slot",
        "pending_source",
        "pending_waiter_bytes",
        "pinned",
    )

    def __init__(self, trg: int, dsp: int, dtype: Datatype, count: int):
        self.trg = trg
        self.dsp = dsp
        self.dtype = dtype
        self.count = count
        self.size = dtype.transfer_size(count)  #: payload bytes (size(x))
        self.state = EntryState.MISSING
        self.desc: Descriptor | None = None
        self.last = 0
        self.slot = -1  #: cuckoo slot (managed by the index)
        #: while PENDING: view of the origin buffer of the fetching get;
        #: MPI forbids touching it before the epoch closes, so it is a
        #: valid materialisation source at closure time.
        self.pending_source: np.ndarray | None = None
        #: payload bytes promised to same-epoch PENDING hits (charged at close)
        self.pending_waiter_bytes: list[int] = []
        #: read-only survivor of a crashed target (recovery="serve-stale");
        #: pinned entries are never eviction victims and outlive epoch-close
        #: invalidation, but explicit invalidate() still drops them.
        self.pinned = False

    # ------------------------------------------------------------------
    @property
    def key(self) -> tuple[int, int]:
        """Index key: the paper's hit rule is (trg, dsp) equality."""
        return (self.trg, self.dsp)

    def transition(self, new_state: EntryState) -> None:
        check_transition(self.state, new_state)
        self.state = new_state

    def blocks(self) -> list[Block]:
        """Flattened target-side layout of this entry."""
        return self.dtype.flatten(self.count)

    def covers(self, dtype: Datatype, count: int) -> bool:
        """Full-hit test: is a get of (dtype, count) served by this entry?

        Same datatype: a prefix in element count suffices (payload flattening
        is element-major, so fewer elements are always a payload prefix).
        Different datatype: fall back to comparing flattened blocks against
        the matching payload prefix of this entry.
        """
        want = dtype.transfer_size(count)
        if want > self.size:
            return False
        if dtype == self.dtype:
            return count <= self.count
        try:
            return dtype.flatten(count) == payload_prefix_blocks(self.blocks(), want)
        except ValueError:
            return False

    def relayout(self, dtype: Datatype, count: int) -> None:
        """Adopt a new layout (partial-hit extension, Sec. III-B1)."""
        self.dtype = dtype
        self.count = count
        self.size = dtype.transfer_size(count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheEntry(trg={self.trg}, dsp={self.dsp}, size={self.size}, "
            f"state={self.state.value}, last={self.last})"
        )
