"""Entry scoring (paper Sec. III-C2 and III-D1).

* **Positional score** ``R_P^i(c) = min(|ags(i) - d_c| / ags(i), 1)`` —
  how badly the free space adjacent to ``c`` matches the average get size:
  the *lower* the score, the more likely evicting ``c`` frees a usable hole.
* **Temporal score** ``R_T^i(x) = x.last / i`` — recency on the get
  sequence ``C_w.G`` (LRU-like: recently matched entries score high).
* **Full score** ``R = R_P x R_T`` — the paper's default, estimating both
  fragmentation contribution and reuse probability.

The eviction procedure always evicts the entry with the **lowest** score
among the candidates.
"""

from __future__ import annotations


def positional_score(avg_get_size: float, adjacent_free: int) -> float:
    """``min(|ags - d_c| / ags, 1)``; low = evicting frees a right-sized hole.

    With no observed gets yet (``ags == 0``) every entry is equally
    (un)attractive positionally, so we return the neutral maximum 1.0.
    """
    if avg_get_size < 0 or adjacent_free < 0:
        raise ValueError("negative inputs to positional score")
    if avg_get_size == 0:
        return 1.0
    return min(abs(avg_get_size - adjacent_free) / avg_get_size, 1.0)


def temporal_score(last_matched: int, current_index: int) -> float:
    """``x.last / i`` on the get sequence (clamped into [0, 1])."""
    if current_index <= 0:
        raise ValueError("current_index must be >= 1")
    if last_matched < 0:
        raise ValueError("last_matched must be >= 0")
    return min(last_matched / current_index, 1.0)


def full_score(
    avg_get_size: float, adjacent_free: int, last_matched: int, current_index: int
) -> float:
    """``R = R_P x R_T`` in [0, 1]."""
    return positional_score(avg_get_size, adjacent_free) * temporal_score(
        last_matched, current_index
    )
