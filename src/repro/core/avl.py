"""Size-keyed AVL tree over free storage regions (paper Sec. III-C2).

"Free memory regions are indexed with an AVL tree, using their sizes as
indexes: the search of a free region requires O(log N) time ... new
allocations are served with a best-fit policy."

Keys are ``(size, offset)`` pairs — the offset disambiguates equal sizes and
makes every key unique.  The allocator's best-fit query is
:meth:`AVLTree.ceiling`: the smallest key ``>= (want, 0)``, i.e. the
*smallest sufficiently large* free region (ties broken by lowest offset).

Each mutating/searching call returns the number of nodes it visited so the
storage layer can charge ``avl_step_time`` per step to the virtual clock.
"""

from __future__ import annotations

from typing import Any, Iterator

Key = tuple[int, int]


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Key, value: Any):
        self.key = key
        self.value = value
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.height = 1


def _h(n: _Node | None) -> int:
    return n.height if n else 0


def _update(n: _Node) -> None:
    n.height = 1 + max(_h(n.left), _h(n.right))


def _balance(n: _Node) -> int:
    return _h(n.left) - _h(n.right)


def _rot_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rot_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(n: _Node) -> _Node:
    _update(n)
    bal = _balance(n)
    if bal > 1:
        assert n.left is not None
        if _balance(n.left) < 0:
            n.left = _rot_left(n.left)
        return _rot_right(n)
    if bal < -1:
        assert n.right is not None
        if _balance(n.right) > 0:
            n.right = _rot_right(n.right)
        return _rot_left(n)
    return n


class AVLTree:
    """Self-balancing BST with best-fit (ceiling) queries and step counting."""

    def __init__(self) -> None:
        self._root: _Node | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def insert(self, key: Key, value: Any) -> int:
        """Insert a unique key; returns nodes visited."""
        steps = 0

        def rec(node: _Node | None) -> _Node:
            nonlocal steps
            steps += 1
            if node is None:
                return _Node(key, value)
            if key < node.key:
                node.left = rec(node.left)
            elif key > node.key:
                node.right = rec(node.right)
            else:
                raise KeyError(f"duplicate key {key}")
            return _rebalance(node)

        self._root = rec(self._root)
        self._size += 1
        return steps

    def remove(self, key: Key) -> int:
        """Remove an existing key; returns nodes visited."""
        steps = 0

        def rec(node: _Node | None) -> _Node | None:
            nonlocal steps
            steps += 1
            if node is None:
                raise KeyError(f"key {key} not in tree")
            if key < node.key:
                node.left = rec(node.left)
            elif key > node.key:
                node.right = rec(node.right)
            else:
                if node.left is None:
                    return node.right
                if node.right is None:
                    return node.left
                # Replace with in-order successor.
                succ = node.right
                while succ.left is not None:
                    steps += 1
                    succ = succ.left
                node.key, node.value = succ.key, succ.value
                key2 = succ.key

                def rec2(n: _Node | None) -> _Node | None:
                    nonlocal steps
                    steps += 1
                    assert n is not None
                    if key2 < n.key:
                        n.left = rec2(n.left)
                    elif key2 > n.key:
                        n.right = rec2(n.right)
                    else:
                        if n.left is None:
                            return n.right
                        if n.right is None:
                            return n.left
                        raise AssertionError("successor has two children")
                    return _rebalance(n)

                node.right = rec2(node.right)
            return _rebalance(node)

        self._root = rec(self._root)
        self._size -= 1
        return steps

    def ceiling(self, min_size: int) -> tuple[Key | None, Any, int]:
        """Best fit: smallest key ``>= (min_size, 0)``.

        Returns ``(key, value, steps)``; key is None when nothing fits.
        """
        target: Key = (min_size, -1)
        best: _Node | None = None
        node = self._root
        steps = 0
        while node is not None:
            steps += 1
            if node.key > target:
                best = node
                node = node.left
            else:
                node = node.right
        if best is None:
            return None, None, steps
        return best.key, best.value, steps

    def contains(self, key: Key) -> bool:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif key > node.key:
                node = node.right
            else:
                return True
        return False

    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[Key, Any]]:
        """In-order (sorted) iteration."""

        def rec(node: _Node | None) -> Iterator[tuple[Key, Any]]:
            if node is None:
                return
            yield from rec(node.left)
            yield node.key, node.value
            yield from rec(node.right)

        yield from rec(self._root)

    def range_items(self, lo: Key, hi: Key) -> Iterator[tuple[Key, Any]]:
        """In-order iteration over keys in ``[lo, hi)``.

        Subtrees entirely outside the bound are pruned, so the scan costs
        O(log N + k) for k yielded items — what the interval-overlap
        queries of :mod:`repro.analysis` need.
        """

        def rec(node: _Node | None) -> Iterator[tuple[Key, Any]]:
            if node is None:
                return
            if node.key > lo:
                yield from rec(node.left)
            if lo <= node.key < hi:
                yield node.key, node.value
            if node.key < hi:
                yield from rec(node.right)

        yield from rec(self._root)

    # -- invariants, used by the property-based tests -------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if the tree is unbalanced or mis-ordered."""

        def rec(node: _Node | None) -> tuple[int, Key | None, Key | None]:
            if node is None:
                return 0, None, None
            lh, lmin, lmax = rec(node.left)
            rh, rmin, rmax = rec(node.right)
            assert abs(lh - rh) <= 1, f"unbalanced at {node.key}"
            assert node.height == 1 + max(lh, rh), f"bad height at {node.key}"
            if lmax is not None:
                assert lmax < node.key, f"order violation at {node.key}"
            if rmin is not None:
                assert rmin > node.key, f"order violation at {node.key}"
            lo = lmin if lmin is not None else node.key
            hi = rmax if rmax is not None else node.key
            return node.height, lo, hi

        rec(self._root)
        assert self._size == sum(1 for _ in self.items())
