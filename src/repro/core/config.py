"""CLaMPI configuration: operational modes, eviction policies, parameters.

``Mode`` mirrors the paper's three strategies (Sec. III-A):

* ``TRANSPARENT`` — every window is caching-enabled with zero code changes;
  because nothing is known about write accesses, the cache is invalidated at
  every epoch closure (only intra-epoch reuse is exploited).
* ``ALWAYS_CACHE`` — the window is read-only for its whole lifespan (e.g.
  static graphs); no automatic invalidation ever happens.
* ``USER_DEFINED`` — like ALWAYS_CACHE but the application brackets
  read-only phases and calls ``invalidate()`` (CLAMPI_Invalidate) when a
  phase ends (e.g. Barnes-Hut between force-computation steps).

``Config.policy`` names an eviction/admission policy from the
:mod:`repro.core.policy` registry (``"clampi-full"`` — the paper's
``R = R_P x R_T`` score — by default; ``"lru"``, ``"slru"``, ``"gdsf"``,
``"tinylfu"`` and any user-registered policy are selectable the same
way).  The legacy ``EvictionPolicy`` enum values are still accepted as
deprecated aliases (``FULL`` → ``"clampi-full"``, ``TEMPORAL`` →
``"clampi-temporal"``, ``POSITIONAL`` → ``"clampi-positional"`` — the
Figs. 10/11 ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.util import KiB, MiB

#: MPI_Info key used to enable caching at window creation (Sec. III-A).
INFO_MODE_KEY = "clampi_mode"

#: MPI_Info key selecting the eviction/admission policy by registry name.
INFO_POLICY_KEY = "clampi_policy"

#: Environment variable selecting the default policy (facade channel of
#: last resort; see ``clampi.resolve_config`` for the full precedence).
ENV_POLICY_VAR = "CLAMPI_POLICY"

#: MPI_Info key selecting the crash-recovery mode ("invalidate" or
#: "serve-stale"); see ``Config.recovery`` and docs/resilience.md.
INFO_RECOVERY_KEY = "clampi_recovery"

#: Valid values of ``Config.recovery``.
RECOVERY_MODES = ("invalidate", "serve-stale")


class Mode(Enum):
    TRANSPARENT = "transparent"
    ALWAYS_CACHE = "always_cache"
    USER_DEFINED = "user_defined"


class EvictionPolicy(Enum):
    """Deprecated aliases for the three paper score policies.

    Kept so existing code and the Figs. 10/11 ablations keep working;
    each value resolves to the registry policy of the same score.  New
    code should pass the registry name string instead.
    """

    FULL = "full"              #: alias of "clampi-full" (paper default)
    TEMPORAL = "temporal"      #: alias of "clampi-temporal" (LRU-like)
    POSITIONAL = "positional"  #: alias of "clampi-positional"


@dataclass(frozen=True)
class AdaptiveParams:
    """Thresholds and factors of the adaptive strategy (Sec. III-E1)."""

    check_interval: int = 512           #: gets between controller decisions
    conflict_threshold: float = 0.05    #: conflicting/total above -> grow I_w
    sparsity_threshold: float = 0.25    #: eviction non-empty ratio q below -> shrink I_w
    capacity_threshold: float = 0.10    #: (capacity+failed)/total above -> grow S_w
    stable_threshold: float = 0.60      #: hits/total above -> working set stable
    free_space_threshold: float = 0.75  #: free/|S_w| above (and stable) -> shrink S_w
    index_increase_factor: float = 2.0
    index_decrease_factor: float = 2.0
    memory_increase_factor: float = 2.0
    memory_decrease_factor: float = 2.0
    #: intervals to wait after an adjustment before deciding again
    #: (0 = the paper's behaviour; >0 damps oscillation on noisy phases)
    cooldown_intervals: int = 0
    min_index_entries: int = 64
    max_index_entries: int = 1 << 24
    min_storage_bytes: int = 64 * KiB
    max_storage_bytes: int = 4 << 30

    def __post_init__(self) -> None:
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        for name in (
            "index_increase_factor",
            "index_decrease_factor",
            "memory_increase_factor",
            "memory_decrease_factor",
        ):
            if getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be > 1")
        if self.cooldown_intervals < 0:
            raise ValueError("cooldown_intervals must be >= 0")


@dataclass(frozen=True)
class Config:
    """Static configuration of one caching-enabled window.

    ``index_entries`` is |I_w| (number of indexable entries) and
    ``storage_bytes`` is |S_w| (cache memory buffer size) — the two
    performance-critical parameters of Sec. III-E.  With ``adaptive=True``
    they are starting values that the controller adjusts at runtime.
    """

    index_entries: int = 4096
    storage_bytes: int = 4 * MiB
    mode: Mode = Mode.TRANSPARENT
    #: eviction/admission policy, by repro.core.policy registry name
    #: (EvictionPolicy enum values are accepted as deprecated aliases and
    #: normalised to their registry name here)
    policy: str | EvictionPolicy = "clampi-full"
    adaptive: bool = False
    adaptive_params: AdaptiveParams = AdaptiveParams()
    sample_size: int = 16        #: M, victim-sample size (Sec. III-D)
    num_hashes: int = 4          #: p, cuckoo hash functions (Sec. III-C1)
    max_insert_iterations: int = 32  #: cuckoo cycle-detection bound
    max_capacity_evictions: int = 1  #: constant eviction budget (Sec. III-D2)
    allocator_fit: str = "best"  #: "best" (paper) or "first" (ablation)
    record_timeline: bool = False  #: sample (eph, gets, hits) at epoch closes
    seed: int = 0xC1A09          #: deterministic hashing / sampling
    #: consecutive storage faults before the cache quarantines itself
    #: (self-disables and serves all gets direct); see docs/resilience.md
    quarantine_threshold: int = 4
    #: degraded gets to serve before probing whether the fault cleared
    quarantine_probe_interval: int = 512
    #: what happens to a dead rank's cached entries when its crash is
    #: observed: "invalidate" (drop them; further gets raise
    #: TargetFailedError) or "serve-stale" (pin epoch-consistent entries
    #: read-only and keep serving exact-match reads from them); see
    #: docs/resilience.md
    recovery: str = "invalidate"

    def __post_init__(self) -> None:
        # Normalise the policy spec (name / legacy alias / enum) to its
        # registry name so downstream consumers and snapshots see one
        # canonical spelling.  Imported lazily: repro.core.policy imports
        # this module for the EvictionPolicy aliases.
        from repro.core.policy import canonical_policy_name

        object.__setattr__(self, "policy", canonical_policy_name(self.policy))
        if self.index_entries < 1:
            raise ValueError("index_entries must be >= 1")
        if self.storage_bytes < 1:
            raise ValueError("storage_bytes must be >= 1")
        if self.sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if self.num_hashes < 2:
            raise ValueError("num_hashes must be >= 2")
        if self.max_insert_iterations < 1:
            raise ValueError("max_insert_iterations must be >= 1")
        if self.max_capacity_evictions < 0:
            raise ValueError("max_capacity_evictions must be >= 0")
        if self.allocator_fit not in ("best", "first"):
            raise ValueError(f"unknown allocator_fit: {self.allocator_fit}")
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        if self.quarantine_probe_interval < 1:
            raise ValueError("quarantine_probe_interval must be >= 1")
        if self.recovery not in RECOVERY_MODES:
            raise ValueError(
                f"unknown recovery mode {self.recovery!r}; "
                f"expected one of {RECOVERY_MODES}"
            )

    def with_sizes(self, index_entries: int, storage_bytes: int) -> "Config":
        """Copy with new |I_w| / |S_w| (used by the adaptive controller)."""
        return replace(
            self, index_entries=index_entries, storage_bytes=storage_bytes
        )
