"""Perf smoke benchmark: ``python -m repro.bench perfsmoke``.

Runs a small, representative figure subset (fig01 latency, fig03 size
distribution, fig15 LCC at reduced scale) plus a serial-vs-batched LCC
pair, and writes one JSON artifact recording wall-clock and virtual time
per entry.  The artifact seeds the repo's performance trajectory: CI runs
this against the committed baseline (``BENCH_PR9.json``) and fails when
total wall-clock regresses beyond the allowed factor **or when any
per-entry virtual time drifts at all** (see ``docs/performance.md``).

Wall time measures *host* effort (what the pipeline refactor, targeted
scheduler wakeups and batched gets optimise); virtual time measures the
simulated schedule (which the refactor must NOT change — figure claims
and goldens pin that separately).  fig15 claims are intentionally not
asserted here: at the reduced smoke scale some paper claims do not hold
(they require the default figure scale), and this harness only watches
performance.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.apps import LCCApp
from repro.apps.cachespec import CacheSpec
from repro.bench.figures import fig01_latency, fig03_sizes, fig15_lcc_params

#: Wall-clock regression factor CI tolerates over the committed baseline.
DEFAULT_MAX_REGRESSION = 2.0

#: Reduced LCC scale: keeps the smoke subset within a CI-friendly budget.
SMOKE_LCC_SCALE = 10


def _lcc_pair() -> dict[str, dict[str, float]]:
    """Serial vs batched LCC on one CLaMPI config (the batching headline)."""
    app = LCCApp(scale=9, edge_factor=8, seed=5)
    spec = CacheSpec.clampi_fixed(2 * (1 << 9), app.csr.nedges * 8)
    out: dict[str, dict[str, float]] = {}
    for label, batch in (("lcc_serial", False), ("lcc_batched", True)):
        v0 = obs.virtual_time.total
        t0 = time.perf_counter()
        app.run(8, spec, batch=batch)
        out[label] = {
            "wall_s": round(time.perf_counter() - t0, 4),
            "virtual_s": obs.virtual_time.total - v0,
        }
    return out


def run_perfsmoke() -> dict[str, Any]:
    """Run the subset; returns the artifact dict (not yet written)."""
    entries: list[tuple[str, Callable[[], Any]]] = [
        ("fig01", fig01_latency),
        ("fig03", fig03_sizes),
        ("fig15", lambda: fig15_lcc_params(scale=SMOKE_LCC_SCALE)),
    ]
    figures: dict[str, dict[str, float]] = {}
    for name, fn in entries:
        v0 = obs.virtual_time.total
        t0 = time.perf_counter()
        fn()
        figures[name] = {
            "wall_s": round(time.perf_counter() - t0, 4),
            "virtual_s": obs.virtual_time.total - v0,
        }
    figures.update(_lcc_pair())
    total = round(sum(e["wall_s"] for e in figures.values()), 4)
    return {
        "figures": figures,
        "total_wall_s": total,
        "fuzz_throughput": _fuzz_throughput(),
    }


#: verify-fuzz cases timed by the smoke run (informational, non-gating)
FUZZ_SMOKE_CASES = 3


def _fuzz_throughput() -> dict[str, float]:
    """Time a few transparency-fuzzer cases (``python -m repro.verify``).

    Informational only: the entry lives outside ``figures`` so neither
    the wall-clock total nor the virtual-time drift check gates on it —
    it just tracks how much oracle-matrix coverage a CI minute buys
    (``verify-fuzz`` budgets rely on this staying roughly stable).
    """
    from repro.verify.oracle import run_matrix
    from repro.verify.workload import generate

    cells = 0
    t0 = time.perf_counter()
    for seed in range(FUZZ_SMOKE_CASES):
        report = run_matrix(generate(seed))
        cells += report.cells_run
    wall = time.perf_counter() - t0
    return {
        "cases": FUZZ_SMOKE_CASES,
        "cells": cells,
        "wall_s": round(wall, 4),
        "cases_per_s": round(FUZZ_SMOKE_CASES / wall, 3) if wall > 0 else 0.0,
    }


def check_regression(
    result: dict[str, Any],
    baseline_path: Path,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> list[str]:
    """Compare against a committed baseline; returns failure messages."""
    baseline = json.loads(baseline_path.read_text())
    problems: list[str] = []
    base_total = baseline.get("total_wall_s")
    if base_total and result["total_wall_s"] > max_regression * base_total:
        problems.append(
            f"total wall-clock {result['total_wall_s']:.2f}s exceeds "
            f"{max_regression:.1f}x the baseline {base_total:.2f}s"
        )
    for name, entry in result["figures"].items():
        base = baseline.get("figures", {}).get(name)
        if base is None:
            continue
        if entry["virtual_s"] != base["virtual_s"]:
            problems.append(
                f"{name}: virtual time drifted from the baseline "
                f"({entry['virtual_s']!r} != {base['virtual_s']!r}); "
                "simulated results must not change in a perf PR"
            )
    return problems


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perfsmoke",
        description="perf smoke subset; writes a JSON wall/virtual artifact",
    )
    parser.add_argument(
        "--out", default="BENCH_PR9.json", help="artifact path to write"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON to compare wall-clock against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="fail if total wall-clock exceeds this factor over the baseline",
    )
    args = parser.parse_args(argv)

    result = run_perfsmoke()
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    for name, entry in result["figures"].items():
        print(
            f"{name:12s} wall {entry['wall_s']:8.3f}s   "
            f"virtual {entry['virtual_s']:.6e}s"
        )
    print(f"{'total':12s} wall {result['total_wall_s']:8.3f}s -> {args.out}")
    fuzz = result["fuzz_throughput"]
    print(
        f"{'fuzz':12s} {fuzz['cases']} cases / {fuzz['cells']} cells in "
        f"{fuzz['wall_s']:.1f}s = {fuzz['cases_per_s']:.2f} cases/s "
        "(informational, non-gating)"
    )

    if args.baseline:
        problems = check_regression(
            result, Path(args.baseline), args.max_regression
        )
        if problems:
            for p in problems:
                print(f"PERFSMOKE FAIL: {p}")
            return 1
        print(f"within {args.max_regression:.1f}x of baseline {args.baseline}")
    return 0
