"""Hot-path profiler: ``python -m repro.bench profile``.

The tooling behind the hot-path overhaul, made repeatable: the
deterministic scheduler runs each rank on its own thread, so a single
``cProfile`` around the driver only sees lock waits.  This harness
installs one profiler per rank thread — wrapped around the
:class:`~repro.runtime.scheduler.SimWorld` rank bodies — aggregates the
per-thread stats and prints the top-N entries by internal time, which is
exactly where per-op Python overhead (event construction, hashing,
descriptor allocation) shows up.

Usage::

    python -m repro.bench profile             # fig15 at perfsmoke scale
    python -m repro.bench profile fig03 --top 40 --out profile.json

Any figure/ablation id accepted by ``python -m repro.bench`` can be
profiled; the JSON artifact records the top-N rows so perf PRs can attach
before/after profiles.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.bench.perfsmoke import SMOKE_LCC_SCALE

#: Rows printed / recorded by default.
DEFAULT_TOP = 30


@contextmanager
def rank_profilers() -> Iterator[list[cProfile.Profile]]:
    """Profile every SimWorld rank body started inside the ``with`` block.

    Yields the (initially empty) list of per-thread profilers; it fills as
    rank threads finish.  The scheduler's ``_thread_main`` is restored on
    exit.
    """
    from repro.runtime import scheduler as sched

    orig = sched.SimWorld._thread_main
    profs: list[cProfile.Profile] = []
    lock = threading.Lock()

    def patched(self, proc, target, args, kwargs, results):
        prof = cProfile.Profile()

        def wrapped(proc, *a, **k):
            prof.enable()
            try:
                return target(proc, *a, **k)
            finally:
                prof.disable()

        orig(self, proc, wrapped, args, kwargs, results)
        with lock:
            profs.append(prof)

    sched.SimWorld._thread_main = patched
    try:
        yield profs
    finally:
        sched.SimWorld._thread_main = orig


def aggregate(profs: list[cProfile.Profile]) -> pstats.Stats | None:
    """Merge per-thread profiles into one :class:`pstats.Stats`."""
    if not profs:
        return None
    st = pstats.Stats(profs[0])
    for p in profs[1:]:
        st.add(p)
    return st


def top_rows(st: pstats.Stats, top: int = DEFAULT_TOP) -> list[dict[str, Any]]:
    """The ``top`` stats rows by internal time, JSON-friendly.

    Thread-lock waits are dropped: rank threads block on the scheduler's
    turn-taking lock, so ``_thread.lock.acquire`` records wall time that
    is other ranks' work, not this rank's cost.
    """
    rows = []
    for (fname, line, func), (cc, nc, tt, ct, _callers) in st.stats.items():
        if "_thread.lock" in func or "_thread.RLock" in func:
            continue
        rows.append(
            {
                "function": f"{fname}:{line}({func})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    rows.sort(key=lambda r: r["tottime_s"], reverse=True)
    return rows[:top]


def profile_call(
    fn: Callable[[], Any], top: int = DEFAULT_TOP
) -> tuple[Any, list[dict[str, Any]]]:
    """Run ``fn`` with per-rank profilers; return (result, top rows)."""
    with rank_profilers() as profs:
        result = fn()
    st = aggregate(profs)
    return result, (top_rows(st, top) if st is not None else [])


def _resolve_targets(names: list[str]) -> list[tuple[str, Callable[[], Any]]]:
    from repro.bench.ablations import ALL_ABLATIONS
    from repro.bench.figures import ALL_FIGURES, fig15_lcc_params

    catalog: dict[str, Callable[[], Any]] = {**ALL_FIGURES, **ALL_ABLATIONS}
    if not names:
        # Default: the perfsmoke-scale LCC run that dominates the smoke
        # wall time — the workload the hot-path invariants are pinned on.
        return [
            ("fig15", lambda: fig15_lcc_params(scale=SMOKE_LCC_SCALE))
        ]
    unknown = [n for n in names if n not in catalog]
    if unknown:
        raise SystemExit(
            f"unknown profile targets: {unknown}; available: {list(catalog)}"
        )
    return [(n, catalog[n]) for n in names]


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench profile",
        description="aggregate per-rank-thread cProfile of figure workloads",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help="figure/ablation ids to profile (default: fig15 at smoke scale)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=DEFAULT_TOP,
        help="rows to print/record, ranked by tottime",
    )
    parser.add_argument(
        "--out", default=None, help="also write the rows as a JSON artifact"
    )
    args = parser.parse_args(argv)

    artifact: dict[str, Any] = {"top": args.top, "targets": {}}
    for name, fn in _resolve_targets(args.figures):
        _, rows = profile_call(fn, top=args.top)
        artifact["targets"][name] = rows
        print(f"== {name}: top {args.top} by tottime (all rank threads) ==")
        print(
            f"{'ncalls':>10s} {'tottime':>10s} {'cumtime':>10s}  function"
        )
        for r in rows:
            print(
                f"{r['ncalls']:>10d} {r['tottime_s']:>10.4f} "
                f"{r['cumtime_s']:>10.4f}  {r['function']}"
            )
        print()

    if args.out:
        Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0
