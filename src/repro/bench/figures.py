"""One reproduction entry point per figure of the paper's evaluation.

Each ``figNN_*`` function runs the corresponding experiment on the
simulated substrate and returns a :class:`~repro.bench.reporting.FigureResult`
holding the same rows/series the paper plots, plus explicit checks of the
paper's qualitative claims ("who wins, by roughly what factor, where the
crossovers fall").

Default parameters are scaled down from the paper (pure-Python substrate);
every function accepts the paper-scale values as arguments.  The mapping
from default to paper scale is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import clampi
from repro.apps import BarnesHutApp, LCCApp
from repro.apps.cachespec import CacheSpec
from repro.bench.micro import make_micro_workload, run_micro
from repro.bench.overlap import measure_overlap_curve
from repro.bench.reporting import FigureResult
from repro.mpi.simmpi import SimMPI
from repro.mpi.window import Window
from repro.net import PerfModel, Topology
from repro.trace import reuse_histogram, size_distribution
from repro.util import KiB, MiB, format_bytes

US = 1e6  # seconds -> microseconds


# ----------------------------------------------------------------------
# Fig. 1 — latency per message size and process/node mapping
# ----------------------------------------------------------------------
def fig01_latency(sizes: list[int] | None = None) -> FigureResult:
    """Blocking get latency across the placement hierarchy."""
    sizes = sizes or [2**i for i in range(0, 17, 2)]
    mappings = [
        ("same node", Topology(2, ranks_per_node=2)),
        ("same chassis", Topology(2, ranks_per_node=1)),
        ("same group", Topology(32, ranks_per_node=1)),
        ("remote group", Topology(2, 1, nodes_per_chassis=1, chassis_per_group=1)),
    ]
    fig = FigureResult(
        "Fig. 1",
        "get latency (us) per message size and initiator/target mapping",
        ["size"] + [m for m, _t in mappings],
    )

    def _ping(mpi, nbytes, target):
        win = Window.allocate(mpi.comm_world, max(nbytes, 1))
        mpi.comm_world.barrier()
        if mpi.rank != 0:
            return None
        buf = np.empty(max(nbytes, 1), np.uint8)
        win.lock(target)
        t0 = mpi.time
        win.get(buf[:nbytes], target, 0)
        win.flush(target)
        dt = mpi.time - t0
        win.unlock(target)
        return dt

    table: dict[tuple[str, int], float] = {}
    for name, topo in mappings:
        perf = PerfModel(topology=topo)
        target = 1 if topo.nprocs == 2 else topo.nprocs - 1
        for s in sizes:
            mpi = SimMPI(nprocs=topo.nprocs, perf=perf)
            res = mpi.run(_ping, s, target)
            table[(name, s)] = res[0]
    for s in sizes:
        fig.rows.append([s] + [round(table[(m, s)] * US, 3) for m, _t in mappings])
    small = sizes[0]
    fig.add_claim(
        "latency hierarchy spans >= one order of magnitude at small sizes",
        table[("remote group", small)] / table[("same node", small)] > 3
        and table[("remote group", small)] > 1.5e-6,
    )
    fig.add_claim(
        "latency grows monotonically with distance for every size",
        all(
            table[(mappings[i][0], s)] <= table[(mappings[i + 1][0], s)]
            for s in sizes
            for i in range(len(mappings) - 1)
        ),
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 2 — N-body get-reuse histogram
# ----------------------------------------------------------------------
def fig02_reuse(nbodies: int = 1000, nprocs: int = 4) -> FigureResult:
    """How often the Barnes-Hut force phase repeats the same get.

    Paper: 4 processes, 4,000 bodies; the same remote data is fetched up to
    ~3,500 times.
    """
    app = BarnesHutApp(nbodies=nbodies, seed=11)
    run = app.run(nprocs, CacheSpec.fompi(), trace=True)
    records = [r for t in run.traces for r in t.records]
    hist = reuse_histogram(records)
    fig = FigureResult(
        "Fig. 2",
        f"N-body get-reuse histogram (P={nprocs}, N={nbodies} bodies)",
        ["repeat count (binned)", "distinct gets"],
    )
    # log-spaced bins like the paper's histogram
    edges = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1 << 20]
    binned = Counter()
    for repeats, n_keys in hist.items():
        for lo, hi in zip(edges, edges[1:]):
            if lo <= repeats < hi:
                binned[f"{lo}-{hi - 1}"] += n_keys
                break
    for lo, hi in zip(edges, edges[1:]):
        label = f"{lo}-{hi - 1}"
        if binned.get(label):
            fig.rows.append([label, binned[label]])
    max_repeat = max(hist) if hist else 0
    total = sum(r * k for r, k in hist.items())
    distinct = sum(hist.values())
    fig.notes.append(f"total remote gets: {total}, distinct: {distinct}")
    fig.notes.append(f"most-repeated get fetched {max_repeat} times")
    fig.add_claim(
        "the same remote data is fetched many times (max repeats >> 10)",
        max_repeat > 10,
    )
    fig.add_claim(
        "repeated accesses dominate the traffic (reuse fraction > 50%)",
        (total - distinct) / max(total, 1) > 0.5,
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 3 — LCC get-size distribution
# ----------------------------------------------------------------------
def fig03_sizes(scale: int = 11, edge_factor: int = 16, nprocs: int = 8) -> FigureResult:
    """Distribution of get sizes in an LCC run (variable-size entries).

    Paper: R-MAT 2^16 vertices / 2^20 edges on 32 nodes.
    """
    app = LCCApp(scale=scale, edge_factor=edge_factor, seed=5)
    run = app.run(nprocs, CacheSpec.fompi(), trace=True)
    records = [r for t in run.traces for r in t.records]
    edges, counts = size_distribution(records)
    fig = FigureResult(
        "Fig. 3",
        f"LCC get-size distribution (R-MAT 2^{scale} vertices, "
        f"2^{scale} x {edge_factor} edges, P={nprocs})",
        ["size bin", "gets", "fraction"],
    )
    total = counts.sum()
    for lo, hi, c in zip(edges[:-1], edges[1:], counts):
        if c:
            fig.rows.append(
                [f"{format_bytes(int(lo))}..{format_bytes(int(hi))}", int(c), round(c / total, 4)]
            )
    sizes = np.array([r.size for r in records])
    fig.notes.append(
        f"sizes: min={sizes.min()} B, median={int(np.median(sizes))} B, "
        f"max={sizes.max()} B, mean={sizes.mean():.0f} B"
    )
    fig.add_claim(
        "get sizes are highly variable (span >= 2 orders of magnitude, "
        "max >= 8x the median)",
        sizes.max() / max(sizes.min(), 1) >= 100
        and sizes.max() / max(np.median(sizes), 1) >= 8,
    )
    fig.add_claim(
        "a fixed block size wastes space: mean size well below the p95 size",
        sizes.mean() < 0.5 * np.percentile(sizes, 95),
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 7 — caching costs per access type and data size
# ----------------------------------------------------------------------
def fig07_access_costs(
    n_distinct: int = 1000,
    z: int = 20_000,
    data_sizes: list[int] | None = None,
) -> FigureResult:
    """Median latency per access type; foMPI get as the reference."""
    data_sizes = data_sizes or [1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB]
    wl = make_micro_workload(n_distinct=n_distinct, z=z, seed=7)
    fompi = run_micro(wl, CacheSpec.fompi())
    # A deliberately tight cache so that all access types occur.
    tight = run_micro(
        wl,
        CacheSpec.clampi_fixed(
            index_entries=max(64, n_distinct // 2),
            storage_bytes=max(wl.window_bytes // 4, 64 * KiB),
        ),
    )
    # An ample cache for the clean hitting/direct costs.
    ample = run_micro(
        wl,
        CacheSpec.clampi_fixed(
            index_entries=4 * n_distinct, storage_bytes=2 * wl.window_bytes
        ),
    )
    fig = FigureResult(
        "Fig. 7",
        f"access-type latency (us) per data size (N={n_distinct}, Z={z})",
        ["access type"] + [format_bytes(d) for d in data_sizes],
    )

    def med(result, access, size):
        v = result.median_latency(access, size)
        return round(v * US, 3) if v is not None else "-"

    fig.rows.append(["foMPI get"] + [med(fompi, "uncached", d) for d in data_sizes])
    fig.rows.append(["hitting"] + [med(ample, "hit_full", d) for d in data_sizes])
    fig.rows.append(["direct"] + [med(ample, "direct", d) for d in data_sizes])
    for access in ("conflicting", "capacity", "failing"):
        fig.rows.append([access] + [med(tight, access, d) for d in data_sizes])
    counts = Counter(tight.access_types)
    fig.notes.append(f"tight-cache access mix: {dict(counts)}")

    hit4 = ample.median_latency("hit_full", 4 * KiB)
    fompi4 = fompi.median_latency("uncached", 4 * KiB)
    hit16 = ample.median_latency("hit_full", 16 * KiB)
    fompi16 = fompi.median_latency("uncached", 16 * KiB)
    if hit4 and fompi4:
        fig.notes.append(f"hit speedup @4 KiB: {fompi4 / hit4:.1f}x (paper: 9.3x)")
    if hit16 and fompi16:
        fig.notes.append(f"hit speedup @16 KiB: {fompi16 / hit16:.1f}x (paper: 3.7x)")
    fig.add_claim(
        "hitting access is several times faster than the foMPI get at 4 KiB",
        bool(hit4 and fompi4 and fompi4 / hit4 > 4),
    )
    fig.add_claim(
        "hit advantage shrinks with size (ratio @16 KiB < ratio @4 KiB)",
        bool(hit4 and hit16 and (fompi16 / hit16) < (fompi4 / hit4)),
    )
    d4 = ample.median_latency("direct", 4 * KiB)
    fig.add_claim(
        "miss overhead is bounded: direct access within 25% of the foMPI get",
        bool(d4 and fompi4 and d4 <= 1.25 * fompi4),
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 8 — communication/computation overlap
# ----------------------------------------------------------------------
def fig08_overlap(sizes: list[int] | None = None) -> FigureResult:
    """Overlappable communication fraction per access type (Fig. 8)."""
    sizes = sizes or [512, 2 * KiB, 8 * KiB, 16 * KiB, 64 * KiB]
    accesses = ["fompi", "direct", "capacity", "failing"]
    fig = FigureResult(
        "Fig. 8",
        "overlappable fraction of the communication per access type",
        ["size"] + accesses,
    )
    curves = {a: measure_overlap_curve(a, sizes) for a in accesses}
    for i, s in enumerate(sizes):
        fig.rows.append(
            [format_bytes(s)] + [round(curves[a][i].overlap_fraction, 3) for a in accesses]
        )
    fompi_large = curves["fompi"][-1].overlap_fraction
    fig.add_claim(
        "foMPI is the upper bound and reaches ~85%+ at 64 KiB",
        fompi_large >= 0.85
        and all(
            curves["fompi"][i].overlap_fraction
            >= max(curves[a][i].overlap_fraction for a in accesses[1:]) - 0.02
            for i in range(len(sizes))
        ),
    )
    fig.add_claim(
        "direct and capacity behave similarly (both dominated by the copy)",
        all(
            abs(curves["direct"][i].overlap_fraction - curves["capacity"][i].overlap_fraction)
            < 0.2
            for i in range(len(sizes))
        ),
    )
    fig.add_claim(
        "failing overlaps more than direct at large sizes (no data copy)",
        curves["failing"][-1].overlap_fraction > curves["direct"][-1].overlap_fraction,
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 9 — adaptive vs fixed: completion time over hash table size
# ----------------------------------------------------------------------
def fig09_adaptive(
    n_distinct: int = 1000,
    z: int = 10_000,
    hash_sizes: list[int] | None = None,
) -> FigureResult:
    """Completion time vs |I_w|, fixed vs adaptive strategy (Fig. 9)."""
    hash_sizes = hash_sizes or [200, 400, 600, 800, 1000, 2000, 4000]
    wl = make_micro_workload(n_distinct=n_distinct, z=z, seed=7)
    storage = 2 * wl.window_bytes
    fig = FigureResult(
        "Fig. 9",
        f"micro-benchmark completion time (ms) vs |I_w| (N={n_distinct}, Z={z})",
        ["|I_w| (start)", "fixed (ms)", "adaptive (ms)", "adaptive final |I_w|", "adjustments"],
    )
    fixed_times = {}
    adaptive_times = {}
    for h in hash_sizes:
        rf = run_micro(wl, CacheSpec.clampi_fixed(h, storage))
        ra = run_micro(
            wl,
            CacheSpec.clampi_adaptive(
                h,
                storage,
                adaptive_params=clampi.AdaptiveParams(check_interval=256),
            ),
        )
        fixed_times[h] = rf.completion_time
        adaptive_times[h] = ra.completion_time
        fig.rows.append(
            [
                h,
                round(rf.completion_time * 1e3, 3),
                round(ra.completion_time * 1e3, 3),
                ra.final_index_entries,
                ra.stats.get("adjustments", 0),
            ]
        )
    small = [h for h in hash_sizes if h < n_distinct]
    big = [h for h in hash_sizes if h >= n_distinct]
    fig.add_claim(
        "fixed degrades when |I_w| < N (conflicting accesses dominate)",
        bool(small and big)
        and min(fixed_times[h] for h in small) > 1.15 * min(fixed_times[h] for h in big),
    )
    spread_fixed = max(fixed_times.values()) / min(fixed_times.values())
    spread_adaptive = max(adaptive_times.values()) / min(adaptive_times.values())
    fig.notes.append(
        f"completion-time spread across starts: fixed {spread_fixed:.2f}x, "
        f"adaptive {spread_adaptive:.2f}x"
    )
    fig.add_claim(
        "adaptive is insensitive to the start value where fixed is not "
        "(adaptive spread well below fixed spread, adaptive worst < fixed worst)",
        spread_adaptive < 0.7 * spread_fixed
        and max(adaptive_times.values()) < max(fixed_times.values()),
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 10 — external fragmentation per victim-selection scheme
# ----------------------------------------------------------------------
def fig10_fragmentation(
    n_distinct: int = 1000,
    z: int = 50_000,
    index_entries: int = 1500,
    checkpoints: int = 10,
) -> FigureResult:
    """Storage occupancy over the get sequence per victim policy (Fig. 10)."""
    wl = make_micro_workload(n_distinct=n_distinct, z=z, seed=7)
    storage = wl.window_bytes // 3  # saturate the buffer
    fig = FigureResult(
        "Fig. 10",
        f"storage occupancy vs get sequence id (|I_w|={index_entries}, "
        f"|S_w|={format_bytes(storage)}, Z={z})",
        ["get seq id", "Temporal", "Positional", "Full"],
    )
    series = {}
    saturated_mean = {}
    for policy in (
        clampi.EvictionPolicy.TEMPORAL,
        clampi.EvictionPolicy.POSITIONAL,
        clampi.EvictionPolicy.FULL,
    ):
        res = run_micro(
            wl,
            CacheSpec.clampi_fixed(index_entries, storage, policy=policy),
            record_occupancy=True,
        )
        occ = res.occupancy
        # start reporting once the buffer first saturates (paper method)
        sat = int(np.argmax(occ > 0.85)) if np.any(occ > 0.85) else len(occ) // 4
        series[policy] = occ
        saturated_mean[policy] = float(occ[sat:].mean())
    step = max(1, z // checkpoints)
    for i in range(step, z + 1, step):
        fig.rows.append(
            [
                i,
                round(float(series[clampi.EvictionPolicy.TEMPORAL][i - 1]), 3),
                round(float(series[clampi.EvictionPolicy.POSITIONAL][i - 1]), 3),
                round(float(series[clampi.EvictionPolicy.FULL][i - 1]), 3),
            ]
        )
    for pol, mean in saturated_mean.items():
        fig.notes.append(f"mean occupancy after saturation [{pol.value}]: {mean:.3f}")
    fig.add_claim(
        "Temporal fragments: its occupancy is the lowest of the three",
        saturated_mean[clampi.EvictionPolicy.TEMPORAL]
        < min(
            saturated_mean[clampi.EvictionPolicy.FULL],
            saturated_mean[clampi.EvictionPolicy.POSITIONAL],
        ),
    )
    fig.add_claim(
        "Full and Positional keep occupancy around 85-95% of |S_w|",
        saturated_mean[clampi.EvictionPolicy.FULL] > 0.8
        and saturated_mean[clampi.EvictionPolicy.POSITIONAL] > 0.8,
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 11 — victim selection study over |I_w|
# ----------------------------------------------------------------------
def fig11_victim(
    n_distinct: int = 1000,
    z: int = 20_000,
    hash_sizes: list[int] | None = None,
) -> FigureResult:
    """Victim-selection study over |I_w|: visits, hits, free space (Fig. 11)."""
    hash_sizes = hash_sizes or [1000, 2000, 4000, 8000, 16000]
    wl = make_micro_workload(n_distinct=n_distinct, z=z, seed=7)
    storage = wl.window_bytes // 3
    fig = FigureResult(
        "Fig. 11",
        f"victim-selection study vs |I_w| (M=16, Z={z})",
        [
            "|I_w|",
            "visited/evict",
            "nonempty/evict",
            "hits Temporal",
            "hits Positional",
            "hits Full",
            "free Temporal",
            "free Positional",
            "free Full",
        ],
    )
    hits = {p: {} for p in clampi.EvictionPolicy}
    for h in hash_sizes:
        row: list = [h]
        per_policy = {}
        for policy in (
            clampi.EvictionPolicy.TEMPORAL,
            clampi.EvictionPolicy.POSITIONAL,
            clampi.EvictionPolicy.FULL,
        ):
            res = run_micro(
                wl, CacheSpec.clampi_fixed(h, storage, policy=policy),
                record_occupancy=True,
            )
            per_policy[policy] = res
            hits[policy][h] = (
                res.stats["hit_full"]
                + res.stats["hit_partial"]
                + res.stats["hit_pending"]
            )
        full = per_policy[clampi.EvictionPolicy.FULL]
        evictions = max(full.stats["capacity_evictions"], 1)
        row.append(round(full.stats["eviction_visited"] / evictions, 1))
        row.append(round(full.stats["eviction_nonempty"] / evictions, 1))
        for policy in (
            clampi.EvictionPolicy.TEMPORAL,
            clampi.EvictionPolicy.POSITIONAL,
            clampi.EvictionPolicy.FULL,
        ):
            row.append(hits[policy][h])
        for policy in (
            clampi.EvictionPolicy.TEMPORAL,
            clampi.EvictionPolicy.POSITIONAL,
            clampi.EvictionPolicy.FULL,
        ):
            occ = per_policy[policy].occupancy
            row.append(round(1.0 - float(occ[len(occ) // 2 :].mean()), 3))
        fig.rows.append(row)
    visited = [r[1] for r in fig.rows]
    fig.add_claim(
        "visited entries per eviction grow with |I_w| (index sparsity)",
        visited[-1] > visited[0],
    )
    fig.add_claim(
        "Full achieves the best hit count for every |I_w|",
        all(
            hits[clampi.EvictionPolicy.FULL][h]
            >= max(
                hits[clampi.EvictionPolicy.TEMPORAL][h],
                hits[clampi.EvictionPolicy.POSITIONAL][h],
            )
            - int(0.02 * z)
            for h in hash_sizes
        ),
    )
    free_t = [r[6] for r in fig.rows]
    free_f = [r[8] for r in fig.rows]
    fig.add_claim(
        "Temporal leaves the most free space (highest external fragmentation)",
        np.mean(free_t) > np.mean(free_f),
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 12/13 — Barnes-Hut parameter sweep + stats
# ----------------------------------------------------------------------
def _bh_sweep(
    nbodies: int,
    nprocs: int,
    storages: list[int],
    index_entries: int,
    adaptive_check: int = 512,
):
    app = BarnesHutApp(nbodies=nbodies, seed=11)
    runs = {}
    fompi = app.run(nprocs, CacheSpec.fompi())
    runs["foMPI"] = {"time": fompi.time_per_body, "run": fompi}
    for s in storages:
        for label, spec in (
            (
                f"fixed {format_bytes(s)}",
                CacheSpec.clampi_fixed(index_entries, s, mode=clampi.Mode.USER_DEFINED),
            ),
            (
                f"adaptive {format_bytes(s)}",
                CacheSpec.clampi_adaptive(
                    index_entries,
                    s,
                    mode=clampi.Mode.USER_DEFINED,
                    adaptive_params=clampi.AdaptiveParams(
                        check_interval=adaptive_check, min_storage_bytes=16 * KiB
                    ),
                ),
            ),
            # node-granular blocks, like the reference UPC cell cache
            (f"native {format_bytes(s)}", CacheSpec.native(memory_bytes=s, block_size=128)),
        ):
            run = app.run(nprocs, spec)
            runs[label] = {"time": run.time_per_body, "run": run}
    return app, runs


def fig12_bh_params(
    nbodies: int = 1500,
    nprocs: int = 8,
    storages: list[int] | None = None,
    index_entries: int = 4096,
) -> FigureResult:
    """Force-computation time per body for CLaMPI fixed/adaptive vs native.

    Paper: N=20K, P=16, foMPI reference 1.53 ms/body; native ranges
    ~820 us (1 MiB) to ~400 us (4 MiB); adaptive is best and converges.
    """
    # Default storages bracket the tree footprint (~nbodies/500 MiB).
    tree_bytes = BarnesHutApp(nbodies=nbodies, seed=11).tree.nnodes * 128
    storages = storages or [tree_bytes // 4, tree_bytes // 2, tree_bytes, 2 * tree_bytes]
    app, runs = _bh_sweep(nbodies, nprocs, storages, index_entries)
    fig = FigureResult(
        "Fig. 12",
        f"Barnes-Hut force time per body (us), N={nbodies}, P={nprocs}, "
        f"tree={format_bytes(app.tree.nnodes * 128)}",
        ["configuration", "time/body (us)", "vs foMPI", "adjustments"],
    )
    base = runs["foMPI"]["time"]
    for label, data in runs.items():
        adjustments = data["run"].max_stat("adjustments") if data["run"].cache_stats else 0
        fig.rows.append(
            [label, round(data["time"] * US, 2), round(base / data["time"], 2), adjustments]
        )
    clampi_best = min(v["time"] for k, v in runs.items() if "fixed" in k or "adaptive" in k)
    native_times = [v["time"] for k, v in runs.items() if "native" in k]
    fig.add_claim("CLaMPI outperforms foMPI", clampi_best < base)
    fig.add_claim(
        "native performance depends strongly on its memory size (>= 1.3x spread)",
        max(native_times) / min(native_times) > 1.3,
    )
    adaptive_times = [v["time"] for k, v in runs.items() if "adaptive" in k]
    fixed_best = min(v["time"] for k, v in runs.items() if k.startswith("fixed"))
    fig.add_claim(
        "adaptive converges near the best fixed configuration from any start",
        max(adaptive_times) < 1.5 * fixed_best,
    )
    return fig


def fig13_bh_stats(
    nbodies: int = 1500,
    nprocs: int = 8,
    storage: int | None = None,
    index_entries_list: list[int] | None = None,
) -> FigureResult:
    """Access-type breakdown of the BH run (paper: |S_w| = 1 MiB).

    Paper shows the fixed strategy at |I_w|=1K being limited by conflicting
    accesses.
    """
    app = BarnesHutApp(nbodies=nbodies, seed=11)
    tree_bytes = app.tree.nnodes * 128
    storage = storage or tree_bytes // 2
    index_entries_list = index_entries_list or [64, 256, 1024, 4096]
    fig = FigureResult(
        "Fig. 13",
        f"Barnes-Hut access breakdown (|S_w|={format_bytes(storage)}, N={nbodies}, P={nprocs})",
        ["|I_w|", "hit", "direct", "conflicting", "capacity", "failing", "time/body (us)"],
    )
    conflict_ratio = {}
    for ie in index_entries_list:
        run = app.run(
            nprocs,
            CacheSpec.clampi_fixed(ie, storage, mode=clampi.Mode.USER_DEFINED),
        )
        st = run.merged_stats()
        gets = max(st["gets"], 1)
        hit = (st["hit_full"] + st["hit_partial"] + st["hit_pending"]) / gets
        conflict_ratio[ie] = st["conflicting"] / gets
        fig.rows.append(
            [
                ie,
                round(hit, 3),
                round(st["direct"] / gets, 3),
                round(st["conflicting"] / gets, 3),
                round(st["capacity"] / gets, 3),
                round(st["failing"] / gets, 3),
                round(run.time_per_body * US, 2),
            ]
        )
    fig.add_claim(
        "small |I_w| suffers from conflicting accesses; large |I_w| does not",
        conflict_ratio[index_entries_list[0]] > 5 * max(conflict_ratio[index_entries_list[-1]], 1e-9)
        or conflict_ratio[index_entries_list[0]] > 0.05,
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 14 — Barnes-Hut weak scaling
# ----------------------------------------------------------------------
def fig14_bh_weak(
    bodies_per_pe: int = 250,
    procs: list[int] | None = None,
    storage: int | None = None,
    index_entries: int = 8192,
) -> FigureResult:
    """Weak scaling (paper: 1.5K bodies/PE, P=16..128, |S_w|=2 MiB)."""
    procs = procs or [2, 4, 8, 16]
    fig = FigureResult(
        "Fig. 14",
        f"Barnes-Hut weak scaling, {bodies_per_pe} bodies/PE",
        ["P", "foMPI (us/body)", "native", "CLaMPI fixed", "CLaMPI adaptive"],
    )
    wins = []
    for p in procs:
        app = BarnesHutApp(nbodies=bodies_per_pe * p, seed=11)
        tree_bytes = app.tree.nnodes * 128
        s = storage or tree_bytes  # paper uses a fixed ample 2 MiB
        f = app.run(p, CacheSpec.fompi())
        n = app.run(
            p, CacheSpec.native(memory_bytes=max(s // 2, 64 * KiB), block_size=128)
        )
        c = app.run(
            p, CacheSpec.clampi_fixed(index_entries, s, mode=clampi.Mode.USER_DEFINED)
        )
        a = app.run(
            p,
            CacheSpec.clampi_adaptive(
                index_entries, s, mode=clampi.Mode.USER_DEFINED
            ),
        )
        fig.rows.append(
            [
                p,
                round(f.time_per_body * US, 2),
                round(n.time_per_body * US, 2),
                round(c.time_per_body * US, 2),
                round(a.time_per_body * US, 2),
            ]
        )
        wins.append(
            c.time_per_body < f.time_per_body and a.time_per_body < f.time_per_body
        )
    fig.add_claim("both CLaMPI strategies beat foMPI at every P", all(wins))
    last = fig.rows[-1]
    fig.add_claim(
        "CLaMPI outperforms native at the largest P",
        min(last[3], last[4]) < last[2],
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 15/16 — LCC parameter sweep + stats
# ----------------------------------------------------------------------
def fig15_lcc_params(
    scale: int = 12,
    edge_factor: int = 16,
    nprocs: int = 8,
) -> FigureResult:
    """LCC vertex processing time across cache configurations.

    Paper: R-MAT 2^20/2^24 on P=32; fixed 64 MiB limited by capacity
    accesses, 128 MiB reaches 5x over foMPI; adaptive matches the best
    fixed independent of the start.
    """
    app = LCCApp(scale=scale, edge_factor=edge_factor, seed=5)
    # total adjacency footprint = nedges * 8 bytes
    adj_bytes = app.csr.nedges * 8
    s_small = adj_bytes // 8
    s_big = adj_bytes
    ie_small = max(256, app.nvertices // 8)
    ie_big = 2 * app.nvertices
    fompi = app.run(nprocs, CacheSpec.fompi())
    configs = [
        (f"fixed |S|={format_bytes(s_small)} |I|={ie_small}",
         CacheSpec.clampi_fixed(ie_small, s_small)),
        (f"fixed |S|={format_bytes(s_small)} |I|={ie_big}",
         CacheSpec.clampi_fixed(ie_big, s_small)),
        (f"fixed |S|={format_bytes(s_big)} |I|={ie_big}",
         CacheSpec.clampi_fixed(ie_big, s_big)),
        (f"adaptive from |S|={format_bytes(s_small)} |I|={ie_small}",
         CacheSpec.clampi_adaptive(
             ie_small, s_small,
             adaptive_params=clampi.AdaptiveParams(check_interval=256))),
        (f"adaptive from |S|={format_bytes(s_big)} |I|={ie_big}",
         CacheSpec.clampi_adaptive(
             ie_big, s_big,
             adaptive_params=clampi.AdaptiveParams(check_interval=256))),
    ]
    fig = FigureResult(
        "Fig. 15",
        f"LCC vertex time (us), R-MAT 2^{scale} x EF{edge_factor}, P={nprocs}",
        ["configuration", "vertex time (us)", "vs foMPI", "adjustments"],
    )
    fig.rows.append(["foMPI", round(fompi.vertex_time * US, 2), 1.0, 0])
    times = {}
    for label, spec in configs:
        run = app.run(nprocs, spec)
        times[label] = run.vertex_time
        fig.rows.append(
            [
                label,
                round(run.vertex_time * US, 2),
                round(fompi.vertex_time / run.vertex_time, 2),
                run.max_stat("adjustments"),
            ]
        )
    big_fixed = times[configs[2][0]]
    small_fixed = times[configs[0][0]]
    fig.add_claim(
        "the large fixed configuration clearly beats foMPI",
        big_fixed < 0.7 * fompi.vertex_time,
    )
    fig.add_claim(
        "small |S_w| is limited by capacity/failed accesses (slower than large)",
        small_fixed > big_fixed,
    )
    adaptives = [times[c[0]] for c in configs if c[0].startswith("adaptive")]
    fig.add_claim(
        "adaptive approaches the best fixed from any start "
        "(within ~70%, the convergence transient)",
        max(adaptives) < 1.7 * big_fixed,
    )
    return fig


def fig16_lcc_stats(
    scale: int = 12,
    edge_factor: int = 16,
    nprocs: int = 8,
) -> FigureResult:
    """Access breakdown of fixed vs adaptive at the small |S_w|."""
    app = LCCApp(scale=scale, edge_factor=edge_factor, seed=5)
    adj_bytes = app.csr.nedges * 8
    s_small = adj_bytes // 8
    ie = 2 * app.nvertices
    fig = FigureResult(
        "Fig. 16",
        f"LCC access breakdown at |S_w|={format_bytes(s_small)} (P={nprocs})",
        ["strategy", "hit", "direct", "conflicting", "capacity", "failing", "adjustments"],
    )
    ratios = {}
    for label, spec in (
        ("fixed", CacheSpec.clampi_fixed(ie, s_small)),
        ("adaptive", CacheSpec.clampi_adaptive(
            ie, s_small,
            adaptive_params=clampi.AdaptiveParams(check_interval=256))),
    ):
        run = app.run(nprocs, spec)
        st = run.merged_stats()
        gets = max(st["gets"], 1)
        hit = (st["hit_full"] + st["hit_partial"] + st["hit_pending"]) / gets
        ratios[label] = {
            "hit": hit,
            "capfail": (st["capacity"] + st["failing"]) / gets,
        }
        fig.rows.append(
            [
                label,
                round(hit, 3),
                round(st["direct"] / gets, 3),
                round(st["conflicting"] / gets, 3),
                round(st["capacity"] / gets, 3),
                round(st["failing"] / gets, 3),
                run.max_stat("adjustments"),
            ]
        )
    fig.add_claim(
        "adaptive recovers a solid hit rate from the small start (>55%)",
        ratios["adaptive"]["hit"] > 0.55,
    )
    fig.add_claim(
        "adaptive suppresses capacity/failed accesses relative to fixed",
        ratios["adaptive"]["capfail"] < ratios["fixed"]["capfail"],
    )
    return fig


# ----------------------------------------------------------------------
# Fig. 17/18 — LCC weak scaling + stats
# ----------------------------------------------------------------------
def _lcc_weak_runs(
    verts_per_pe_log2: int,
    edge_factor: int,
    procs: list[int],
    storage: int,
    index_entries: int,
):
    runs = {}
    for p in procs:
        scale = verts_per_pe_log2 + int(np.log2(p))
        app = LCCApp(scale=scale, edge_factor=edge_factor, seed=5)
        runs[p] = {
            "foMPI": app.run(p, CacheSpec.fompi()),
            "fixed": app.run(p, CacheSpec.clampi_fixed(index_entries, storage)),
            "adaptive": app.run(
                p,
                CacheSpec.clampi_adaptive(
                    index_entries,
                    storage,
                    adaptive_params=clampi.AdaptiveParams(check_interval=512),
                ),
            ),
        }
    return runs


def fig17_lcc_weak(
    verts_per_pe_log2: int = 8,
    edge_factor: int = 16,
    procs: list[int] | None = None,
    storage: int = 4 * MiB,
    index_entries: int = 16384,
) -> FigureResult:
    """LCC weak scaling (paper: |V| = P * 2^15, EF 16, P=16..128)."""
    procs = procs or [2, 4, 8, 16]
    runs = _lcc_weak_runs(verts_per_pe_log2, edge_factor, procs, storage, index_entries)
    fig = FigureResult(
        "Fig. 17",
        f"LCC weak scaling, |V|=P*2^{verts_per_pe_log2}, EF={edge_factor}",
        ["P", "foMPI (us/vertex)", "fixed", "adaptive", "adaptive adjustments"],
    )
    speedups = []
    for p in procs:
        r = runs[p]
        fig.rows.append(
            [
                p,
                round(r["foMPI"].vertex_time * US, 2),
                round(r["fixed"].vertex_time * US, 2),
                round(r["adaptive"].vertex_time * US, 2),
                r["adaptive"].max_stat("adjustments"),
            ]
        )
        speedups.append(r["foMPI"].vertex_time / r["adaptive"].vertex_time)
    fig.notes.append(
        "adaptive speedup vs foMPI per P: "
        + ", ".join(f"{p}: {s:.2f}x" for p, s in zip(procs, speedups))
    )
    fig.add_claim("CLaMPI beats foMPI at small P", speedups[0] > 1.2)
    fig.add_claim(
        "CLaMPI advantage shrinks as P grows (reuse decays with weak scaling)",
        speedups[-1] < speedups[0],
    )
    fig._weak_runs = runs  # stashed for fig18 reuse
    return fig


def fig18_lcc_weak_stats(
    verts_per_pe_log2: int = 8,
    edge_factor: int = 16,
    procs: list[int] | None = None,
    storage: int = 4 * MiB,
    index_entries: int = 16384,
    runs=None,
) -> FigureResult:
    """Access breakdown along the weak-scaling sweep (adaptive strategy)."""
    procs = procs or [2, 4, 8, 16]
    if runs is None:
        runs = _lcc_weak_runs(
            verts_per_pe_log2, edge_factor, procs, storage, index_entries
        )
    fig = FigureResult(
        "Fig. 18",
        "LCC weak-scaling access breakdown (adaptive)",
        ["P", "hit", "direct", "conflicting", "capacity", "failing"],
    )
    direct_ratio = []
    for p in procs:
        st = runs[p]["adaptive"].merged_stats()
        gets = max(st["gets"], 1)
        hit = (st["hit_full"] + st["hit_partial"] + st["hit_pending"]) / gets
        direct_ratio.append(st["direct"] / gets)
        fig.rows.append(
            [
                p,
                round(hit, 3),
                round(st["direct"] / gets, 3),
                round(st["conflicting"] / gets, 3),
                round(st["capacity"] / gets, 3),
                round(st["failing"] / gets, 3),
            ]
        )
    fig.add_claim(
        "direct accesses increase with P (data reuse decreases)",
        direct_ratio[-1] > direct_ratio[0],
    )
    fig.add_claim(
        "non-direct miss types stay small under the adaptive strategy (< 15%)",
        all(
            (row[3] + row[4] + row[5]) < 0.15 for row in fig.rows
        ),
    )
    return fig


#: The paper's original experiment parameters.  Pass these (e.g. via
#: ``python -m repro.bench figNN --paper-scale``) to run at full scale —
#: expect hours of wall time for the application figures on CPython.
PAPER_SCALE_KWARGS: dict[str, dict] = {
    "fig01": {},
    "fig02": {"nbodies": 4000, "nprocs": 4},
    "fig03": {"scale": 16, "edge_factor": 16, "nprocs": 32},
    "fig07": {"n_distinct": 1000, "z": 20_000},
    "fig08": {},
    "fig09": {"n_distinct": 1000, "z": 20_000},
    "fig10": {"z": 100_000, "index_entries": 1500},
    "fig11": {"z": 100_000},
    "fig12": {"nbodies": 20_000, "nprocs": 16},
    "fig13": {"nbodies": 20_000, "nprocs": 16},
    "fig14": {"bodies_per_pe": 1500, "procs": [16, 32, 64, 128]},
    "fig15": {"scale": 20, "edge_factor": 16, "nprocs": 32},
    "fig16": {"scale": 20, "edge_factor": 16, "nprocs": 32},
    "fig17": {"verts_per_pe_log2": 15, "procs": [16, 32, 64, 128]},
    "fig18": {"verts_per_pe_log2": 15, "procs": [16, 32, 64, 128]},
}

ALL_FIGURES = {
    "fig01": fig01_latency,
    "fig02": fig02_reuse,
    "fig03": fig03_sizes,
    "fig07": fig07_access_costs,
    "fig08": fig08_overlap,
    "fig09": fig09_adaptive,
    "fig10": fig10_fragmentation,
    "fig11": fig11_victim,
    "fig12": fig12_bh_params,
    "fig13": fig13_bh_stats,
    "fig14": fig14_bh_weak,
    "fig15": fig15_lcc_params,
    "fig16": fig16_lcc_stats,
    "fig17": fig17_lcc_weak,
    "fig18": fig18_lcc_weak_stats,
}
