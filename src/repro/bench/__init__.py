"""Benchmark harness: workloads, measurement and figure regeneration.

* :mod:`repro.bench.micro` — the Sec. IV-A micro-benchmark workload
  (N distinct gets with power-of-two sizes, Z normally-sampled repeats)
  plus a per-get classifying runner.
* :mod:`repro.bench.overlap` — the communication/computation overlap
  methodology of Fig. 8.
* :mod:`repro.bench.figures` — one entry point per paper figure; each
  returns a :class:`~repro.bench.reporting.FigureResult` with the same
  rows/series the paper plots.  ``python -m repro.bench`` regenerates all
  of them.
* :mod:`repro.bench.reporting` — ASCII table rendering shared by the
  pytest benchmarks and the CLI.
"""

from repro.bench.micro import MicroWorkload, make_micro_workload, run_micro
from repro.bench.overlap import measure_overlap_curve
from repro.bench.reporting import FigureResult, format_table

__all__ = [
    "FigureResult",
    "MicroWorkload",
    "format_table",
    "make_micro_workload",
    "measure_overlap_curve",
    "run_micro",
]
