"""Communication/computation overlap study (paper Fig. 8).

Methodology: for a given access type and data size ``D``,

1. measure the blocking latency ``T_base`` of the access (issue + flush);
2. measure ``T_ov`` of the sequence *issue get → compute(T_base) → flush*;
3. the overlappable portion is ``clamp(2 - T_ov / T_base, 0, 1)``:
   fully hidden communication gives ``T_ov == T_base`` (ratio 1), fully
   exposed gives ``T_ov == 2 * T_base`` (ratio 0).

Access types are *forced* by cache pre-conditioning:

* ``fompi``   — plain window, no cache;
* ``direct``  — fresh displacements into an amply-sized cache;
* ``capacity``— storage pre-filled with same-size entries, so every new get
  evicts one victim and fits into the freed hole;
* ``failing`` — storage pre-filled with tiny entries, so one eviction can
  never free enough space and the insert fails.

CLaMPI could always directly cache gets below ~512 B in the paper's setup;
capacity/failing rows therefore start at 512 B there, and the same
threshold falls out of our pre-conditioning (tiny gets always fit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import clampi
from repro.mpi.simmpi import MPIProcess, SimMPI
from repro.mpi.window import Window
from repro.net import PerfModel
from repro.util import KiB


@dataclass(frozen=True)
class OverlapPoint:
    access: str
    size: int
    base_latency: float
    overlapped_latency: float

    @property
    def overlap_fraction(self) -> float:
        if self.base_latency <= 0:
            return 0.0
        return float(np.clip(2.0 - self.overlapped_latency / self.base_latency, 0.0, 1.0))


def _prepare_window(mpi: MPIProcess, access: str, size: int):
    """Create + pre-condition a window so each new get has type ``access``."""
    nbytes = 64 * 1024 * 1024
    local = np.zeros(nbytes, np.uint8)
    if access == "fompi":
        win = Window.create(mpi.comm_world, local)
        mpi.comm_world.barrier()
        return win
    # Index sizes are matched to the expected entry population: a sparse
    # index inflates the victim-sampling walk (the Fig. 11 effect), which
    # would contaminate the per-access-type costs measured here.
    if access == "direct":
        cfg = clampi.Config(index_entries=1 << 14, storage_bytes=256 * 1024 * KiB)
    elif access == "capacity":
        # room for exactly 4 entries of `size`: every further get evicts one
        cfg = clampi.Config(index_entries=64, storage_bytes=max(4 * size, 4 * 64))
    elif access == "failing":
        tiny_entries = max(2 * size, 4 * 64) // 64
        cfg = clampi.Config(
            index_entries=max(64, 2 * tiny_entries),
            storage_bytes=max(2 * size, 4 * 64),
            max_capacity_evictions=1,
        )
    else:
        raise ValueError(f"unknown access type {access}")
    raw = Window.create(mpi.comm_world, local)
    win = clampi.wrap(raw, mode=clampi.Mode.ALWAYS_CACHE, config=cfg)
    mpi.comm_world.barrier()
    if mpi.rank != 0:
        return win
    win.lock_all()
    buf = np.empty(max(size, 64), np.uint8)
    if access == "capacity":
        # fill the storage with same-size victims
        for i in range(8):
            win.get(buf[:size], 1, i * size)
            win.flush(1)
    elif access == "failing":
        # fill the storage with 64-byte entries: evicting one never helps
        for i in range(win.storage.capacity // 64 + 8):
            win.get(buf[:64], 1, i * 64)
            win.flush(1)
    win.unlock_all()
    return win


def _overlap_program(mpi: MPIProcess, access: str, size: int, repetitions: int):
    win = _prepare_window(mpi, access, size)
    if mpi.rank != 0:
        return None
    buf = np.empty(size, np.uint8)
    # fresh displacements beyond the pre-conditioning region
    base_disp = 32 * 1024 * 1024
    win.lock_all()

    def one_get(disp: int, compute: float) -> float:
        t0 = mpi.time
        win.get(buf, 1, disp)
        if compute:
            mpi.compute(compute)
        win.flush(1)
        return mpi.time - t0

    # measure the blocking latency
    base = [one_get(base_disp + i * size, 0.0) for i in range(repetitions)]
    t_base = float(np.median(base))
    # measure with compute injected between issue and flush
    ov = [
        one_get(base_disp + (repetitions + i) * size, t_base)
        for i in range(repetitions)
    ]
    t_ov = float(np.median(ov))
    win.unlock_all()
    return OverlapPoint(access, size, t_base, t_ov)


def measure_overlap(access: str, size: int, repetitions: int = 9) -> OverlapPoint:
    """Overlap fraction of one (access type, size) point."""
    mpi = SimMPI(nprocs=2, perf=PerfModel.spread(2))
    results = mpi.run(_overlap_program, access, size, repetitions)
    return results[0]


def measure_overlap_curve(
    access: str, sizes: list[int], repetitions: int = 9
) -> list[OverlapPoint]:
    """Fig. 8 series: overlap fraction as function of data size."""
    return [measure_overlap(access, s, repetitions) for s in sizes]
