"""Ablation studies of CLaMPI's design choices.

The paper motivates several design decisions without dedicated plots; these
ablations make each one measurable on the simulated substrate:

* **A1 — cuckoo hash functions (p)**: Sec. III-C1 picks p=4 ("up to 97%
  space utilization").  Sweep p and measure conflicting accesses.
* **A2 — victim sample size (M)**: Sec. III-D selects victims from an
  M-entry sample (M=16 in the paper's experiments).  Sweep M: larger
  samples pick better victims but cost more visits per eviction.
* **A3 — weak caching (bounded evictions)**: Sec. III-D2 argues for
  evicting a constant number of entries per miss instead of evicting until
  the new entry fits.  Sweep the eviction budget.
* **A4 — best-fit allocation**: Sec. III-C2 serves allocations best-fit
  from the AVL tree.  Compare against first-fit.
* **A5 — block size of the native baseline**: Fig. 3's argument — fixed
  blocks either fragment internally (big blocks) or multiply requests
  (small blocks).  Sweep the block size on the LCC workload.
"""

from __future__ import annotations

from repro import clampi
from repro.apps import LCCApp
from repro.apps.cachespec import CacheSpec
from repro.bench.micro import make_micro_workload, run_micro
from repro.bench.reporting import FigureResult
from repro.util import format_bytes


def ablation_cuckoo_hashes(
    n_distinct: int = 800, z: int = 8000, ps: list[int] | None = None
) -> FigureResult:
    """A1: number of cuckoo hash functions vs conflicting accesses."""
    ps = ps or [2, 3, 4, 8]
    wl = make_micro_workload(n_distinct=n_distinct, z=z, seed=3)
    # index sized right at the working set: utilisation is what p buys
    index_entries = n_distinct
    fig = FigureResult(
        "Ablation A1",
        f"cuckoo hash functions p vs conflicts (|I_w|={index_entries}, Z={z})",
        ["p", "conflicting", "conflict ratio", "hit ratio", "completion (ms)"],
    )
    conflicts = {}
    completion = {}
    for p in ps:
        spec = CacheSpec.clampi_fixed(
            index_entries, 4 * wl.window_bytes, num_hashes=p
        )
        res = run_micro(wl, spec)
        s = res.stats
        conflicts[p] = s["conflicting"]
        completion[p] = res.completion_time
        hits = s["hit_full"] + s["hit_pending"] + s["hit_partial"]
        fig.rows.append(
            [
                p,
                s["conflicting"],
                round(s["conflicting"] / s["gets"], 4),
                round(hits / s["gets"], 3),
                round(res.completion_time * 1e3, 3),
            ]
        )
    fig.add_claim(
        "p=4 (the paper's choice) suffers far fewer conflicts than p=2",
        conflicts[4] < 0.5 * max(conflicts[2], 1),
    )
    fig.add_claim(
        "returns diminish beyond p=4: completion improves < 5% going to p=8",
        completion[8] > 0.95 * completion[4],
    )
    return fig


def ablation_sample_size(
    n_distinct: int = 800, z: int = 10_000, ms: list[int] | None = None
) -> FigureResult:
    """A2: victim sample size M vs hit quality and eviction cost."""
    ms = ms or [1, 4, 16, 64]
    wl = make_micro_workload(n_distinct=n_distinct, z=z, seed=3)
    storage = wl.window_bytes // 3  # force capacity evictions
    fig = FigureResult(
        "Ablation A2",
        f"victim sample size M (|S_w|={format_bytes(storage)}, Z={z})",
        ["M", "hits", "visited/evict", "completion (ms)"],
    )
    hits = {}
    for m in ms:
        spec = CacheSpec.clampi_fixed(
            2 * n_distinct, storage, sample_size=m
        )
        res = run_micro(wl, spec)
        s = res.stats
        hits[m] = s["hit_full"] + s["hit_pending"] + s["hit_partial"]
        ev = max(s["capacity_evictions"], 1)
        fig.rows.append(
            [
                m,
                hits[m],
                round(s["eviction_visited"] / ev, 1),
                round(res.completion_time * 1e3, 3),
            ]
        )
    fig.add_claim(
        "larger samples do not hurt hit quality (M=16 >= M=1 - 3%)",
        hits[16] >= hits[1] - int(0.03 * z),
    )
    fig.add_claim(
        "eviction cost grows with M (visited entries increase)",
        fig.rows[-1][2] > fig.rows[0][2],
    )
    return fig


def ablation_weak_caching(
    n_distinct: int = 800, z: int = 10_000, budgets: list[int] | None = None
) -> FigureResult:
    """A3: eviction budget per miss (weak caching, Sec. III-D2)."""
    budgets = budgets if budgets is not None else [0, 1, 4, 16]
    wl = make_micro_workload(n_distinct=n_distinct, z=z, seed=3)
    storage = wl.window_bytes // 3
    fig = FigureResult(
        "Ablation A3",
        f"capacity-eviction budget per miss (|S_w|={format_bytes(storage)})",
        ["budget", "hits", "failing", "evictions", "completion (ms)"],
    )
    data = {}
    for b in budgets:
        spec = CacheSpec.clampi_fixed(
            2 * n_distinct, storage, max_capacity_evictions=b
        )
        res = run_micro(wl, spec)
        s = res.stats
        data[b] = s
        hits = s["hit_full"] + s["hit_pending"] + s["hit_partial"]
        fig.rows.append(
            [
                b,
                hits,
                s["failing"],
                s["evictions"],
                round(res.completion_time * 1e3, 3),
            ]
        )

    def hit_count(b):
        s = data[b]
        return s["hit_full"] + s["hit_pending"] + s["hit_partial"]

    fig.add_claim(
        "no evictions at all (budget 0) loses hits once the buffer fills",
        hit_count(0) < hit_count(1),
    )
    fig.add_claim(
        "one eviction per miss (the paper's weak caching) already captures "
        "most of the benefit of a large budget",
        hit_count(1) >= 0.9 * hit_count(16),
    )
    return fig


def ablation_allocator_fit(
    n_distinct: int = 800, z: int = 10_000
) -> FigureResult:
    """A4: best-fit (paper) vs first-fit allocation."""
    wl = make_micro_workload(n_distinct=n_distinct, z=z, seed=3)
    storage = wl.window_bytes // 3
    fig = FigureResult(
        "Ablation A4",
        f"allocation policy (|S_w|={format_bytes(storage)}, Z={z})",
        ["policy", "hits", "failing", "mean occupancy", "completion (ms)"],
    )
    stats = {}
    for fit in ("best", "first"):
        spec = CacheSpec.clampi_fixed(
            2 * n_distinct, storage, allocator_fit=fit
        )
        res = run_micro(wl, spec, record_occupancy=True)
        s = res.stats
        hits = s["hit_full"] + s["hit_pending"] + s["hit_partial"]
        occ = float(res.occupancy[z // 4 :].mean())
        stats[fit] = (hits, s["failing"], occ, res.completion_time)
        fig.rows.append(
            [fit, hits, s["failing"], round(occ, 3), round(res.completion_time * 1e3, 3)]
        )
    fig.add_claim(
        "best fit sustains at least the occupancy of first fit",
        stats["best"][2] >= stats["first"][2] - 0.02,
    )
    fig.add_claim(
        "best fit serves at least as many hits",
        stats["best"][0] >= 0.97 * stats["first"][0],
    )
    return fig


def ablation_native_block_size(
    scale: int = 10,
    nprocs: int = 8,
    block_sizes: list[int] | None = None,
) -> FigureResult:
    """A5: the native cache's block size on the LCC workload (Fig. 3 story)."""
    block_sizes = block_sizes or [128, 512, 2048, 8192]
    app = LCCApp(scale=scale, edge_factor=16, seed=4)
    memory = app.csr.nedges * 8 // 4  # fixed budget, 25% of the adjacency
    fig = FigureResult(
        "Ablation A5",
        f"native block size under a fixed {format_bytes(memory)} budget "
        f"(LCC 2^{scale}, P={nprocs})",
        ["block size", "vertex time (us)", "bytes fetched", "block hit ratio"],
    )
    fetched = {}
    times = {}
    for bs in block_sizes:
        run = app.run(nprocs, CacheSpec.native(memory_bytes=memory, block_size=bs))
        st = run.merged_stats()
        fetched[bs] = st["bytes_fetched"]
        times[bs] = run.vertex_time
        ratio = st["block_hits"] / max(st["block_hits"] + st["block_misses"], 1)
        fig.rows.append(
            [
                format_bytes(bs),
                round(run.vertex_time * 1e6, 2),
                format_bytes(int(st["bytes_fetched"])),
                round(ratio, 3),
            ]
        )
    fig.add_claim(
        "big blocks move more bytes than small blocks (internal fragmentation)",
        fetched[block_sizes[-1]] > fetched[block_sizes[0]],
    )
    fig.add_claim(
        "no block size wins everywhere: the best block size is in the "
        "interior or the extremes differ by >= 20% (the variable-size "
        "motivation of Fig. 3)",
        (min(times, key=times.get) not in (block_sizes[0], block_sizes[-1]))
        or abs(times[block_sizes[0]] - times[block_sizes[-1]])
        > 0.2 * min(times.values()),
    )
    return fig


ALL_ABLATIONS = {
    "a1_cuckoo_hashes": ablation_cuckoo_hashes,
    "a2_sample_size": ablation_sample_size,
    "a3_weak_caching": ablation_weak_caching,
    "a4_allocator_fit": ablation_allocator_fit,
    "a5_native_block_size": ablation_native_block_size,
}
