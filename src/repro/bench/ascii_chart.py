"""Terminal (ASCII) charts for benchmark figures.

The paper's evaluation is all line charts and histograms; this module
renders the reproduced series directly in the terminal so
``python -m repro.bench --chart`` gives a visual impression without any
plotting dependency.

* :func:`line_chart` — multi-series scatter/line plot on a character grid,
  with optional log-scaled axes (most paper figures are log-x).
* :func:`bar_chart` — horizontal bars (for the histogram figures 2/3 and
  the stats breakdowns).
* :func:`sparkline` — a one-line trend (used in notes).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

_MARKERS = "*+ox#@%&"
_BLOCKS = " ▁▂▃▄▅▆▇█"


def _scale(value: float, lo: float, hi: float, steps: int, log: bool) -> int:
    """Map ``value`` in [lo, hi] to a cell index in [0, steps-1]."""
    if log:
        value, lo, hi = (math.log10(max(v, 1e-300)) for v in (value, lo, hi))
    if hi <= lo:
        return 0
    t = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(round(t * (steps - 1)))))


def _fmt_tick(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.1e}"
    return f"{v:.3g}"


def line_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series on one character grid.

    Each series gets a distinct marker; collisions show the later series.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(ys), max(ys)
    if logy:
        ylo = max(ylo, min((y for y in ys if y > 0), default=1e-12))
    if logx:
        xlo = max(xlo, min((x for x in xs if x > 0), default=1e-12))

    grid = [[" "] * width for _ in range(height)]
    for i, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        for x, y in pts:
            col = _scale(x, xlo, xhi, width, logx)
            row = height - 1 - _scale(y, ylo, yhi, height, logy)
            grid[row][col] = marker

    out: list[str] = []
    if title:
        out.append(title)
    ytop, ybot = _fmt_tick(yhi), _fmt_tick(ylo)
    pad = max(len(ytop), len(ybot))
    for r, row in enumerate(grid):
        label = ytop if r == 0 else (ybot if r == height - 1 else "")
        out.append(f"{label:>{pad}} |" + "".join(row))
    out.append(" " * pad + " +" + "-" * width)
    xleft, xright = _fmt_tick(xlo), _fmt_tick(xhi)
    gap = max(1, width - len(xleft) - len(xright))
    out.append(" " * (pad + 2) + xleft + " " * gap + xright)
    axes = []
    if xlabel:
        axes.append(f"x: {xlabel}" + (" (log)" if logx else ""))
    if ylabel:
        axes.append(f"y: {ylabel}" + (" (log)" if logy else ""))
    if axes:
        out.append(" " * (pad + 2) + "   ".join(axes))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    out.append(" " * (pad + 2) + legend)
    return "\n".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: str = "",
) -> str:
    """Horizontal bar chart with value annotations."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not labels:
        return "(no data)"
    vmax = max(max(values), 1e-300)
    lpad = max(len(str(l)) for l in labels)
    out = [title] if title else []
    for label, value in zip(labels, values):
        n = int(round(width * value / vmax)) if value > 0 else 0
        out.append(f"{str(label):>{lpad}} |{'█' * n}{'' if n else ''} {_fmt_tick(value)}")
    return "\n".join(out)


def sparkline(values: Iterable[float]) -> str:
    """One-line block-character trend of a numeric sequence."""
    vals = list(values)
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _BLOCKS[4] * len(vals)
    return "".join(
        _BLOCKS[1 + _scale(v, lo, hi, len(_BLOCKS) - 1, False)] for v in vals
    )
