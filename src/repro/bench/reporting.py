"""ASCII reporting for benchmark results.

Every figure-reproduction returns a :class:`FigureResult`; the pytest
benchmarks print it and EXPERIMENTS.md embeds it, so the numbers the repo
documents are exactly the numbers the harness produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a monospaced table with aligned columns."""
    cells = [[_fmt(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


@dataclass
class FigureResult:
    """The reproduction of one paper figure."""

    figure: str                    #: e.g. "Fig. 7"
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: free-form checks of the paper's qualitative claims: (claim, holds)
    claims: list[tuple[str, bool]] = field(default_factory=list)

    def add_claim(self, claim: str, holds: bool) -> None:
        self.claims.append((claim, holds))

    @property
    def all_claims_hold(self) -> bool:
        return all(ok for _claim, ok in self.claims)

    def render(self) -> str:
        out = [f"== {self.figure}: {self.title} ==", ""]
        out.append(format_table(self.headers, self.rows))
        if self.notes:
            out.append("")
            out.extend(f"note: {n}" for n in self.notes)
        if self.claims:
            out.append("")
            for claim, ok in self.claims:
                out.append(f"[{'OK' if ok else 'MISMATCH'}] {claim}")
        return "\n".join(out)

    def chart(self, width: int = 64, height: int = 14) -> str:
        """Best-effort terminal chart of the table.

        Numeric first column → multi-series line chart (one series per
        numeric column, x log-scaled when it spans >= 2 decades);
        categorical first column → one bar chart per numeric column.
        """
        from repro.bench.ascii_chart import bar_chart, line_chart

        if not self.rows:
            return "(no data)"

        def _num(v):
            try:
                return float(v)
            except (TypeError, ValueError):
                return None

        first = [_num(r[0]) for r in self.rows]
        numeric_cols = [
            c
            for c in range(1, len(self.headers))
            if all(_num(r[c]) is not None for r in self.rows)
        ]
        if not numeric_cols:
            return "(nothing numeric to chart)"
        if all(v is not None for v in first):
            series = {
                self.headers[c]: [(_num(r[0]), _num(r[c])) for r in self.rows]
                for c in numeric_cols
            }
            xs = [v for v in first if v and v > 0]
            logx = bool(xs) and len(xs) == len(first) and max(xs) / min(xs) >= 100
            return line_chart(
                series,
                width=width,
                height=height,
                logx=logx,
                title=f"{self.figure}: {self.title}",
                xlabel=self.headers[0],
            )
        charts = []
        labels = [str(r[0]) for r in self.rows]
        for c in numeric_cols:
            charts.append(
                bar_chart(
                    labels,
                    [_num(r[c]) for r in self.rows],
                    width=width // 2,
                    title=f"{self.figure}: {self.headers[c]}",
                )
            )
        return "\n\n".join(charts)

    def to_json(self) -> str:
        """Machine-readable record of the reproduction (for archiving/CI)."""
        import json

        return json.dumps(
            {
                "figure": self.figure,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
                "claims": [
                    {"claim": claim, "holds": ok} for claim, ok in self.claims
                ],
                "all_claims_hold": self.all_claims_hold,
            },
            indent=2,
            default=str,
        )

    def markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        out = [f"### {self.figure}: {self.title}", ""]
        out.append("| " + " | ".join(self.headers) + " |")
        out.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            out.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        if self.notes:
            out.append("")
            out.extend(f"- {n}" for n in self.notes)
        if self.claims:
            out.append("")
            for claim, ok in self.claims:
                out.append(f"- **{'HOLDS' if ok else 'MISMATCH'}**: {claim}")
        out.append("")
        return "\n".join(out)
