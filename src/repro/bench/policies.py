"""Policy-matrix benchmark: ``python -m repro.bench policies``.

Runs every registered eviction/admission policy (``repro.core.policy``)
over three workloads with deliberately tight cache sizing — so the
victim/admission decisions, not the cache capacity, dominate the hit
rate — and emits one hit-rate + virtual-time table per workload:

* ``fig02-reuse`` — the Barnes-Hut get trace of Fig. 2 (recorded once
  from an uncached run) replayed through a two-rank cached window: the
  paper's headline reuse pattern, isolated from computation;
* ``lcc`` — the LCC application on a small R-MAT graph (variable get
  sizes, scale-free hub reuse);
* ``bh`` — the Barnes-Hut force phase itself (USER_DEFINED epochs).

The artifact (``BENCH_PR6.json``) records wall/virtual seconds and the
hit rate per (workload, policy).  CI replays it in ``--quick`` mode
against the committed baseline: total wall-clock must stay within the
allowed factor, and the **default policy's virtual times must not drift
at all** — the pluggable-policy engine is required to leave the paper's
figures bit-identical.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.apps import BarnesHutApp, LCCApp
from repro.apps.cachespec import CacheSpec
from repro.core.policy import DEFAULT_POLICY, available_policies
from repro.mpi.simmpi import MPIProcess, SimMPI
from repro.net import PerfModel
from repro.trace import GetRecord
from repro.util import KiB, align_up

#: Wall-clock regression factor CI tolerates over the committed baseline.
DEFAULT_MAX_REGRESSION = 2.0

#: Fraction of the distinct working set the replay cache can hold —
#: small enough that eviction/admission quality decides the hit rate
#: (at this sizing the frequency-aware policies clearly separate from
#: the recency-only ones on the skewed Fig. 2 reuse pattern).
REPLAY_STORAGE_FRACTION = 0.25
REPLAY_INDEX_ENTRIES = 256


# ---------------------------------------------------------------------------
# fig02-reuse: record the BH trace once, replay it per policy
# ---------------------------------------------------------------------------
def record_bh_trace(nbodies: int, nprocs: int = 4) -> list[GetRecord]:
    """The Fig. 2 get trace: every remote get of an uncached BH run."""
    app = BarnesHutApp(nbodies=nbodies, seed=11)
    run = app.run(nprocs, CacheSpec.fompi(), trace=True)
    return [r for t in run.traces for r in t.records]


def _flatten_trace(
    records: list[GetRecord],
) -> tuple[list[tuple[int, int]], int]:
    """Map (trg, dsp) identities onto one target rank's address space.

    Each source rank gets a disjoint, aligned base offset so distinct
    (trg, dsp) keys stay distinct after the collapse onto rank 1.
    Returns ``[(dsp, size), ...]`` plus the window size that fits them.
    """
    span: dict[int, int] = {}
    for r in records:
        span[r.trg] = max(span.get(r.trg, 0), r.dsp + r.size)
    base: dict[int, int] = {}
    offset = 0
    for trg in sorted(span):
        base[trg] = offset
        offset += align_up(span[trg])
    return [(base[r.trg] + r.dsp, r.size) for r in records], max(offset, 1)


def _replay_program(
    mpi: MPIProcess,
    gets: list[tuple[int, int]],
    window_bytes: int,
    spec: CacheSpec,
):
    local = np.zeros(window_bytes, dtype=np.uint8)
    if mpi.rank == 1:
        local[:] = (np.arange(window_bytes) % 251).astype(np.uint8)
    win = spec.make_window(mpi.comm_world, local)
    mpi.comm_world.barrier()
    if mpi.rank == 1:
        return None
    bufs = {s: np.empty(s, np.uint8) for _, s in gets}
    with win.lock_all_epoch():
        for dsp, size in gets:
            buf = bufs[size]
            win.get(buf, 1, dsp)
            win.flush(1)
            expected = (np.arange(dsp, dsp + size) % 251).astype(np.uint8)
            if not np.array_equal(buf, expected):
                raise AssertionError(
                    f"replay returned wrong data at dsp={dsp}"
                )
    return win.stats.snapshot()


def replay_trace(records: list[GetRecord], policy: str) -> dict[str, Any]:
    """Replay the trace through a tight two-rank cache under ``policy``."""
    gets, window_bytes = _flatten_trace(records)
    distinct_bytes = sum(
        size for (dsp, size) in dict.fromkeys(gets)  # first occurrence per key
    )
    spec = CacheSpec.clampi_fixed(
        REPLAY_INDEX_ENTRIES,
        max(int(distinct_bytes * REPLAY_STORAGE_FRACTION), 2 * KiB),
        policy=policy,
    )
    mpi = SimMPI(nprocs=2, perf=PerfModel.spread(2))
    results = mpi.run(_replay_program, gets, window_bytes, spec)
    return results[0]


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------
def _hit_rate(stats: dict[str, Any]) -> float:
    gets = stats.get("gets", 0)
    hits = (
        stats.get("hit_full", 0)
        + stats.get("hit_partial", 0)
        + stats.get("hit_pending", 0)
    )
    return hits / gets if gets else 0.0


def run_policy_matrix(quick: bool = False) -> dict[str, Any]:
    """Run every registered policy over the three workloads.

    Returns the artifact dict: per (workload, policy) wall seconds,
    virtual seconds, hit rate and admission rejects.
    """
    nbodies = 150 if quick else 400
    lcc_scale = 7 if quick else 8
    policies = available_policies()

    bh_trace = record_bh_trace(nbodies)
    lcc_app = LCCApp(scale=lcc_scale, edge_factor=8, seed=5)
    bh_app = BarnesHutApp(nbodies=nbodies, seed=11)
    # Tight app-run caches: a fraction of what the generous figure specs
    # use, so policy quality shows up as hit-rate spread.
    lcc_spec_of = lambda pol: CacheSpec.clampi_fixed(  # noqa: E731
        1 << 7, lcc_app.csr.nedges * 2, policy=pol
    )
    bh_spec_of = lambda pol: CacheSpec.clampi_fixed(  # noqa: E731
        1 << 7, max(nbodies * 48, 2 * KiB), policy=pol
    )

    workloads: dict[str, dict[str, dict[str, float]]] = {}

    def note(workload: str, policy: str, stats: dict, wall: float, virt: float):
        workloads.setdefault(workload, {})[policy] = {
            "wall_s": round(wall, 4),
            "virtual_s": virt,
            "hit_rate": round(_hit_rate(stats), 6),
            "admission_rejects": int(stats.get("admission_rejects", 0)),
        }

    for pol in policies:
        v0, t0 = obs.virtual_time.total, time.perf_counter()
        stats = replay_trace(bh_trace, pol)
        note(
            "fig02-reuse", pol, stats,
            time.perf_counter() - t0, obs.virtual_time.total - v0,
        )

        v0, t0 = obs.virtual_time.total, time.perf_counter()
        run = lcc_app.run(4, lcc_spec_of(pol))
        note(
            "lcc", pol, run.merged_stats(),
            time.perf_counter() - t0, obs.virtual_time.total - v0,
        )

        v0, t0 = obs.virtual_time.total, time.perf_counter()
        run = bh_app.run(4, bh_spec_of(pol))
        note(
            "bh", pol, run.merged_stats(),
            time.perf_counter() - t0, obs.virtual_time.total - v0,
        )

    total = round(
        sum(e["wall_s"] for w in workloads.values() for e in w.values()), 4
    )
    return {
        "quick": quick,
        "default_policy": DEFAULT_POLICY,
        "workloads": workloads,
        "total_wall_s": total,
    }


def render_tables(result: dict[str, Any]) -> str:
    """Per-workload hit-rate + virtual-time tables (terminal-friendly)."""
    lines: list[str] = []
    for workload, per_policy in result["workloads"].items():
        lines.append(f"== {workload} ==")
        lines.append(
            f"{'policy':16s} {'hit rate':>10s} {'virtual s':>14s} "
            f"{'wall s':>8s} {'adm.rej':>8s}"
        )
        best = max(per_policy, key=lambda p: per_policy[p]["hit_rate"])
        for pol, e in sorted(per_policy.items()):
            mark = " *" if pol == best else ""
            lines.append(
                f"{pol:16s} {e['hit_rate']:10.4f} {e['virtual_s']:14.6e} "
                f"{e['wall_s']:8.3f} {e['admission_rejects']:8d}{mark}"
            )
        lines.append("")
    lines.append(f"total wall: {result['total_wall_s']:.3f}s")
    return "\n".join(lines)


def check_regression(
    result: dict[str, Any],
    baseline_path: Path,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> list[str]:
    """Compare against a committed baseline; returns failure messages.

    Wall-clock may grow up to ``max_regression`` times the baseline
    total; the *default* policy's virtual times must match the baseline
    exactly (the policy engine must not perturb the paper's figures).
    """
    baseline = json.loads(baseline_path.read_text())
    problems: list[str] = []
    if baseline.get("quick") != result.get("quick"):
        return [
            "baseline was generated at a different scale "
            f"(quick={baseline.get('quick')!r} vs {result.get('quick')!r})"
        ]
    base_total = baseline.get("total_wall_s")
    if base_total and result["total_wall_s"] > max_regression * base_total:
        problems.append(
            f"total wall-clock {result['total_wall_s']:.2f}s exceeds "
            f"{max_regression:.1f}x the baseline {base_total:.2f}s"
        )
    default = result.get("default_policy", DEFAULT_POLICY)
    for workload, per_policy in result["workloads"].items():
        entry = per_policy.get(default)
        base = baseline.get("workloads", {}).get(workload, {}).get(default)
        if entry is None or base is None:
            continue
        if entry["virtual_s"] != base["virtual_s"]:
            problems.append(
                f"{workload}/{default}: virtual time drifted from the "
                f"baseline ({entry['virtual_s']!r} != {base['virtual_s']!r}); "
                "the default policy must keep figures bit-identical"
            )
        if entry["hit_rate"] != base["hit_rate"]:
            problems.append(
                f"{workload}/{default}: hit rate drifted from the baseline "
                f"({entry['hit_rate']!r} != {base['hit_rate']!r})"
            )
    return problems


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench policies",
        description="policy-matrix benchmark; writes a JSON artifact",
    )
    parser.add_argument(
        "--out", default="BENCH_PR6.json", help="artifact path to write"
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced scale for CI"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON to compare against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="fail if total wall-clock exceeds this factor over the baseline",
    )
    args = parser.parse_args(argv)

    result = run_policy_matrix(quick=args.quick)
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(render_tables(result))
    print(f"-> {args.out}")

    if args.baseline:
        problems = check_regression(
            result, Path(args.baseline), args.max_regression
        )
        if problems:
            for p in problems:
                print(f"POLICIES FAIL: {p}")
            return 1
        print(f"within {args.max_regression:.1f}x of baseline {args.baseline}")
    return 0
