"""Regenerate every paper figure: ``python -m repro.bench [figNN|aN_* ...]``.

With no arguments all paper figures run in order and the rendered tables
are printed; pass figure ids (e.g. ``fig07 fig12``) or ablation ids (e.g.
``a1_cuckoo_hashes``) to run a subset, or ``ablations`` for all ablations.
Use ``--markdown`` to emit the EXPERIMENTS.md-style blocks instead.

``python -m repro.bench perfsmoke`` runs the perf smoke subset instead
(see :mod:`repro.bench.perfsmoke`): wall/virtual times to a JSON artifact,
optionally checked against a committed baseline.

``python -m repro.bench policies`` runs the eviction/admission
policy-matrix benchmark (see :mod:`repro.bench.policies`): every
registered policy over the fig02-reuse, LCC and Barnes-Hut workloads,
hit-rate + virtual-time tables to a JSON artifact.

``python -m repro.bench profile`` aggregates per-rank-thread cProfile
stats for figure workloads (see :mod:`repro.bench.profile`): top-N
functions by tottime, optionally dumped to a JSON artifact — the hot-path
costing tool behind ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.bench.ablations import ALL_ABLATIONS
from repro.bench.figures import ALL_FIGURES
from repro.util import format_time

_ALL = {**ALL_FIGURES, **ALL_ABLATIONS}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "perfsmoke":
        from repro.bench.perfsmoke import main as perfsmoke_main

        return perfsmoke_main(argv[1:])
    if argv and argv[0] == "policies":
        from repro.bench.policies import main as policies_main

        return policies_main(argv[1:])
    if argv and argv[0] == "profile":
        from repro.bench.profile import main as profile_main

        return profile_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "figures", nargs="*", help="figure/ablation ids, e.g. fig07 a3_weak_caching"
    )
    parser.add_argument("--markdown", action="store_true", help="markdown output")
    parser.add_argument(
        "--chart", action="store_true", help="also render terminal charts"
    )
    parser.add_argument(
        "--json-dir",
        default=None,
        help="also write one <fig>.json artifact per figure into this directory",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run figures at the paper's original sizes (hours of wall time)",
    )
    args = parser.parse_args(argv)

    selected = args.figures or list(ALL_FIGURES)
    if selected == ["ablations"]:
        selected = list(ALL_ABLATIONS)
    unknown = [f for f in selected if f not in _ALL]
    if unknown:
        parser.error(f"unknown figures: {unknown}; available: {list(_ALL)}")

    failed = []
    for name in selected:
        kwargs = {}
        if args.paper_scale:
            from repro.bench.figures import PAPER_SCALE_KWARGS

            kwargs = PAPER_SCALE_KWARGS.get(name, {})
        # Wall time is how long *this host* took; virtual time is how much
        # simulated time the runs covered (from the obs ledger, which the
        # runtime notes after every completed SimWorld run).  They answer
        # different questions, so both are reported, labelled.
        v0 = obs.virtual_time.total
        t0 = time.time()
        fig = _ALL[name](**kwargs)
        wall = time.time() - t0
        virt = obs.virtual_time.total - v0
        print(fig.markdown() if args.markdown else fig.render())
        if args.chart:
            print()
            print(fig.chart())
        if args.json_dir:
            import pathlib

            out = pathlib.Path(args.json_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{name}.json").write_text(fig.to_json())
        print(
            f"(generated in {wall:.1f}s wall time; simulated "
            f"{format_time(virt)} of virtual time)\n",
            file=sys.stderr,
        )
        if not fig.all_claims_hold:
            failed.append(name)
    if failed:
        print(f"claims failed in: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
