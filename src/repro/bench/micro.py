"""The Sec. IV-A micro-benchmark workload and classifying runner.

Workload construction, verbatim from the paper:

1. a set of ``N = 1K`` gets targeting *different* data, each with a size
   drawn uniformly from ``{2^i | i = 0..16}`` bytes;
2. a sequence of ``Z >= N`` gets sampled from that set with a normal
   distribution ``N(N/2, N/4)`` — "a sequence in which a subset of gets is
   more frequent than the others".

The runner executes the sequence between two ranks (initiator/target on
different nodes), measures each get's blocking latency in virtual time and
classifies it by access type from the cache's counter deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.cachespec import CacheSpec
from repro.mpi.simmpi import MPIProcess, SimMPI
from repro.net import PerfModel
from repro.util import align_up

@dataclass(frozen=True)
class MicroWorkload:
    """N distinct gets + a Z-long sampled access sequence."""

    sizes: np.ndarray          #: (N,) payload size of each distinct get
    displacements: np.ndarray  #: (N,) target displacement of each get
    sequence: np.ndarray       #: (Z,) indices into the distinct-get set
    window_bytes: int          #: target window size that fits all gets

    @property
    def n_distinct(self) -> int:
        return int(self.sizes.size)

    @property
    def length(self) -> int:
        return int(self.sequence.size)


def make_micro_workload(
    n_distinct: int = 1000,
    z: int = 20_000,
    seed: int = 7,
    max_exp: int = 16,
    distribution: str = "normal",
    zipf_s: float = 1.2,
) -> MicroWorkload:
    """Build the paper's micro-benchmark sequence.

    ``distribution`` controls how the Z accesses sample the distinct-get
    set:

    * ``"normal"`` — the paper's N(N/2, N/4) ("a subset of gets is more
      frequent than the others");
    * ``"uniform"`` — no skew, the adversarial case for any cache;
    * ``"zipf"`` — power-law skew with exponent ``zipf_s``, the shape of
      hub reuse in scale-free graph workloads.
    """
    if z < n_distinct:
        raise ValueError("Z must be >= N")
    rng = np.random.default_rng(seed)
    exps = rng.integers(0, max_exp + 1, size=n_distinct)
    sizes = (2**exps).astype(np.int64)
    # Distinct gets target disjoint, cache-line-separated regions.
    aligned = np.array([align_up(int(s)) for s in sizes], dtype=np.int64)
    displacements = np.concatenate([[0], np.cumsum(aligned)[:-1]])
    window_bytes = int(aligned.sum())
    if distribution == "normal":
        seq = rng.normal(n_distinct / 2.0, n_distinct / 4.0, size=z)
        sequence = np.clip(np.rint(seq), 0, n_distinct - 1).astype(np.int64)
    elif distribution == "uniform":
        sequence = rng.integers(0, n_distinct, size=z)
    elif distribution == "zipf":
        ranks = rng.zipf(zipf_s, size=z)
        # map the unbounded Zipf ranks onto the distinct-get ids, shuffled
        # so popularity does not correlate with displacement
        perm = rng.permutation(n_distinct)
        sequence = perm[np.minimum(ranks - 1, n_distinct - 1)]
    else:
        raise ValueError(f"unknown distribution: {distribution}")
    return MicroWorkload(sizes, displacements, sequence.astype(np.int64), window_bytes)


@dataclass
class MicroRunResult:
    """Per-get classified measurements of one micro-benchmark run."""

    completion_time: float                 #: initiator virtual time for the run
    access_types: list[str] = field(default_factory=list)  #: per sequence slot
    latencies: np.ndarray = field(default_factory=lambda: np.empty(0))
    sizes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    stats: dict = field(default_factory=dict)
    final_index_entries: int = 0
    final_storage_bytes: int = 0
    occupancy: np.ndarray | None = None    #: storage occupancy per get (optional)

    def median_latency(self, access: str, size: int | None = None) -> float | None:
        """Median latency of one access type (optionally one size)."""
        sel = [
            lat
            for lat, a, s in zip(self.latencies, self.access_types, self.sizes)
            if a == access and (size is None or s == size)
        ]
        if not sel:
            return None
        return float(np.median(sel))

    def count(self, access: str) -> int:
        return sum(1 for a in self.access_types if a == access)


def run_micro(
    workload: MicroWorkload,
    spec: CacheSpec,
    record_occupancy: bool = False,
) -> MicroRunResult:
    """Run the sequence initiator→target and classify every access."""
    mpi = SimMPI(nprocs=2, perf=PerfModel.spread(2))
    results = mpi.run(_micro_program, workload, spec, record_occupancy)
    return results[0]


def _micro_program(
    mpi: MPIProcess,
    wl: MicroWorkload,
    spec: CacheSpec,
    record_occupancy: bool,
):
    from repro import clampi  # local import to avoid cycles

    local = np.zeros(wl.window_bytes, dtype=np.uint8)
    if mpi.rank == 1:
        local[:] = (np.arange(wl.window_bytes) % 251).astype(np.uint8)
    win = spec.make_window(mpi.comm_world, local)
    mpi.comm_world.barrier()
    if mpi.rank == 1:
        return None

    cached = isinstance(win, clampi.CachedWindow)
    result = MicroRunResult(completion_time=0.0)
    latencies = np.zeros(wl.length)
    sizes = np.zeros(wl.length, dtype=np.int64)
    occupancy = np.zeros(wl.length) if record_occupancy else None
    bufs = {int(s): np.empty(int(s), np.uint8) for s in set(wl.sizes.tolist())}

    win.lock_all()
    t_start = mpi.time
    for i, idx in enumerate(wl.sequence):
        size = int(wl.sizes[idx])
        dsp = int(wl.displacements[idx])
        buf = bufs[size]
        t0 = mpi.time
        win.get(buf, 1, dsp)
        win.flush(1)
        latencies[i] = mpi.time - t0
        sizes[i] = size
        if cached:
            access = win.stats.last_access
            result.access_types.append(access.value if access else "unknown")
            if occupancy is not None:
                occupancy[i] = win.storage.used_bytes / win.storage.capacity
        else:
            result.access_types.append("uncached")
    result.completion_time = mpi.time - t_start
    win.unlock_all()

    result.latencies = latencies
    result.sizes = sizes
    result.occupancy = occupancy
    if cached:
        result.stats = win.stats.snapshot()
        result.final_index_entries = win.index_entries
        result.final_storage_bytes = win.storage_bytes
    return result
