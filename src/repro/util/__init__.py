"""Shared utilities: statistics, alignment helpers and unit constants.

These helpers are deliberately dependency-light; everything in
:mod:`repro` builds on top of them.
"""

from repro.util.stats import (
    RunStats,
    confidence_interval_median,
    median,
    repeat_until_confident,
)
from repro.util.units import (
    CACHE_LINE,
    GiB,
    KiB,
    MiB,
    align_up,
    format_bytes,
    format_time,
)

__all__ = [
    "CACHE_LINE",
    "GiB",
    "KiB",
    "MiB",
    "RunStats",
    "align_up",
    "confidence_interval_median",
    "format_bytes",
    "format_time",
    "median",
    "repeat_until_confident",
]
