"""Byte/time unit constants and alignment arithmetic.

The storage layer (:mod:`repro.core.storage`) aligns every allocation to the
CPU cache-line size, mirroring the paper's Sec. III-C2 ("We allocate memory
regions of size as multiple of the CPU cache line size").
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Cache-line granularity used for storage allocations (bytes).
CACHE_LINE = 64


def align_up(nbytes: int, alignment: int = CACHE_LINE) -> int:
    """Round ``nbytes`` up to the next multiple of ``alignment``.

    >>> align_up(1)
    64
    >>> align_up(64)
    64
    >>> align_up(65)
    128
    >>> align_up(0)
    0
    """
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    if alignment <= 0:
        raise ValueError(f"non-positive alignment: {alignment}")
    return ((nbytes + alignment - 1) // alignment) * alignment


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (``4.0 KiB``, ``1.5 MiB`` ...)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Human-readable time (``1.23 us``, ``4.5 ms`` ...)."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
