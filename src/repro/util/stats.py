"""LibLSB-style robust statistics for benchmark reporting.

The paper (Sec. IV) reports medians with nonparametric 95% confidence
intervals and repeats each experiment until the CI is within 5% of the
median, following Hoefler & Belli, "Scientific Benchmarking of Parallel
Computing Systems" (SC'15).  This module implements the same machinery:

* :func:`median` — sample median.
* :func:`confidence_interval_median` — distribution-free CI on the median
  via binomial order statistics.
* :func:`repeat_until_confident` — run a measurement callable until the CI
  half-width falls below a relative tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence


def median(samples: Sequence[float]) -> float:
    """Return the sample median (average of middle pair for even n)."""
    if not samples:
        raise ValueError("median of empty sample")
    ordered = sorted(samples)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _z_for_confidence(confidence: float) -> float:
    """Normal quantile for a two-sided confidence level.

    Only a handful of levels are used by the harness; a small table keeps us
    independent of scipy at runtime.
    """
    table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    best = min(table, key=lambda lvl: abs(lvl - confidence))
    if abs(best - confidence) > 1e-9:
        # Fall back to an erf-based inversion via bisection.
        target = (1.0 + confidence) / 2.0
        lo, hi = 0.0, 10.0
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if 0.5 * (1.0 + math.erf(mid / math.sqrt(2.0))) < target:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0
    return table[best]


def confidence_interval_median(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Distribution-free CI for the median using order statistics.

    For n samples the interval is ``(x_(j), x_(k))`` with
    ``j = floor(n/2 - z*sqrt(n)/2)`` and ``k = ceil(n/2 + z*sqrt(n)/2)``
    (1-based ranks, clamped to the sample range).  Requires n >= 3.
    """
    n = len(samples)
    if n < 3:
        raise ValueError("need at least 3 samples for a median CI")
    ordered = sorted(samples)
    z = _z_for_confidence(confidence)
    half = z * math.sqrt(n) / 2.0
    j = int(math.floor(n / 2.0 - half))
    k = int(math.ceil(n / 2.0 + half))
    j = max(j, 0)
    k = min(k, n - 1)
    return float(ordered[j]), float(ordered[k])


@dataclass
class RunStats:
    """Aggregate of a repeated measurement."""

    samples: list[float] = field(default_factory=list)
    confidence: float = 0.95

    def add(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def median(self) -> float:
        return median(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("mean of empty sample")
        return sum(self.samples) / len(self.samples)

    @property
    def ci(self) -> tuple[float, float]:
        return confidence_interval_median(self.samples, self.confidence)

    def ci_within(self, rel_tol: float) -> bool:
        """True when the CI lies within ``rel_tol`` of the median."""
        if self.n < 3:
            return False
        med = self.median
        if med == 0.0:
            lo, hi = self.ci
            return lo == hi == 0.0
        lo, hi = self.ci
        return (med - lo) <= rel_tol * abs(med) and (hi - med) <= rel_tol * abs(med)

    def summary(self) -> str:
        med = self.median
        lo, hi = self.ci if self.n >= 3 else (med, med)
        return f"median={med:.6g} CI95=[{lo:.6g}, {hi:.6g}] n={self.n}"


def repeat_until_confident(
    measure: Callable[[], float],
    rel_tol: float = 0.05,
    min_repetitions: int = 5,
    max_repetitions: int = 200,
    confidence: float = 0.95,
) -> RunStats:
    """Repeat ``measure`` until the median CI is within ``rel_tol``.

    This mirrors the paper's methodology: "The number of repetitions per
    experiment is selected such that the 95% confidence interval is no
    larger than the 5% of the reported median."
    """
    if min_repetitions < 3:
        raise ValueError("min_repetitions must be >= 3")
    stats = RunStats(confidence=confidence)
    while stats.n < max_repetitions:
        stats.add(measure())
        if stats.n >= min_repetitions and stats.ci_within(rel_tol):
            break
    return stats
