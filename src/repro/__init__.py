"""CLaMPI reproduction: transparent caching for (simulated) MPI-3 RMA.

Reproduction of Di Girolamo, Vella, Hoefler, *Transparent Caching for RMA
Systems* (IPDPS 2017).  The package layers the paper's caching library —
CLaMPI, in :mod:`repro.core` — on top of a from-scratch simulated MPI-3 RMA
substrate (:mod:`repro.mpi` over :mod:`repro.runtime` and :mod:`repro.net`),
and ships the paper's applications (:mod:`repro.apps`), baselines
(:mod:`repro.baselines`) and the full benchmark harness (:mod:`repro.bench`).

Quickstart::

    import numpy as np
    from repro import clampi
    from repro.mpi import SimMPI

    def program(mpi):
        win = clampi.window_allocate(mpi.comm_world, 1 << 16,
                                     mode=clampi.Mode.ALWAYS_CACHE)
        win.lock_all()
        buf = np.empty(128, np.uint8)
        win.get(buf, target_rank=(mpi.rank + 1) % mpi.size, target_disp=0)
        win.flush((mpi.rank + 1) % mpi.size)   # first time: remote get
        win.get(buf, target_rank=(mpi.rank + 1) % mpi.size, target_disp=0)
        win.flush((mpi.rank + 1) % mpi.size)   # now: served from cache
        win.unlock_all()
        return win.stats.snapshot()

    stats = SimMPI(nprocs=4).run(program)
"""

__version__ = "1.0.0"
