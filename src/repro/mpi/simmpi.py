"""Job launcher: the simulated equivalent of ``mpiexec``.

:class:`SimMPI` configures a performance model and runs one program per rank
on the deterministic scheduler.  Programs receive an :class:`MPIProcess`
facade bundling the world communicator, the performance model and the raw
:class:`~repro.runtime.SimProcess` handle::

    def program(mpi: MPIProcess):
        win = Window.allocate(mpi.comm_world, 1 << 20)
        ...
        return mpi.rank

    results = SimMPI(nprocs=8).run(program)
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.mpi.comm import Communicator
from repro.net import PerfModel
from repro.runtime import SimProcess, SimWorld


class MPIProcess:
    """Per-rank handle passed to simulated MPI programs.

    When the job carries a :class:`~repro.faults.FaultPlan`, each rank
    builds its own :class:`~repro.faults.FaultInjector` here (seeded by
    ``(plan seed, rank)``) and hands it to the communicator, from which
    windows pick it up.
    """

    def __init__(
        self,
        proc: SimProcess,
        perf: PerfModel,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.proc = proc
        self.perf = perf
        self.faults = (
            FaultInjector(faults, proc.rank, lambda: proc.clock)
            if faults is not None
            else None
        )
        self.retry = retry
        self.comm_world = Communicator(proc, perf, faults=self.faults, retry=retry)

    @property
    def rank(self) -> int:
        return self.proc.rank

    @property
    def size(self) -> int:
        return self.proc.nprocs

    @property
    def time(self) -> float:
        """Current virtual time of this rank (seconds)."""
        return self.proc.clock

    def compute(self, seconds: float) -> None:
        """Charge pure local computation time."""
        self.proc.advance(seconds)


class SimMPI:
    """Launcher for simulated MPI jobs.

    Parameters
    ----------
    nprocs:
        Number of ranks.
    ranks_per_node:
        Placement density (1 = paper default, one rank per node).
    perf:
        Full :class:`~repro.net.PerfModel` override; built from defaults when
        omitted.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; when given, every rank
        runs with a deterministic per-rank fault injector and the window
        layer retries transient failures according to ``retry``.
    retry:
        Optional :class:`~repro.faults.RetryPolicy` override (defaults to
        :data:`repro.faults.DEFAULT_RETRY_POLICY` when faults are active).
    join_timeout:
        Wall-clock seconds rank threads get to terminate after the run
        settles before the scheduler reports them as hung.
    """

    def __init__(
        self,
        nprocs: int,
        ranks_per_node: int = 1,
        perf: PerfModel | None = None,
        schedule: str = "deterministic",
        schedule_seed: int = 0,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        join_timeout: float = 30.0,
        record_trace: bool = False,
        trace: Sequence[int] | None = None,
    ):
        self.nprocs = nprocs
        self.schedule = schedule
        self.schedule_seed = schedule_seed
        self.join_timeout = join_timeout
        self.record_trace = record_trace
        self.trace = trace
        self.faults = faults
        self.retry = retry
        self.perf = perf or PerfModel.default(nprocs, ranks_per_node)
        if self.perf.topology.nprocs != nprocs:
            raise ValueError(
                f"perf model built for {self.perf.topology.nprocs} ranks, "
                f"job has {nprocs}"
            )
        self._world: SimWorld | None = None

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``program(mpi, *args, **kwargs)`` on every rank.

        Returns the list of per-rank return values.  The elapsed virtual
        time is available afterwards as :attr:`elapsed`.
        """
        # Crash-stop rules resolve to concrete per-rank death times before
        # the run starts (seeded, deterministic); an empty dict keeps the
        # scheduler's crash machinery fully elided.
        crashes = (
            self.faults.crash_times(self.nprocs)
            if self.faults is not None
            else None
        )
        world = SimWorld(
            self.nprocs,
            schedule=self.schedule,
            seed=self.schedule_seed,
            join_timeout=self.join_timeout,
            crashes=crashes,
            record_trace=self.record_trace,
            trace=self.trace,
        )
        self._world = world

        def entry(proc: SimProcess, *a: Any, **kw: Any) -> Any:
            return program(
                MPIProcess(proc, self.perf, self.faults, self.retry), *a, **kw
            )

        return world.run(entry, *args, **kwargs)

    @property
    def elapsed(self) -> float:
        """Virtual makespan of the last run (max over rank clocks)."""
        if self._world is None:
            raise RuntimeError("no job has been run yet")
        return self._world.max_clock

    @property
    def clocks(self) -> list[float]:
        """Per-rank final virtual clocks of the last run."""
        if self._world is None:
            raise RuntimeError("no job has been run yet")
        return self._world.clocks

    @property
    def crashed(self) -> frozenset[int]:
        """Ranks that crashed permanently during the last run."""
        if self._world is None:
            raise RuntimeError("no job has been run yet")
        return frozenset(self._world.crashed)

    @property
    def schedule_trace(self) -> list[int]:
        """Dispatch order of the last run (requires ``record_trace=True``).

        Feed it back as ``trace=`` with ``schedule="trace"`` for an
        interleaving-stable replay — see
        :class:`repro.runtime.SimWorld` and ``docs/testing.md``.
        """
        if self._world is None:
            raise RuntimeError("no job has been run yet")
        return self._world.schedule_trace
