"""MPI datatype library with flattening (paper Sec. II-B).

CLaMPI "uses the MPI Datatype Library [Ross et al.] in order to support
arbitrary datatypes.  It allows us to flatten the datatype d to a list of
data blocks d_i = (s_i, o_i) where s_i is the size of the data block and o_i
is its offset".  This module provides exactly that: predefined types mapping
to NumPy scalars, derived types (:class:`Contiguous`, :class:`Vector`,
:class:`Indexed`) and a normalising :meth:`Datatype.flatten` that coalesces
adjacent blocks.

``size`` of a datatype is the number of *payload* bytes per element;
``extent`` is the span it covers in the buffer (>= size for strided types).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.mpi.errors import DatatypeError

#: A flattened block: (offset_in_bytes, size_in_bytes).
Block = tuple[int, int]


def _coalesce(blocks: Iterable[Block]) -> list[Block]:
    """Merge adjacent/contiguous blocks; blocks must be offset-sorted."""
    out: list[Block] = []
    for off, size in blocks:
        if size < 0 or off < 0:
            raise DatatypeError(f"invalid block ({off}, {size})")
        if size == 0:
            continue
        if out and out[-1][0] + out[-1][1] == off:
            out[-1] = (out[-1][0], out[-1][1] + size)
        else:
            out.append((off, size))
    return out


class Datatype:
    """Abstract datatype: a layout of payload bytes within an extent."""

    @property
    def size(self) -> int:
        """Payload bytes per element."""
        raise NotImplementedError

    @property
    def extent(self) -> int:
        """Bytes spanned by one element (stride between consecutive ones)."""
        raise NotImplementedError

    def blocks(self) -> list[Block]:
        """Flattened ``(offset, size)`` blocks of a single element."""
        raise NotImplementedError

    def flatten(self, count: int = 1) -> list[Block]:
        """Flattened blocks of ``count`` consecutive elements, coalesced.

        >>> Contiguous(4, BYTE).flatten(2)
        [(0, 8)]
        """
        if count < 0:
            raise DatatypeError(f"negative count: {count}")
        base = self.blocks()
        ext = self.extent
        if len(base) == 1 and base[0] == (0, ext):
            # Contiguous fast path: one block regardless of count.
            return [(0, ext * count)] if count and ext else []
        all_blocks = (
            (i * ext + off, size) for i in range(count) for off, size in base
        )
        return _coalesce(sorted(all_blocks))

    def transfer_size(self, count: int) -> int:
        """Total payload bytes of ``count`` elements (``size(x)`` in the paper)."""
        if count < 0:
            raise DatatypeError(f"negative count: {count}")
        return self.size * count

    def is_contiguous(self) -> bool:
        """True when one element is a single block filling the extent."""
        blk = self.blocks()
        return len(blk) == 1 and blk[0] == (0, self.extent)


@dataclass(frozen=True)
class Predefined(Datatype):
    """Leaf datatype wrapping a NumPy scalar dtype."""

    name: str
    np_dtype: np.dtype

    @property
    def size(self) -> int:
        return int(self.np_dtype.itemsize)

    @property
    def extent(self) -> int:
        return int(self.np_dtype.itemsize)

    def blocks(self) -> list[Block]:
        return [(0, self.size)]

    def __repr__(self) -> str:
        return f"MPI.{self.name}"


BYTE = Predefined("BYTE", np.dtype(np.uint8))
INT32 = Predefined("INT32", np.dtype(np.int32))
INT64 = Predefined("INT64", np.dtype(np.int64))
FLOAT32 = Predefined("FLOAT32", np.dtype(np.float32))
FLOAT64 = Predefined("FLOAT64", np.dtype(np.float64))


@dataclass(frozen=True)
class Contiguous(Datatype):
    """``count`` consecutive elements of ``base`` as one element."""

    count: int
    base: Datatype

    def __post_init__(self) -> None:
        if self.count < 0:
            raise DatatypeError(f"negative count: {self.count}")

    @property
    def size(self) -> int:
        return self.count * self.base.size

    @property
    def extent(self) -> int:
        return self.count * self.base.extent

    def blocks(self) -> list[Block]:
        return self.base.flatten(self.count)


@dataclass(frozen=True)
class Vector(Datatype):
    """``count`` blocks of ``blocklength`` base elements, ``stride`` apart.

    ``stride`` is expressed in base-element extents (as in MPI_Type_vector).
    """

    count: int
    blocklength: int
    stride: int
    base: Datatype

    def __post_init__(self) -> None:
        if self.count < 0 or self.blocklength < 0:
            raise DatatypeError("negative count/blocklength")
        if self.count > 1 and self.stride < self.blocklength:
            raise DatatypeError("overlapping vector blocks (stride < blocklength)")

    @property
    def size(self) -> int:
        return self.count * self.blocklength * self.base.size

    @property
    def extent(self) -> int:
        if self.count == 0:
            return 0
        span = (self.count - 1) * self.stride + self.blocklength
        return span * self.base.extent

    def blocks(self) -> list[Block]:
        ext = self.base.extent
        blk: list[Block] = []
        for i in range(self.count):
            start = i * self.stride * ext
            blk.extend(
                (start + off, size)
                for off, size in self.base.flatten(self.blocklength)
            )
        return _coalesce(sorted(blk))


@dataclass(frozen=True)
class Indexed(Datatype):
    """Irregular blocks: ``blocklengths[i]`` base elements at ``displacements[i]``.

    Displacements are in base-element extents (as in MPI_Type_indexed).
    """

    blocklengths: tuple[int, ...]
    displacements: tuple[int, ...]
    base: Datatype

    def __post_init__(self) -> None:
        if len(self.blocklengths) != len(self.displacements):
            raise DatatypeError("blocklengths/displacements length mismatch")
        if any(b < 0 for b in self.blocklengths):
            raise DatatypeError("negative blocklength")
        if any(d < 0 for d in self.displacements):
            raise DatatypeError("negative displacement")

    @property
    def size(self) -> int:
        return sum(self.blocklengths) * self.base.size

    @property
    def extent(self) -> int:
        if not self.blocklengths:
            return 0
        end = max(
            d + b for d, b in zip(self.displacements, self.blocklengths)
        )
        return end * self.base.extent

    def blocks(self) -> list[Block]:
        ext = self.base.extent
        blk: list[Block] = []
        for disp, blen in zip(self.displacements, self.blocklengths):
            start = disp * ext
            blk.extend(
                (start + off, size) for off, size in self.base.flatten(blen)
            )
        ordered = sorted(blk)
        for (o1, s1), (o2, _s2) in zip(ordered, ordered[1:]):
            if o1 + s1 > o2:
                raise DatatypeError("overlapping indexed blocks")
        return _coalesce(ordered)


def from_numpy(dtype: np.dtype | type) -> Predefined:
    """Map a NumPy scalar dtype to the matching predefined datatype."""
    nd = np.dtype(dtype)
    for pre in (BYTE, INT32, INT64, FLOAT32, FLOAT64):
        if pre.np_dtype == nd:
            return pre
    return Predefined(nd.name.upper(), nd)
