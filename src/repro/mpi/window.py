"""MPI-3 RMA windows over simulated shared memory.

A :class:`Window` exposes one byte buffer per rank.  All the paper-relevant
semantics are implemented:

* collective creation (:meth:`Window.allocate` / :meth:`Window.create`) with
  an ``info`` dictionary (CLaMPI reads its operational mode from it);
* passive-target epochs — ``lock``/``unlock`` for one target,
  ``lock_all``/``unlock_all`` for all, ``flush``/``flush_all`` to complete
  outstanding operations; active-target ``fence``;
* non-blocking ``get``/``put``: functionally the payload moves immediately
  (single address space), but *virtual time* completes only at the next
  synchronisation call, reproducing RDMA overlap behaviour;
* an **epoch counter** ``eph`` counting concluded epochs since window
  creation (paper Sec. II-A) — every synchronisation that completes
  operations (flush, flush_all, unlock, unlock_all, fence) is an
  epoch-closure event and bumps it;
* epoch-closure hooks, the integration point used by CLaMPI to materialise
  PENDING cache entries "at the epoch closure time or after a
  synchronization call" (paper Sec. II).

Simplification (documented in DESIGN.md): because ranks share one address
space and the MPI standard already forbids conflicting put/get in the same
epoch, payloads are copied at issue time; only the clocks honour the
asynchronous completion model.

Every operation is *described* as an
:class:`repro.rma.descriptor.OpDescriptor` and *issued* through the
window's interceptor pipeline (:mod:`repro.rma`): retry/backoff, fault
injection, the simulated transport (byte movement + cost pricing),
telemetry emission and epoch closure each live in exactly one
interceptor.  The op methods below only validate, build the descriptor
and manage epoch state; :meth:`Window.get_batch` issues N descriptors
with one epoch-bookkeeping pass and one batched telemetry event.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.faults import DEFAULT_RETRY_POLICY
from repro.mpi.comm import Communicator
from repro.mpi.datatypes import BYTE, Datatype, from_numpy
from repro.mpi.errors import (
    EpochError,
    TargetFailedError,
    WindowError,
    WindowRevokedError,
)
from repro.obs import WINDOW_REVOKED, Event, get_bus

# Submodule imports (not the package) keep the repro.mpi <-> repro.rma
# import graph acyclic regardless of which package is imported first.
from repro.rma.descriptor import (
    OpDescriptor,
    describe_accumulate,
    describe_get,
    describe_get_batch,
    describe_get_into,
    describe_lock,
    describe_put,
    describe_sync,
)
from repro.rma.interceptors import (
    build_data_pipeline,
    build_sync_pipeline,
    emit_get_batch,
)

LOCK_SHARED = "shared"
LOCK_EXCLUSIVE = "exclusive"

#: Fixed CPU cost of a flush/unlock synchronisation call.
SYNC_OVERHEAD = 50e-9

_window_ids = itertools.count()


@dataclass
class _PendingOp:
    """A posted but (time-wise) incomplete RMA operation."""

    target: int
    issue_clock: float
    duration: float


class _WindowGroup:
    """State shared by all per-rank views of one window (one address space)."""

    def __init__(self, nprocs: int):
        self.win_id = next(_window_ids)
        self.buffers: list[np.ndarray] = [np.empty(0, np.uint8)] * nprocs
        self.disp_units: list[int] = [1] * nprocs
        self.infos: list[Mapping[str, Any]] = [{}] * nprocs
        self.freed = False
        #: set once any rank revokes the window after a failure; shared by
        #: all per-rank views, so everyone's next op fails fast
        self.revoked = False


class Request:
    """Completion handle of a request-based RMA operation (MPI_Rget/Rput).

    ``wait`` completes *this* operation only — unlike ``flush`` it is not an
    epoch-closure event, so CLaMPI hooks do not fire and ``eph`` does not
    advance (matching MPI-3 semantics, where request completion does not
    imply remote completion ordering of other operations).
    """

    def __init__(self, window: "Window", op: _PendingOp):
        self._window = window
        self._op = op
        self._done = False

    def test(self) -> bool:
        """Non-blocking completion probe against the virtual clock."""
        if self._done:
            return True
        proc = self._window._comm.proc
        if proc.clock >= self._op.issue_clock + self._op.duration:
            self._finish()
            return True
        return False

    def wait(self) -> None:
        """Block (advance the virtual clock) until the operation completes."""
        if self._done:
            return
        proc = self._window._comm.proc
        done_at = self._op.issue_clock + self._op.duration
        if done_at > proc.clock:
            proc.advance(done_at - proc.clock)
        proc.advance(SYNC_OVERHEAD)
        self._finish()

    def _finish(self) -> None:
        self._done = True
        try:
            self._window._pending.remove(self._op)
        except ValueError:
            pass  # a flush already completed it

    @property
    def done(self) -> bool:
        return self._done


class Window:
    """Per-rank handle to a collectively created RMA window."""

    def __init__(self, comm: Communicator, group: _WindowGroup):
        self._comm = comm
        self._group = group
        self.eph = 0  #: number of concluded epochs since creation (w.eph)
        self._locked: set[int] = set()
        self._locked_all = False
        self._access_group: set[int] = set()    #: PSCW start() targets
        self._fence_active = False              #: inside a fence_epoch block
        self._exposure_group: set[int] = set()  #: PSCW post() origins
        self._pending: list[_PendingOp] = []
        self._epoch_close_hooks: list[Callable[["Window", set[int] | None], None]] = []
        self._bytes_transferred = 0  #: diagnostic: payload bytes moved by gets/puts
        #: diagnostic: payload bytes per Distance class this rank moved
        self._bytes_by_distance: dict = {}
        #: telemetry bus (process-global); hot paths gate on ``.wants(kind)``
        self._obs = get_bus()
        #: per-rank fault injector (None on a fault-free job) and the
        #: retry/backoff policy applied to transient failures
        self._faults = getattr(comm, "faults", None)
        self._retry = getattr(comm, "retry", None) or DEFAULT_RETRY_POLICY
        self.faults_injected = 0  #: injected faults that raised on this window
        self.retries = 0          #: retry attempts performed on this window
        #: (span, blocks) footprint memo keyed on (dtype, count) — see
        #: repro.rma.descriptor._footprint
        self._fp_memo: dict = {}
        #: pooled descriptor frame for the dominant scalar-get path; taken
        #: (set to None) while a get is in flight, restored afterwards, so
        #: a million-get run reuses one frame instead of allocating one
        #: per op.  Paths where the descriptor escapes (rget, batches,
        #: layered issue()) never touch the pool.
        self._scalar_desc: OpDescriptor | None = OpDescriptor(kind="get")
        #: memoized per-target flush descriptors (see :meth:`flush`)
        self._flush_descs: dict[int, OpDescriptor] = {}
        #: the interceptor pipelines every op is issued through (repro.rma)
        self._data_pipe = build_data_pipeline(self)
        self._sync_pipe = build_sync_pipeline(self)
        # Failure-report diagnostic: the scheduler appends each rank's open
        # epoch state to DeadlockError / RankFailedError messages.
        comm.proc.add_diagnostic(self._diagnostic)

    # ------------------------------------------------------------------
    # creation / destruction (collective)
    # ------------------------------------------------------------------
    @classmethod
    def allocate(
        cls,
        comm: Communicator,
        nbytes: int,
        disp_unit: int = 1,
        info: Mapping[str, Any] | None = None,
    ) -> "Window":
        """Collectively allocate a window of ``nbytes`` local bytes."""
        if nbytes < 0:
            raise WindowError(f"negative window size: {nbytes}")
        buf = np.zeros(nbytes, dtype=np.uint8)
        return cls.create(comm, buf, disp_unit=disp_unit, info=info)

    @classmethod
    def create(
        cls,
        comm: Communicator,
        buffer: np.ndarray,
        disp_unit: int = 1,
        info: Mapping[str, Any] | None = None,
    ) -> "Window":
        """Collectively create a window over an existing local buffer."""
        if disp_unit < 1:
            raise WindowError(f"disp_unit must be >= 1, got {disp_unit}")
        local = np.ascontiguousarray(buffer).view(np.uint8).reshape(-1)
        shared = comm.allgather(
            {"buf": local, "du": disp_unit, "info": dict(info or {})}
        )
        # The lowest member rank constructs the shared group (rank 0 on
        # the world communicator, the lowest survivor after a shrink);
        # every rank receives the same object through the broadcast, so
        # win_id and the freed/revoked flags are genuinely shared state
        # (one address space).  The gathered list is world-indexed with
        # None at non-member slots, so the group stays world-sized and
        # target ranks keep their world numbering across a shrink.
        root = min(comm.ranks)
        group: _WindowGroup | None = None
        if comm.rank == root:
            group = _WindowGroup(len(shared))
            group.buffers = [
                s["buf"] if s is not None else np.empty(0, np.uint8)
                for s in shared
            ]
            group.disp_units = [s["du"] if s is not None else 1 for s in shared]
            group.infos = [s["info"] if s is not None else {} for s in shared]
        group = comm.bcast(group, root=root)
        return cls(comm, group)

    def free(self) -> None:
        """Collectively free the window."""
        self._require_no_epoch("free")
        self._comm.barrier()
        self._group.freed = True

    # ------------------------------------------------------------------
    # failure handling (ULFM-style revoke / shrink)
    # ------------------------------------------------------------------
    def revoke(self) -> None:
        """Revoke the window after a failure (MPI_Win_revoke analogue).

        Non-collective: any rank may call it, the flag is shared, and every
        rank's subsequent operations on this window raise
        :class:`~repro.mpi.errors.WindowRevokedError` until the survivors
        re-create the window with :meth:`shrink`.  Idempotent.
        """
        if not self._group.revoked:
            self._group.revoked = True
            if self._obs.wants(WINDOW_REVOKED):
                self._emit(
                    WINDOW_REVOKED,
                    failed=sorted(self._comm.proc.failed_ranks),
                )

    def shrink(self) -> "Window":
        """Collectively re-create this window over the surviving ranks.

        Agrees on the failed set (via :meth:`Communicator.shrink`), then
        re-exposes this rank's buffer on a fresh window whose group holds
        only survivors.  Target ranks keep their world numbering; the old
        (typically revoked) window is left behind.
        """
        comm = self._comm.shrink()
        return Window.create(
            comm,
            self.local_buffer,
            disp_unit=self._group.disp_units[self._comm.rank],
            info=self.info,
        )

    @property
    def revoked(self) -> bool:
        return self._group.revoked

    @property
    def failed_ranks(self) -> frozenset[int]:
        """Group members known (locally) to have crashed."""
        return self._comm.failed_ranks

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def comm(self) -> Communicator:
        return self._comm

    @property
    def win_id(self) -> int:
        return self._group.win_id

    @property
    def info(self) -> Mapping[str, Any]:
        """Info keys this rank passed at creation."""
        return self._group.infos[self._comm.rank]

    @property
    def local_buffer(self) -> np.ndarray:
        """This rank's exposed memory as a uint8 array."""
        return self._group.buffers[self._comm.rank]

    def local_view(self, dtype: np.dtype | type) -> np.ndarray:
        """This rank's exposed memory viewed with a NumPy dtype."""
        return self.local_buffer.view(np.dtype(dtype))

    def size_of(self, rank: int) -> int:
        """Exposed bytes of ``rank``'s window."""
        self._check_rank(rank)
        return int(self._group.buffers[rank].nbytes)

    @property
    def bytes_transferred(self) -> int:
        """Total payload bytes this rank moved over the (virtual) network."""
        return self._bytes_transferred

    @property
    def bytes_by_distance(self) -> dict:
        """Payload bytes split by :class:`~repro.net.Distance` class.

        Lets applications see how much of their RMA traffic stayed on-node
        vs crossed group boundaries — the locality the Fig. 1 hierarchy is
        about.
        """
        return dict(self._bytes_by_distance)

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def lock(self, rank: int, lock_type: str = LOCK_SHARED) -> None:
        """Open a passive-target access epoch towards ``rank``."""
        self._check_alive()
        self._check_rank(rank)
        if lock_type not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            raise EpochError(f"unknown lock type: {lock_type}")
        if self._locked_all or rank in self._locked:
            raise EpochError(f"rank {rank} is already locked")
        if self._fence_active:
            raise EpochError("lock inside a fence epoch")
        self._locked.add(rank)
        try:
            self._sync_pipe.issue(describe_lock(self, rank, lock_type))
        except TargetFailedError:
            # Refused fail-fast (dead target): the epoch never opened.
            self._locked.discard(rank)
            raise

    def lock_all(self) -> None:
        """Open a passive-target access epoch towards every rank."""
        self._check_alive()
        if self._locked_all or self._locked or self._fence_active:
            raise EpochError("lock_all inside an existing epoch")
        self._locked_all = True
        self._sync_pipe.issue(describe_lock(self, None, LOCK_SHARED))

    def unlock(self, rank: int) -> None:
        """Complete outstanding ops to ``rank`` and close its epoch."""
        self._check_alive()
        if rank not in self._locked:
            raise EpochError(
                f"unlock({rank}): rank {rank} is not locked by rank "
                f"{self._comm.rank} ({self._epoch_state()})"
            )
        self._sync_pipe.issue(
            describe_sync(
                self,
                "unlock",
                target=rank,
                targets={rank},
                close_targets={rank},
                finalize=lambda: self._locked.discard(rank),
                emit_attrs={"target": rank},
            )
        )

    def unlock_all(self) -> None:
        """Complete all outstanding ops and close the lock_all epoch."""
        self._check_alive()
        if not self._locked_all:
            raise EpochError(
                f"unlock_all on rank {self._comm.rank} without a lock_all "
                f"epoch ({self._epoch_state()})"
            )

        def finalize() -> None:
            self._locked_all = False

        self._sync_pipe.issue(
            describe_sync(
                self,
                "unlock_all",
                target=None,
                targets=None,
                close_targets=None,
                finalize=finalize,
                emit_attrs={"target": None},
            )
        )

    def flush(self, rank: int) -> None:
        """Complete outstanding ops to ``rank`` without releasing the lock.

        Like the paper (Listing 1: ``MPI_Win_flush(peer, win); //closes
        epoch``) we treat flush as an epoch-closure event for consistency
        purposes: ``eph`` is bumped and closure hooks fire.
        """
        self._check_alive()
        self._require_epoch(rank, "flush")
        # Per-target memo: a flush descriptor is a pure function of the
        # target rank (its sets/attrs are read-only downstream), and tight
        # get+flush loops issue hundreds of thousands of them.  Only the
        # measured completion extent changes per issue; reset it.
        desc = self._flush_descs.get(rank)
        if desc is None:
            desc = self._flush_descs[rank] = describe_sync(
                self,
                "flush",
                target=rank,
                targets={rank},
                close_targets={rank},
                emit_attrs={"target": rank},
            )
        desc.duration = 0.0
        self._sync_pipe.issue(desc)

    def flush_all(self) -> None:
        """Complete all outstanding ops without releasing any lock."""
        self._check_alive()
        if not (self._locked_all or self._locked):
            raise EpochError("flush_all outside an access epoch")
        self._sync_pipe.issue(
            describe_sync(
                self,
                "flush_all",
                target=None,
                targets=None,
                close_targets=None,
                emit_attrs={"target": None},
            )
        )

    def fence(self) -> None:
        """Active-target synchronisation: collective epoch boundary."""
        self._check_alive()
        if self._locked_all or self._locked or self._access_group:
            raise EpochError("fence inside another access epoch")
        self._sync_pipe.issue(
            describe_sync(
                self,
                "fence",
                targets=None,
                close_targets=None,
                barrier=True,
                fault_site=None,
            )
        )

    # -- context-manager epoch APIs ------------------------------------
    @contextmanager
    def lock_epoch(
        self, rank: int, lock_type: str = LOCK_SHARED
    ) -> Iterator["Window"]:
        """Scoped passive-target epoch towards one rank.

        ``with win.lock_epoch(peer): ...`` locks on entry and unlocks on
        exit — the unlock completes all outstanding operations (an implicit
        flush) and closes the epoch.  Call :meth:`flush` inside the block
        to close intermediate epochs, exactly as with explicit calls.
        """
        self.lock(rank, lock_type)
        try:
            yield self
        finally:
            self.unlock(rank)

    @contextmanager
    def lock_all_epoch(self) -> Iterator["Window"]:
        """Scoped passive-target epoch towards every rank (lock_all)."""
        self.lock_all()
        try:
            yield self
        finally:
            self.unlock_all()

    @contextmanager
    def fence_epoch(self) -> Iterator["Window"]:
        """Scoped active-target epoch: fence on entry *and* exit.

        RMA calls are permitted inside the block.  This scoped form is how
        active-target communication epochs are expressed here; a bare
        :meth:`fence` stays a pure synchronisation/completion boundary, so
        the epoch can never be left open by accident.
        """
        self.fence()
        self._fence_active = True
        try:
            yield self
        finally:
            self._fence_active = False
            self.fence()

    # -- generalised active target (PSCW) ------------------------------
    def start(self, group: set[int] | list[int]) -> None:
        """Open an access epoch towards the ranks in ``group`` (MPI_Win_start).

        The simulated runtime has no asynchronous target-side progress, so
        ``start`` pairs with the targets' :meth:`post` purely through the
        shared group bookkeeping; time-wise it charges one notification
        latency per target.
        """
        self._check_alive()
        if (
            self._locked_all
            or self._locked
            or self._access_group
            or self._fence_active
        ):
            raise EpochError("start inside an existing access epoch")
        targets = set(group)
        for r in targets:
            self._check_rank(r)
        self._access_group = targets
        perf = self._comm.perf
        for r in targets:
            self._comm.proc.advance(perf.issue_time(self._comm.rank, r, 0))

    def complete(self) -> None:
        """Close the PSCW access epoch (MPI_Win_complete)."""
        self._check_alive()
        if not self._access_group:
            raise EpochError("complete without a matching start")
        group = set(self._access_group)

        def finalize() -> None:
            self._access_group = set()

        # Completion is an epoch-closure event like flush; telemetry
        # consumers (the repro.analysis sanitizer in particular) rely on
        # seeing the flush event to retire this origin's outstanding ops.
        self._sync_pipe.issue(
            describe_sync(
                self,
                "complete",
                targets=None,
                close_targets=group,
                finalize=finalize,
                fault_site=None,
                emit_attrs={"target": None, "pscw": True},
            )
        )

    def post(self, group: set[int] | list[int]) -> None:
        """Expose the local window to ``group`` (MPI_Win_post).

        Functionally a no-op in the single-address-space simulation (the
        memory is always reachable); retained for API fidelity and charged a
        notification latency.
        """
        self._check_alive()
        targets = set(group)
        for r in targets:
            self._check_rank(r)
        self._exposure_group = targets

    def wait(self) -> None:
        """Wait for all access epochs on the local window (MPI_Win_wait).

        The deterministic scheduler cannot block a target on specific
        initiators without a full matching protocol; programs bracket PSCW
        phases with a barrier, which dominates its cost anyway.
        """
        self._check_alive()
        self._exposure_group = set()
        self._comm.barrier()

    def add_epoch_close_hook(
        self, hook: Callable[["Window", set[int] | None], None]
    ) -> None:
        """Register ``hook(window, targets)`` to run at each epoch closure.

        ``targets`` is the set of target ranks whose operations were
        completed, or ``None`` meaning "all".  Hooks run *before* ``eph`` is
        incremented and may charge virtual time via the communicator's
        process handle.
        """
        self._epoch_close_hooks.append(hook)

    # ------------------------------------------------------------------
    # one-sided operations
    # ------------------------------------------------------------------
    def get(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """Post a non-blocking get; returns the payload size in bytes.

        ``origin`` must be a contiguous NumPy array with room for the payload
        (``datatype.size * count`` bytes).  ``target_disp`` is expressed in
        the target's ``disp_unit``.  The data is visible in ``origin``
        immediately (simulation simplification) but the virtual clock only
        accounts completion at the next synchronisation.

        Under an active fault plan an injected transient failure is
        retried with exponential backoff (charged in virtual time) up to
        the retry policy's attempt budget; re-issuing moves the same bytes,
        so results stay bit-identical to a fault-free run.
        """
        desc = self._scalar_desc
        if desc is None:  # re-entrant get (defensive): fall back to a fresh frame
            desc = describe_get(
                self, origin, target_rank, target_disp, count, datatype
            )
            return self._data_pipe.issue(desc).result
        self._scalar_desc = None
        try:
            describe_get_into(
                desc, self, origin, target_rank, target_disp, count, datatype
            )
            self._data_pipe.issue(desc)
            return desc.result
        finally:
            self._scalar_desc = desc

    def get_batch(self, requests: Sequence[tuple]) -> list[int]:
        """Issue a batch of gets in one pass; returns per-op payload bytes.

        ``requests`` holds ``(origin, target_rank, target_disp[, count
        [, datatype]])`` tuples.  The batch performs **one**
        epoch-bookkeeping pass (liveness once, the epoch once per distinct
        target) and emits **one** batched telemetry event
        (``rma.get_batch``, carrying every op's sanitizer footprint)
        instead of N per-op events.  Each element still flows through the
        full interceptor pipeline — fault injection fires, retries charge
        their virtual-time backoff, transfers are priced per element — so
        the resulting virtual time is bit-identical to N scalar gets.
        """
        descs = describe_get_batch(self, requests)
        for desc in descs:
            self._data_pipe.issue(desc)
        emit_get_batch(self, descs)
        return [d.result for d in descs]

    def issue(self, desc: OpDescriptor) -> OpDescriptor:
        """Issue a pre-built descriptor through the matching pipeline.

        The extension point for layered windows (the CLaMPI cache batches
        its miss traffic through here) and future backends; scalar op
        methods are thin wrappers over describe + issue.
        """
        pipe = self._data_pipe if desc.is_data else self._sync_pipe
        return pipe.issue(desc)

    def put(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """Post a non-blocking put; returns the payload size in bytes."""
        desc = describe_put(self, origin, target_rank, target_disp, count, datatype)
        return self._data_pipe.issue(desc).result

    def get_blocking(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """Convenience: ``get`` + ``flush(target_rank)``."""
        n = self.get(origin, target_rank, target_disp, count, datatype)
        self.flush(target_rank)
        return n

    def rget(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> Request:
        """Request-based get (MPI_Rget): complete with ``Request.wait``."""
        desc = describe_get(self, origin, target_rank, target_disp, count, datatype)
        self._data_pipe.issue(desc)
        return Request(self, desc.pending_op)

    def rput(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> Request:
        """Request-based put (MPI_Rput)."""
        desc = describe_put(self, origin, target_rank, target_disp, count, datatype)
        self._data_pipe.issue(desc)
        return Request(self, desc.pending_op)

    def accumulate(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        op: str = "sum",
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """MPI_Accumulate with a predefined element-wise op.

        ``op`` is ``"sum"``, ``"max"``, ``"min"`` or ``"replace"``; the
        element type is the origin array's dtype (derived datatypes are not
        supported for accumulates, matching common MPI restrictions).
        Accumulates are never cached by CLaMPI (they are writes).
        """
        desc = describe_accumulate(
            self, origin, target_rank, target_disp, op, count, datatype
        )
        return self._data_pipe.issue(desc).result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve_dtype(
        self, origin: np.ndarray, count: int | None, datatype: Datatype | None
    ) -> tuple[Datatype, int]:
        if datatype is None:
            datatype = from_numpy(origin.dtype) if origin.dtype != np.uint8 else BYTE
        if count is None:
            if datatype.size == 0:
                count = 0
            else:
                count = origin.nbytes // datatype.size
        if count < 0:
            raise WindowError(f"negative count: {count}")
        return datatype, count

    @staticmethod
    def _origin_bytes(origin: np.ndarray) -> np.ndarray:
        if not origin.flags["C_CONTIGUOUS"]:
            raise WindowError("origin buffer must be C-contiguous")
        return origin.view(np.uint8).reshape(-1)

    def _emit(self, kind: str, duration: float = 0.0, **attrs: Any) -> None:
        """Publish one telemetry event stamped (rank, virtual time, epoch)."""
        comm = self._comm
        self._obs.emit(
            Event(
                kind,
                comm.rank,
                comm.proc.clock,
                self.eph,
                self.win_id,
                duration=duration,
                attrs=attrs,
            )
        )

    def _complete(self, targets: set[int] | None) -> None:
        """Advance the clock past completion of the selected pending ops."""
        proc = self._comm.proc
        done_at = proc.clock
        remaining: list[_PendingOp] = []
        for op in self._pending:
            if targets is None or op.target in targets:
                done_at = max(done_at, op.issue_clock + op.duration)
            else:
                remaining.append(op)
        self._pending = remaining
        if done_at > proc.clock:
            proc.advance(done_at - proc.clock)
        proc.advance(SYNC_OVERHEAD)

    def _close_epoch(self, targets: set[int] | None) -> None:
        for hook in self._epoch_close_hooks:
            hook(self, targets)
        self.eph += 1

    def _epoch_state(self) -> str:
        """Human-readable summary of this rank's current epoch state."""
        parts = []
        if self._locked_all:
            parts.append("lock_all held")
        if self._locked:
            parts.append(f"locked ranks {sorted(self._locked)}")
        if self._access_group:
            parts.append(f"PSCW access group {sorted(self._access_group)}")
        if self._fence_active:
            parts.append("inside a fence epoch")
        state = ", ".join(parts) if parts else "no epoch open"
        return f"epoch state: {state}; {self.eph} epochs concluded"

    def _require_epoch(self, rank: int, what: str) -> None:
        if not (
            self._locked_all
            or self._fence_active
            or rank in self._locked
            or rank in self._access_group
        ):
            raise EpochError(
                f"{what} towards rank {rank} outside an access epoch "
                "(call lock/lock_all/start first)"
            )

    def _require_no_epoch(self, what: str) -> None:
        if (
            self._locked_all
            or self._locked
            or self._access_group
            or self._fence_active
        ):
            raise EpochError(f"{what} called inside an open access epoch")

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._comm.proc.nprocs:
            raise WindowError(f"target rank {rank} out of range [0, {self._comm.size})")
        if not self._comm.contains(rank):
            raise WindowError(
                f"target rank {rank} is not in the window's group "
                f"(survivors {sorted(self._comm.ranks)})"
            )

    def _check_alive(self) -> None:
        if self._group.freed:
            raise WindowError("window has been freed")
        if self._group.revoked:
            raise WindowRevokedError(
                f"window {self._group.win_id} was revoked after a rank "
                "failure; shrink() to continue on the survivors"
            )

    def _diagnostic(self) -> str:
        return f"win {self.win_id}: {self._epoch_state()}"
