"""MPI-3 RMA windows over simulated shared memory.

A :class:`Window` exposes one byte buffer per rank.  All the paper-relevant
semantics are implemented:

* collective creation (:meth:`Window.allocate` / :meth:`Window.create`) with
  an ``info`` dictionary (CLaMPI reads its operational mode from it);
* passive-target epochs — ``lock``/``unlock`` for one target,
  ``lock_all``/``unlock_all`` for all, ``flush``/``flush_all`` to complete
  outstanding operations; active-target ``fence``;
* non-blocking ``get``/``put``: functionally the payload moves immediately
  (single address space), but *virtual time* completes only at the next
  synchronisation call, reproducing RDMA overlap behaviour;
* an **epoch counter** ``eph`` counting concluded epochs since window
  creation (paper Sec. II-A) — every synchronisation that completes
  operations (flush, flush_all, unlock, unlock_all, fence) is an
  epoch-closure event and bumps it;
* epoch-closure hooks, the integration point used by CLaMPI to materialise
  PENDING cache entries "at the epoch closure time or after a
  synchronization call" (paper Sec. II).

Simplification (documented in DESIGN.md): because ranks share one address
space and the MPI standard already forbids conflicting put/get in the same
epoch, payloads are copied at issue time; only the clocks honour the
asynchronous completion model.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from repro.faults import DEFAULT_RETRY_POLICY
from repro.mpi.comm import Communicator
from repro.mpi.datatypes import BYTE, Datatype, from_numpy
from repro.mpi.errors import (
    EpochError,
    RMATimeoutError,
    TransientNetworkError,
    WindowError,
)
from repro.obs import (
    FAULT_INJECTED,
    FAULT_RETRY,
    NET_TRANSFER,
    RMA_ACCUMULATE,
    RMA_FENCE,
    RMA_FLUSH,
    RMA_GET,
    RMA_LOCK,
    RMA_PUT,
    RMA_UNLOCK,
    Event,
    get_bus,
)

LOCK_SHARED = "shared"
LOCK_EXCLUSIVE = "exclusive"


def _origin_attrs(origin_bytes: np.ndarray, nbytes: int) -> dict[str, int]:
    """Identity of the local origin buffer region an op reads/writes.

    ``origin`` is the buffer's host address, ``onbytes`` the bytes used —
    enough for the :mod:`repro.analysis` sanitizer to catch reuse of an
    origin buffer before the get that fills it completed.
    """
    return {
        "origin": int(origin_bytes.__array_interface__["data"][0]),
        "onbytes": nbytes,
    }

#: Fixed CPU cost of a flush/unlock synchronisation call.
SYNC_OVERHEAD = 50e-9

_window_ids = itertools.count()


@dataclass
class _PendingOp:
    """A posted but (time-wise) incomplete RMA operation."""

    target: int
    issue_clock: float
    duration: float


class _WindowGroup:
    """State shared by all per-rank views of one window (one address space)."""

    def __init__(self, nprocs: int):
        self.win_id = next(_window_ids)
        self.buffers: list[np.ndarray] = [np.empty(0, np.uint8)] * nprocs
        self.disp_units: list[int] = [1] * nprocs
        self.infos: list[Mapping[str, Any]] = [{}] * nprocs
        self.freed = False


class Request:
    """Completion handle of a request-based RMA operation (MPI_Rget/Rput).

    ``wait`` completes *this* operation only — unlike ``flush`` it is not an
    epoch-closure event, so CLaMPI hooks do not fire and ``eph`` does not
    advance (matching MPI-3 semantics, where request completion does not
    imply remote completion ordering of other operations).
    """

    def __init__(self, window: "Window", op: _PendingOp):
        self._window = window
        self._op = op
        self._done = False

    def test(self) -> bool:
        """Non-blocking completion probe against the virtual clock."""
        if self._done:
            return True
        proc = self._window._comm.proc
        if proc.clock >= self._op.issue_clock + self._op.duration:
            self._finish()
            return True
        return False

    def wait(self) -> None:
        """Block (advance the virtual clock) until the operation completes."""
        if self._done:
            return
        proc = self._window._comm.proc
        done_at = self._op.issue_clock + self._op.duration
        if done_at > proc.clock:
            proc.advance(done_at - proc.clock)
        proc.advance(SYNC_OVERHEAD)
        self._finish()

    def _finish(self) -> None:
        self._done = True
        try:
            self._window._pending.remove(self._op)
        except ValueError:
            pass  # a flush already completed it

    @property
    def done(self) -> bool:
        return self._done


class Window:
    """Per-rank handle to a collectively created RMA window."""

    def __init__(self, comm: Communicator, group: _WindowGroup):
        self._comm = comm
        self._group = group
        self.eph = 0  #: number of concluded epochs since creation (w.eph)
        self._locked: set[int] = set()
        self._locked_all = False
        self._access_group: set[int] = set()    #: PSCW start() targets
        self._fence_active = False              #: inside a fence_epoch block
        self._exposure_group: set[int] = set()  #: PSCW post() origins
        self._pending: list[_PendingOp] = []
        self._epoch_close_hooks: list[Callable[["Window", set[int] | None], None]] = []
        self._bytes_transferred = 0  #: diagnostic: payload bytes moved by gets/puts
        #: diagnostic: payload bytes per Distance class this rank moved
        self._bytes_by_distance: dict = {}
        #: telemetry bus (process-global); hot paths gate on ``.enabled``
        self._obs = get_bus()
        #: per-rank fault injector (None on a fault-free job) and the
        #: retry/backoff policy applied to transient failures
        self._faults = getattr(comm, "faults", None)
        self._retry = getattr(comm, "retry", None) or DEFAULT_RETRY_POLICY
        self.faults_injected = 0  #: injected faults that raised on this window
        self.retries = 0          #: retry attempts performed on this window

    # ------------------------------------------------------------------
    # creation / destruction (collective)
    # ------------------------------------------------------------------
    @classmethod
    def allocate(
        cls,
        comm: Communicator,
        nbytes: int,
        disp_unit: int = 1,
        info: Mapping[str, Any] | None = None,
    ) -> "Window":
        """Collectively allocate a window of ``nbytes`` local bytes."""
        if nbytes < 0:
            raise WindowError(f"negative window size: {nbytes}")
        buf = np.zeros(nbytes, dtype=np.uint8)
        return cls.create(comm, buf, disp_unit=disp_unit, info=info)

    @classmethod
    def create(
        cls,
        comm: Communicator,
        buffer: np.ndarray,
        disp_unit: int = 1,
        info: Mapping[str, Any] | None = None,
    ) -> "Window":
        """Collectively create a window over an existing local buffer."""
        if disp_unit < 1:
            raise WindowError(f"disp_unit must be >= 1, got {disp_unit}")
        local = np.ascontiguousarray(buffer).view(np.uint8).reshape(-1)
        shared = comm.allgather(
            {"buf": local, "du": disp_unit, "info": dict(info or {})}
        )
        # Rank 0 constructs the shared group; every rank receives the same
        # object through the broadcast, so win_id and the freed flag are
        # genuinely shared state (one address space).
        group: _WindowGroup | None = None
        if comm.rank == 0:
            group = _WindowGroup(comm.size)
            group.buffers = [s["buf"] for s in shared]
            group.disp_units = [s["du"] for s in shared]
            group.infos = [s["info"] for s in shared]
        group = comm.bcast(group, root=0)
        return cls(comm, group)

    def free(self) -> None:
        """Collectively free the window."""
        self._require_no_epoch("free")
        self._comm.barrier()
        self._group.freed = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def comm(self) -> Communicator:
        return self._comm

    @property
    def win_id(self) -> int:
        return self._group.win_id

    @property
    def info(self) -> Mapping[str, Any]:
        """Info keys this rank passed at creation."""
        return self._group.infos[self._comm.rank]

    @property
    def local_buffer(self) -> np.ndarray:
        """This rank's exposed memory as a uint8 array."""
        return self._group.buffers[self._comm.rank]

    def local_view(self, dtype: np.dtype | type) -> np.ndarray:
        """This rank's exposed memory viewed with a NumPy dtype."""
        return self.local_buffer.view(np.dtype(dtype))

    def size_of(self, rank: int) -> int:
        """Exposed bytes of ``rank``'s window."""
        self._check_rank(rank)
        return int(self._group.buffers[rank].nbytes)

    @property
    def bytes_transferred(self) -> int:
        """Total payload bytes this rank moved over the (virtual) network."""
        return self._bytes_transferred

    @property
    def bytes_by_distance(self) -> dict:
        """Payload bytes split by :class:`~repro.net.Distance` class.

        Lets applications see how much of their RMA traffic stayed on-node
        vs crossed group boundaries — the locality the Fig. 1 hierarchy is
        about.
        """
        return dict(self._bytes_by_distance)

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def lock(self, rank: int, lock_type: str = LOCK_SHARED) -> None:
        """Open a passive-target access epoch towards ``rank``."""
        self._check_alive()
        self._check_rank(rank)
        if lock_type not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            raise EpochError(f"unknown lock type: {lock_type}")
        if self._locked_all or rank in self._locked:
            raise EpochError(f"rank {rank} is already locked")
        if self._fence_active:
            raise EpochError("lock inside a fence epoch")
        self._locked.add(rank)
        if self._obs.enabled:
            self._emit(RMA_LOCK, target=rank, lock_type=lock_type)

    def lock_all(self) -> None:
        """Open a passive-target access epoch towards every rank."""
        self._check_alive()
        if self._locked_all or self._locked or self._fence_active:
            raise EpochError("lock_all inside an existing epoch")
        self._locked_all = True
        if self._obs.enabled:
            self._emit(RMA_LOCK, target=None, lock_type=LOCK_SHARED)

    def unlock(self, rank: int) -> None:
        """Complete outstanding ops to ``rank`` and close its epoch."""
        self._check_alive()
        if rank not in self._locked:
            raise EpochError(
                f"unlock({rank}): rank {rank} is not locked by rank "
                f"{self._comm.rank} ({self._epoch_state()})"
            )
        if self._faults is None:
            self._unlock_once(rank)
        else:
            self._resilient("flush", rank, lambda: self._unlock_once(rank))

    def _unlock_once(self, rank: int) -> None:
        t0 = self._comm.proc.clock
        self._inject_sync_fault(rank)
        self._complete({rank})
        self._locked.discard(rank)
        if self._obs.enabled:
            self._emit(
                RMA_UNLOCK, duration=self._comm.proc.clock - t0, target=rank
            )
        self._close_epoch({rank})

    def unlock_all(self) -> None:
        """Complete all outstanding ops and close the lock_all epoch."""
        self._check_alive()
        if not self._locked_all:
            raise EpochError(
                f"unlock_all on rank {self._comm.rank} without a lock_all "
                f"epoch ({self._epoch_state()})"
            )
        if self._faults is None:
            self._unlock_all_once()
        else:
            self._resilient("flush", None, self._unlock_all_once)

    def _unlock_all_once(self) -> None:
        t0 = self._comm.proc.clock
        self._inject_sync_fault(None)
        self._complete(None)
        self._locked_all = False
        if self._obs.enabled:
            self._emit(
                RMA_UNLOCK, duration=self._comm.proc.clock - t0, target=None
            )
        self._close_epoch(None)

    def flush(self, rank: int) -> None:
        """Complete outstanding ops to ``rank`` without releasing the lock.

        Like the paper (Listing 1: ``MPI_Win_flush(peer, win); //closes
        epoch``) we treat flush as an epoch-closure event for consistency
        purposes: ``eph`` is bumped and closure hooks fire.
        """
        self._check_alive()
        self._require_epoch(rank, "flush")
        if self._faults is None:
            self._flush_once(rank)
        else:
            self._resilient("flush", rank, lambda: self._flush_once(rank))

    def _flush_once(self, rank: int) -> None:
        t0 = self._comm.proc.clock
        self._inject_sync_fault(rank)
        self._complete({rank})
        if self._obs.enabled:
            self._emit(
                RMA_FLUSH, duration=self._comm.proc.clock - t0, target=rank
            )
        self._close_epoch({rank})

    def flush_all(self) -> None:
        """Complete all outstanding ops without releasing any lock."""
        self._check_alive()
        if not (self._locked_all or self._locked):
            raise EpochError("flush_all outside an access epoch")
        if self._faults is None:
            self._flush_all_once()
        else:
            self._resilient("flush", None, self._flush_all_once)

    def _flush_all_once(self) -> None:
        t0 = self._comm.proc.clock
        self._inject_sync_fault(None)
        self._complete(None)
        if self._obs.enabled:
            self._emit(
                RMA_FLUSH, duration=self._comm.proc.clock - t0, target=None
            )
        self._close_epoch(None)

    def fence(self) -> None:
        """Active-target synchronisation: collective epoch boundary."""
        self._check_alive()
        if self._locked_all or self._locked or self._access_group:
            raise EpochError("fence inside another access epoch")
        t0 = self._comm.proc.clock
        self._complete(None)
        self._comm.barrier()
        if self._obs.enabled:
            self._emit(RMA_FENCE, duration=self._comm.proc.clock - t0)
        self._close_epoch(None)

    # -- context-manager epoch APIs ------------------------------------
    @contextmanager
    def lock_epoch(
        self, rank: int, lock_type: str = LOCK_SHARED
    ) -> Iterator["Window"]:
        """Scoped passive-target epoch towards one rank.

        ``with win.lock_epoch(peer): ...`` locks on entry and unlocks on
        exit — the unlock completes all outstanding operations (an implicit
        flush) and closes the epoch.  Call :meth:`flush` inside the block
        to close intermediate epochs, exactly as with explicit calls.
        """
        self.lock(rank, lock_type)
        try:
            yield self
        finally:
            self.unlock(rank)

    @contextmanager
    def lock_all_epoch(self) -> Iterator["Window"]:
        """Scoped passive-target epoch towards every rank (lock_all)."""
        self.lock_all()
        try:
            yield self
        finally:
            self.unlock_all()

    @contextmanager
    def fence_epoch(self) -> Iterator["Window"]:
        """Scoped active-target epoch: fence on entry *and* exit.

        RMA calls are permitted inside the block.  This scoped form is how
        active-target communication epochs are expressed here; a bare
        :meth:`fence` stays a pure synchronisation/completion boundary, so
        the epoch can never be left open by accident.
        """
        self.fence()
        self._fence_active = True
        try:
            yield self
        finally:
            self._fence_active = False
            self.fence()

    # -- generalised active target (PSCW) ------------------------------
    def start(self, group: set[int] | list[int]) -> None:
        """Open an access epoch towards the ranks in ``group`` (MPI_Win_start).

        The simulated runtime has no asynchronous target-side progress, so
        ``start`` pairs with the targets' :meth:`post` purely through the
        shared group bookkeeping; time-wise it charges one notification
        latency per target.
        """
        self._check_alive()
        if (
            self._locked_all
            or self._locked
            or self._access_group
            or self._fence_active
        ):
            raise EpochError("start inside an existing access epoch")
        targets = set(group)
        for r in targets:
            self._check_rank(r)
        self._access_group = targets
        perf = self._comm.perf
        for r in targets:
            self._comm.proc.advance(perf.issue_time(self._comm.rank, r, 0))

    def complete(self) -> None:
        """Close the PSCW access epoch (MPI_Win_complete)."""
        self._check_alive()
        if not self._access_group:
            raise EpochError("complete without a matching start")
        t0 = self._comm.proc.clock
        self._complete(None)
        group = self._access_group
        self._access_group = set()
        if self._obs.enabled:
            # Completion is an epoch-closure event like flush; telemetry
            # consumers (the repro.analysis sanitizer in particular) rely
            # on seeing it to retire this origin's outstanding ops.
            self._emit(
                RMA_FLUSH,
                duration=self._comm.proc.clock - t0,
                target=None,
                pscw=True,
            )
        self._close_epoch(set(group))

    def post(self, group: set[int] | list[int]) -> None:
        """Expose the local window to ``group`` (MPI_Win_post).

        Functionally a no-op in the single-address-space simulation (the
        memory is always reachable); retained for API fidelity and charged a
        notification latency.
        """
        self._check_alive()
        targets = set(group)
        for r in targets:
            self._check_rank(r)
        self._exposure_group = targets

    def wait(self) -> None:
        """Wait for all access epochs on the local window (MPI_Win_wait).

        The deterministic scheduler cannot block a target on specific
        initiators without a full matching protocol; programs bracket PSCW
        phases with a barrier, which dominates its cost anyway.
        """
        self._check_alive()
        self._exposure_group = set()
        self._comm.barrier()

    def add_epoch_close_hook(
        self, hook: Callable[["Window", set[int] | None], None]
    ) -> None:
        """Register ``hook(window, targets)`` to run at each epoch closure.

        ``targets`` is the set of target ranks whose operations were
        completed, or ``None`` meaning "all".  Hooks run *before* ``eph`` is
        incremented and may charge virtual time via the communicator's
        process handle.
        """
        self._epoch_close_hooks.append(hook)

    # ------------------------------------------------------------------
    # one-sided operations
    # ------------------------------------------------------------------
    def get(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """Post a non-blocking get; returns the payload size in bytes.

        ``origin`` must be a contiguous NumPy array with room for the payload
        (``datatype.size * count`` bytes).  ``target_disp`` is expressed in
        the target's ``disp_unit``.  The data is visible in ``origin``
        immediately (simulation simplification) but the virtual clock only
        accounts completion at the next synchronisation.

        Under an active fault plan an injected transient failure is
        retried with exponential backoff (charged in virtual time) up to
        the retry policy's attempt budget; re-issuing moves the same bytes,
        so results stay bit-identical to a fault-free run.
        """
        datatype, count = self._resolve_dtype(origin, count, datatype)
        if self._faults is None:
            return self._get_once(origin, target_rank, target_disp, count, datatype)
        return self._resilient(
            "get",
            target_rank,
            lambda: self._get_once(origin, target_rank, target_disp, count, datatype),
        )

    def _get_once(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int,
        datatype: Datatype,
    ) -> int:
        payload = self._access(target_rank, target_disp, count, datatype, "get")
        origin_bytes = self._origin_bytes(origin)
        nbytes = len(payload)
        if origin_bytes.nbytes < nbytes:
            raise WindowError(
                f"origin buffer too small: {origin_bytes.nbytes} < {nbytes}"
            )
        origin_bytes[:nbytes] = payload
        self._inject_op_fault("get", target_rank, nbytes)
        self._post(target_rank, nbytes)
        if self._obs.enabled:
            self._emit(
                RMA_GET,
                target=target_rank,
                disp=target_disp,
                nbytes=nbytes,
                **self._span_attrs(target_rank, target_disp, count, datatype),
                **_origin_attrs(origin_bytes, nbytes),
            )
        return nbytes

    def put(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """Post a non-blocking put; returns the payload size in bytes."""
        datatype, count = self._resolve_dtype(origin, count, datatype)
        if self._faults is None:
            return self._put_once(origin, target_rank, target_disp, count, datatype)
        return self._resilient(
            "put",
            target_rank,
            lambda: self._put_once(origin, target_rank, target_disp, count, datatype),
        )

    def _put_once(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int,
        datatype: Datatype,
    ) -> int:
        origin_bytes = self._origin_bytes(origin)
        nbytes = datatype.transfer_size(count)
        if origin_bytes.nbytes < nbytes:
            raise WindowError(
                f"origin buffer too small: {origin_bytes.nbytes} < {nbytes}"
            )
        self._access(
            target_rank, target_disp, count, datatype, "put",
            payload=origin_bytes[:nbytes],
        )
        self._inject_op_fault("put", target_rank, nbytes)
        self._post(target_rank, nbytes)
        if self._obs.enabled:
            self._emit(
                RMA_PUT,
                target=target_rank,
                disp=target_disp,
                nbytes=nbytes,
                **self._span_attrs(target_rank, target_disp, count, datatype),
                **_origin_attrs(origin_bytes, nbytes),
            )
        return nbytes

    def get_blocking(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """Convenience: ``get`` + ``flush(target_rank)``."""
        n = self.get(origin, target_rank, target_disp, count, datatype)
        self.flush(target_rank)
        return n

    def rget(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> Request:
        """Request-based get (MPI_Rget): complete with ``Request.wait``."""
        self.get(origin, target_rank, target_disp, count, datatype)
        return Request(self, self._pending[-1])

    def rput(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> Request:
        """Request-based put (MPI_Rput)."""
        self.put(origin, target_rank, target_disp, count, datatype)
        return Request(self, self._pending[-1])

    def accumulate(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        op: str = "sum",
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """MPI_Accumulate with a predefined element-wise op.

        ``op`` is ``"sum"``, ``"max"``, ``"min"`` or ``"replace"``; the
        element type is the origin array's dtype (derived datatypes are not
        supported for accumulates, matching common MPI restrictions).
        Accumulates are never cached by CLaMPI (they are writes).
        """
        datatype, count = self._resolve_dtype(origin, count, datatype)
        if not datatype.is_contiguous():
            raise WindowError("accumulate requires a contiguous datatype")
        self._check_alive()
        self._check_rank(target_rank)
        self._require_epoch(target_rank, "accumulate")
        if target_disp < 0:
            raise WindowError(f"negative displacement: {target_disp}")
        nbytes = datatype.transfer_size(count)
        obuf = self._origin_bytes(origin)[:nbytes]
        tbuf = self._group.buffers[target_rank]
        base = target_disp * self._group.disp_units[target_rank]
        if base + nbytes > tbuf.nbytes:
            raise WindowError(
                f"accumulate out of bounds: [{base}, {base + nbytes}) > "
                f"window size {tbuf.nbytes} at rank {target_rank}"
            )
        np_dtype = origin.dtype
        src = obuf.view(np_dtype)
        dst = tbuf[base : base + nbytes].view(np_dtype)
        if op == "sum":
            dst += src
        elif op == "max":
            np.maximum(dst, src, out=dst)
        elif op == "min":
            np.minimum(dst, src, out=dst)
        elif op == "replace":
            dst[:] = src
        else:
            raise WindowError(f"unknown accumulate op: {op}")
        self._post(target_rank, nbytes)
        if self._obs.enabled:
            self._emit(
                RMA_ACCUMULATE,
                target=target_rank,
                disp=target_disp,
                nbytes=nbytes,
                op=op,
                base=base,
                span=nbytes,
                **_origin_attrs(obuf, nbytes),
            )
        return nbytes

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve_dtype(
        self, origin: np.ndarray, count: int | None, datatype: Datatype | None
    ) -> tuple[Datatype, int]:
        if datatype is None:
            datatype = from_numpy(origin.dtype) if origin.dtype != np.uint8 else BYTE
        if count is None:
            if datatype.size == 0:
                count = 0
            else:
                count = origin.nbytes // datatype.size
        if count < 0:
            raise WindowError(f"negative count: {count}")
        return datatype, count

    @staticmethod
    def _origin_bytes(origin: np.ndarray) -> np.ndarray:
        if not origin.flags["C_CONTIGUOUS"]:
            raise WindowError("origin buffer must be C-contiguous")
        return origin.view(np.uint8).reshape(-1)

    def _span_attrs(
        self, target_rank: int, target_disp: int, count: int, datatype: Datatype
    ) -> dict[str, int]:
        """Byte footprint of an op at the target, for telemetry consumers.

        ``base`` is the first byte touched in the target window, ``span``
        the exact extent of the flattened datatype — what the
        :mod:`repro.analysis` sanitizer uses for interval-overlap checks
        (touching-but-disjoint ranges must not be conflated).  Only built
        on the obs-enabled path.
        """
        blocks = datatype.flatten(count)
        span = blocks[-1][0] + blocks[-1][1] if blocks else 0
        return {
            "base": target_disp * self._group.disp_units[target_rank],
            "span": span,
        }

    def _access(
        self,
        target_rank: int,
        target_disp: int,
        count: int,
        datatype: Datatype,
        kind: str,
        payload: np.ndarray | None = None,
    ) -> np.ndarray:
        """Gather (get) or scatter (put) payload bytes at the target."""
        self._check_alive()
        self._check_rank(target_rank)
        self._require_epoch(target_rank, kind)
        if target_disp < 0:
            raise WindowError(f"negative displacement: {target_disp}")
        tbuf = self._group.buffers[target_rank]
        base = target_disp * self._group.disp_units[target_rank]
        blocks = datatype.flatten(count)
        span = blocks[-1][0] + blocks[-1][1] if blocks else 0
        if base + span > tbuf.nbytes:
            raise WindowError(
                f"{kind} out of bounds: disp {base} + span {span} > "
                f"window size {tbuf.nbytes} at rank {target_rank}"
            )
        if kind == "get":
            if len(blocks) == 1:
                off, size = blocks[0]
                return tbuf[base + off : base + off + size]
            parts = [tbuf[base + off : base + off + size] for off, size in blocks]
            return np.concatenate(parts) if parts else np.empty(0, np.uint8)
        # put: scatter payload into the target layout
        assert payload is not None
        cursor = 0
        for off, size in blocks:
            tbuf[base + off : base + off + size] = payload[cursor : cursor + size]
            cursor += size
        return payload

    def _post(self, target_rank: int, nbytes: int) -> None:
        proc = self._comm.proc
        perf = self._comm.perf
        issue = perf.issue_time(self._comm.rank, target_rank, nbytes)
        proc.advance(issue)
        duration = perf.get_time(self._comm.rank, target_rank, nbytes)
        if self._faults is not None:
            # Congestion jitter: stall the transfer beyond the model-priced
            # duration.  A stall that blows the per-op timeout degenerates
            # into a (retryable) timeout failure.
            stall = self._faults.stall_for(target_rank, duration)
            if stall > 0.0:
                duration += stall
                if self._obs.enabled:
                    self._emit(
                        FAULT_INJECTED, op="jitter", target=target_rank, stall=stall
                    )
                timeout = self._retry.op_timeout
                if timeout is not None and duration > timeout:
                    proc.advance(timeout)
                    self.faults_injected += 1
                    if self._obs.enabled:
                        self._emit(
                            FAULT_INJECTED,
                            op="timeout",
                            target=target_rank,
                            wasted=timeout,
                        )
                    raise RMATimeoutError(
                        f"transfer of {nbytes} B to rank {target_rank} stalled "
                        f"{stall:.3e}s past the {timeout:.3e}s op timeout"
                    )
        self._pending.append(_PendingOp(target_rank, proc.clock, duration))
        self._bytes_transferred += nbytes
        dist = perf.topology.distance(self._comm.rank, target_rank)
        self._bytes_by_distance[dist] = self._bytes_by_distance.get(dist, 0) + nbytes
        if self._obs.enabled:
            # One span per charged transfer: how the net.model priced it.
            self._emit(
                NET_TRANSFER,
                duration=duration,
                target=target_rank,
                nbytes=nbytes,
                distance=dist.name,
                issue=issue,
            )

    # -- fault injection / resilience ----------------------------------
    def _inject_op_fault(self, op: str, target: int, nbytes: int) -> None:
        """Consult the injector for a get/put site; raise on a fired rule.

        A transient failure still costs time: the initiator wasted the
        issue overhead plus the round trip before the NIC reported the
        error (capped at the per-op timeout when one is configured).
        """
        inj = self._faults
        if inj is None:
            return
        if inj.fire(op, target) is None:
            return
        perf = self._comm.perf
        wasted = perf.issue_time(self._comm.rank, target, nbytes) + perf.get_time(
            self._comm.rank, target, nbytes
        )
        timeout = self._retry.op_timeout
        if timeout is not None:
            wasted = min(wasted, timeout)
        self._comm.proc.advance(wasted)
        self.faults_injected += 1
        if self._obs.enabled:
            self._emit(
                FAULT_INJECTED, op=op, target=target, nbytes=nbytes, wasted=wasted
            )
        raise TransientNetworkError(
            f"injected transient {op} failure towards rank {target} "
            f"({nbytes} B)"
        )

    def _inject_sync_fault(self, target: int | None) -> None:
        """Consult the injector for a flush/unlock site; raise on fire."""
        inj = self._faults
        if inj is None:
            return
        if inj.fire("flush", target) is None:
            return
        wasted = self._retry.op_timeout or 10 * SYNC_OVERHEAD
        self._comm.proc.advance(wasted)
        self.faults_injected += 1
        if self._obs.enabled:
            self._emit(FAULT_INJECTED, op="flush", target=target, wasted=wasted)
        where = "all ranks" if target is None else f"rank {target}"
        raise RMATimeoutError(f"injected synchronisation timeout towards {where}")

    def _resilient(self, op: str, target: int | None, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` retrying transient faults with virtual-time backoff.

        Retries :class:`TransientNetworkError` and :class:`RMATimeoutError`
        up to the policy's attempt budget; each backoff delay is charged to
        the rank's virtual clock and drawn deterministically from the
        injector's ``backoff`` stream.
        """
        policy = self._retry
        attempt = 1
        while True:
            try:
                return fn()
            except (TransientNetworkError, RMATimeoutError) as exc:
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.delay(attempt, self._faults.draw("backoff"))
                self._comm.proc.advance(delay)
                self.retries += 1
                if self._obs.enabled:
                    self._emit(
                        FAULT_RETRY,
                        op=op,
                        target=target,
                        attempt=attempt,
                        delay=delay,
                        error=type(exc).__name__,
                    )
                attempt += 1

    def _emit(self, kind: str, duration: float = 0.0, **attrs: Any) -> None:
        """Publish one telemetry event stamped (rank, virtual time, epoch)."""
        comm = self._comm
        self._obs.emit(
            Event(
                kind,
                comm.rank,
                comm.proc.clock,
                self.eph,
                self.win_id,
                duration=duration,
                attrs=attrs,
            )
        )

    def _complete(self, targets: set[int] | None) -> None:
        """Advance the clock past completion of the selected pending ops."""
        proc = self._comm.proc
        done_at = proc.clock
        remaining: list[_PendingOp] = []
        for op in self._pending:
            if targets is None or op.target in targets:
                done_at = max(done_at, op.issue_clock + op.duration)
            else:
                remaining.append(op)
        self._pending = remaining
        if done_at > proc.clock:
            proc.advance(done_at - proc.clock)
        proc.advance(SYNC_OVERHEAD)

    def _close_epoch(self, targets: set[int] | None) -> None:
        for hook in self._epoch_close_hooks:
            hook(self, targets)
        self.eph += 1

    def _epoch_state(self) -> str:
        """Human-readable summary of this rank's current epoch state."""
        parts = []
        if self._locked_all:
            parts.append("lock_all held")
        if self._locked:
            parts.append(f"locked ranks {sorted(self._locked)}")
        if self._access_group:
            parts.append(f"PSCW access group {sorted(self._access_group)}")
        if self._fence_active:
            parts.append("inside a fence epoch")
        state = ", ".join(parts) if parts else "no epoch open"
        return f"epoch state: {state}; {self.eph} epochs concluded"

    def _require_epoch(self, rank: int, what: str) -> None:
        if not (
            self._locked_all
            or self._fence_active
            or rank in self._locked
            or rank in self._access_group
        ):
            raise EpochError(
                f"{what} towards rank {rank} outside an access epoch "
                "(call lock/lock_all/start first)"
            )

    def _require_no_epoch(self, what: str) -> None:
        if (
            self._locked_all
            or self._locked
            or self._access_group
            or self._fence_active
        ):
            raise EpochError(f"{what} called inside an open access epoch")

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._comm.size:
            raise WindowError(f"target rank {rank} out of range [0, {self._comm.size})")

    def _check_alive(self) -> None:
        if self._group.freed:
            raise WindowError("window has been freed")
