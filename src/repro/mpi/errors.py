"""Exception hierarchy for the simulated MPI layer."""

from __future__ import annotations


class MPIError(RuntimeError):
    """Base class for all simulated-MPI failures."""


class WindowError(MPIError):
    """Invalid window usage (bad rank, out-of-bounds access, freed window)."""


class EpochError(MPIError):
    """RMA call issued outside an access epoch, or invalid epoch nesting."""


class DatatypeError(MPIError):
    """Malformed datatype construction or use."""
