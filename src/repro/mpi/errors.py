"""Exception hierarchy for the simulated MPI layer."""

from __future__ import annotations


class MPIError(RuntimeError):
    """Base class for all simulated-MPI failures."""


class WindowError(MPIError):
    """Invalid window usage (bad rank, out-of-bounds access, freed window)."""


class EpochError(MPIError):
    """RMA call issued outside an access epoch, or invalid epoch nesting."""


class DatatypeError(MPIError):
    """Malformed datatype construction or use."""


class RMARaceError(MPIError):
    """Conflicting RMA accesses detected by the dynamic sanitizer.

    Raised in :class:`repro.analysis.Sanitizer` *strict* mode at the call
    site of the second of two conflicting operations (put/get, put/put or
    mixed-op accumulate byte-range overlap within one exposure epoch, or a
    cache hit served after a foreign put invalidated the range).  The
    message carries both conflicting op records.
    """


class EpochMisuseError(EpochError):
    """Epoch/completion discipline violation detected by the sanitizer.

    Raised in strict mode for hazards the window layer itself cannot see:
    reuse of a local origin buffer before the get that fills it completed
    (flush), and access epochs still open when the analysis scope closes
    (epoch leaks).
    """


class FaultError(MPIError):
    """Base class for failures raised by the fault-injection subsystem.

    These model *environmental* failures (a flaky interconnect, memory
    pressure) rather than API misuse: they are only ever raised while a
    :class:`repro.faults.FaultInjector` is attached to the job, and the
    transient flavours are retried by the resilience layer before they
    surface to the application.
    """


class TransientNetworkError(FaultError):
    """An injected transient get/put failure (NIC/network-level error).

    Retryable: the MPI window layer re-issues the operation with
    exponential backoff (in virtual time) up to the configured attempt
    budget before letting the error propagate.
    """


class RMATimeoutError(FaultError):
    """An RMA operation or synchronisation exceeded its virtual-time budget.

    Raised for injected flush/unlock failures and for transfers whose
    (jitter-stalled) completion time exceeds the per-op timeout of the
    active :class:`repro.faults.RetryPolicy`.  Retryable, like
    :class:`TransientNetworkError`.
    """


class StorageFault(FaultError):
    """An injected cache-storage allocation failure (memory pressure).

    Not retryable at the MPI layer: the caching engine degrades instead —
    the access falls back to a direct get and, after repeated faults, the
    cache quarantines itself (see ``docs/resilience.md``).
    """


class TargetFailedError(MPIError):
    """An RMA operation targeted a rank that crashed permanently.

    Raised fail-fast by the ``Recovery`` interceptor in the
    :mod:`repro.rma` pipeline — no time is charged and no retry happens,
    because crash-stop failures (unlike :class:`TransientNetworkError`)
    never heal.  The caching engine may still satisfy reads from
    epoch-consistent entries in ``serve-stale`` recovery mode, in which
    case this error is not raised (see ``docs/resilience.md``).
    """

    def __init__(self, target: int, op: str = "op"):
        super().__init__(
            f"RMA {op} targets rank {target}, which crashed permanently"
        )
        self.target = target
        self.op = op


class WindowRevokedError(WindowError):
    """The window was revoked after a failure; all further ops are refused.

    The simulated analogue of ULFM's ``MPI_Win_revoke`` state: once any
    rank calls :meth:`repro.mpi.window.Window.revoke`, every rank's
    operations on that window raise this error until the survivors
    re-create the window via :meth:`~repro.mpi.window.Window.shrink`.
    """
