"""Simulated MPI-3 one-sided (RMA) library.

This package is a from-scratch, single-machine re-implementation of the
slice of MPI-3 that CLaMPI builds on (paper Sec. I-A):

* :class:`~repro.mpi.simmpi.SimMPI` — launcher: runs one program per rank on
  the deterministic :mod:`repro.runtime` scheduler.
* :class:`~repro.mpi.comm.Communicator` — ``rank``/``size``, ``barrier``,
  ``bcast``, ``allgather``, ``allreduce``, ``gather``.
* :class:`~repro.mpi.window.Window` — ``win_allocate``/``win_create``,
  passive-target epochs (``lock``/``unlock``/``lock_all``/``unlock_all``/
  ``flush``/``flush_all``) and active-target ``fence``; non-blocking ``get``
  and ``put`` completed at synchronisation calls; per-window epoch counter
  ``eph`` incremented at every epoch-closure event.
* :mod:`~repro.mpi.datatypes` — an MPI datatype library with flattening to
  ``(offset, size)`` block lists (paper Sec. II-B).

Timing: every operation charges virtual time through the job's
:class:`repro.net.PerfModel`; non-blocking gets charge injection cost at
issue time and complete (clock-wise) at the next synchronisation, which is
what makes the overlap study (Fig. 8) reproducible.
"""

from repro.mpi.comm import Communicator, ReduceOp
from repro.mpi.datatypes import (
    BYTE,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    Contiguous,
    Datatype,
    Indexed,
    Predefined,
    Vector,
)
from repro.mpi.errors import (
    EpochError,
    EpochMisuseError,
    FaultError,
    MPIError,
    RMARaceError,
    RMATimeoutError,
    StorageFault,
    TransientNetworkError,
    WindowError,
)
from repro.mpi.simmpi import MPIProcess, SimMPI
from repro.mpi.window import LOCK_EXCLUSIVE, LOCK_SHARED, Request, Window

__all__ = [
    "BYTE",
    "Communicator",
    "Contiguous",
    "Datatype",
    "EpochError",
    "EpochMisuseError",
    "FLOAT32",
    "FaultError",
    "FLOAT64",
    "INT32",
    "INT64",
    "Indexed",
    "LOCK_EXCLUSIVE",
    "LOCK_SHARED",
    "MPIError",
    "MPIProcess",
    "Predefined",
    "RMARaceError",
    "RMATimeoutError",
    "ReduceOp",
    "Request",
    "SimMPI",
    "StorageFault",
    "TransientNetworkError",
    "Vector",
    "Window",
    "WindowError",
]
