"""Communicators and collective operations for the simulated MPI layer.

Collectives are built on the runtime's payload-carrying barrier
(:meth:`repro.runtime.SimProcess.sync`).  Their virtual-time cost follows the
classic logarithmic tree model ``ceil(log2 P) * (alpha + nbytes/beta)`` using
the remote-group network parameters — precise enough for the paper's
experiments, where collectives only delimit phases and never dominate.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Any, Callable, Sequence

from repro.net import Distance, PerfModel
from repro.runtime import SimProcess


class ReduceOp(Enum):
    """Reduction operators for :meth:`Communicator.allreduce`."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"
    PROD = "prod"
    LAND = "land"
    LOR = "lor"


_REDUCERS: dict[ReduceOp, Callable[[Sequence[Any]], Any]] = {
    ReduceOp.SUM: lambda xs: sum(xs[1:], start=xs[0]),
    ReduceOp.MAX: max,
    ReduceOp.MIN: min,
    ReduceOp.PROD: lambda xs: math.prod(xs),
    ReduceOp.LAND: all,
    ReduceOp.LOR: any,
}


class Communicator:
    """A group of ranks with collective operations.

    One :class:`Communicator` object exists *per rank* (it carries the local
    rank), but all instances of the same communicator share an id so that
    sync points line up.
    """

    def __init__(
        self,
        proc: SimProcess,
        perf: PerfModel,
        ranks: Sequence[int] | None = None,
        *,
        faults: Any = None,
        retry: Any = None,
    ):
        self._proc = proc
        self._perf = perf
        #: per-rank fault injector (:class:`repro.faults.FaultInjector`)
        #: or ``None`` for a fault-free job
        self.faults = faults
        #: retry/backoff policy (:class:`repro.faults.RetryPolicy`) used by
        #: windows created over this communicator when faults are active
        self.retry = retry
        self._ranks = list(ranks) if ranks is not None else list(range(proc.nprocs))
        self._rank_set = frozenset(self._ranks)
        if proc.rank not in self._rank_set:
            raise ValueError(f"rank {proc.rank} not in communicator group")
        if len(self._ranks) != proc.nprocs:
            # The only proper subgroup the runtime supports is the ULFM
            # shrink result: exactly the ranks that survived all crashes.
            failed = getattr(proc, "failed_ranks", frozenset())
            live = [r for r in range(proc.nprocs) if r not in failed]
            if sorted(self._ranks) != live:
                raise NotImplementedError(
                    "sub-communicators are not supported by the simulated "
                    "runtime (only shrinking to the post-failure survivors)"
                )

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._proc.rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._ranks)

    @property
    def proc(self) -> SimProcess:
        """Underlying runtime process handle."""
        return self._proc

    @property
    def perf(self) -> PerfModel:
        """Performance model of the job."""
        return self._perf

    @property
    def time(self) -> float:
        """Current virtual time of the calling rank (seconds)."""
        return self._proc.clock

    @property
    def ranks(self) -> tuple[int, ...]:
        """World ranks in this communicator's group."""
        return tuple(self._ranks)

    @property
    def failed_ranks(self) -> frozenset[int]:
        """Group members that have crashed so far (local knowledge)."""
        return frozenset(self._proc.failed_ranks) & self._rank_set

    @property
    def alive(self) -> tuple[int, ...]:
        """Group members not known to have crashed."""
        failed = self._proc.failed_ranks
        return tuple(r for r in self._ranks if r not in failed)

    def contains(self, rank: int) -> bool:
        """Is ``rank`` (a world rank) a member of this communicator?"""
        return rank in self._rank_set

    # ------------------------------------------------------------------
    def _tree_cost(self, nbytes: int) -> float:
        rounds = max(1, math.ceil(math.log2(max(2, self.size))))
        per_round = self._perf.network.transfer_time(Distance.REMOTE_GROUP, nbytes)
        return rounds * per_round

    def barrier(self) -> None:
        """Synchronise all ranks; clocks align to max + tree latency."""
        self._proc.sync(extra_time=self._tree_cost(0))

    def allgather(self, value: Any, nbytes: int = 64) -> list[Any]:
        """Gather ``value`` from every rank to every rank.

        ``nbytes`` is the assumed per-rank payload for time accounting (the
        functional payload is an arbitrary Python object).
        """
        return self._proc.sync(payload=value, extra_time=self._tree_cost(nbytes))

    def bcast(self, value: Any, root: int = 0, nbytes: int = 64) -> Any:
        """Broadcast ``value`` from ``root``; other ranks pass anything."""
        self._check_rank(root)
        gathered = self._proc.sync(
            payload=value if self.rank == root else None,
            extra_time=self._tree_cost(nbytes),
        )
        return gathered[root]

    def gather(self, value: Any, root: int = 0, nbytes: int = 64) -> list[Any] | None:
        """Gather to ``root``; non-roots receive ``None``."""
        self._check_rank(root)
        gathered = self._proc.sync(payload=value, extra_time=self._tree_cost(nbytes))
        return gathered if self.rank == root else None

    def allreduce(self, value: Any, op: ReduceOp = ReduceOp.SUM, nbytes: int = 8) -> Any:
        """Reduce ``value`` across ranks with ``op``; all ranks get the result."""
        gathered = self._proc.sync(payload=value, extra_time=self._tree_cost(nbytes))
        live = [v for v in gathered if v is not None]
        return _REDUCERS[op](live)

    # -- failure agreement / shrinking (ULFM-style) ---------------------
    def agree_failures(self) -> frozenset[int]:
        """Collectively agree on the failed-rank set (one sync round).

        All live members contribute their local failure knowledge; the
        union is returned to everyone.  May itself raise
        :class:`~repro.runtime.RankRevokedError` if a member dies during
        the agreement — callers loop (see :mod:`repro.recovery`).
        """
        views = self._proc.sync(
            payload=self.failed_ranks,
            extra_time=self._tree_cost(8 * self.size),
        )
        agreed: set[int] = set()
        for v in views:
            if v:
                agreed |= v
        return frozenset(agreed)

    def shrink(self) -> "Communicator":
        """Agree on the failures, then build the survivor communicator."""
        failed = self.agree_failures()
        survivors = [r for r in self._ranks if r not in failed]
        return Communicator(
            self._proc,
            self._perf,
            survivors,
            faults=self.faults,
            retry=self.retry,
        )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._proc.nprocs:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        if rank not in self._rank_set:
            raise ValueError(
                f"rank {rank} is not a member of this communicator "
                f"(group {sorted(self._ranks)})"
            )
