"""Block-based direct-mapped software cache ("native" baseline).

This is the traditional vertical-caching design the paper contrasts CLaMPI
with (Sec. II and V): reads are rounded to fixed-size blocks, each block
maps to exactly one cache slot (direct mapping), and a miss blocks until
the whole containing block has been fetched.

Consequences measured in the paper and reproduced here:

* **internal fragmentation** — a 100-byte get occupies a whole block;
* **conflict misses tied to memory size** — with direct mapping the number
  of conflicts is "strictly related to the available memory size"
  (Fig. 12: native improves from ~820 us to ~400 us when its memory grows
  from 1 MiB to 4 MiB);
* **no overlap** — each miss performs a blocking get+flush.

Only contiguous requests are cached; derived-datatype requests fall through
to the raw window (the UPC cache had the same restriction).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.costmodel import CostModel
from repro.mpi.datatypes import Datatype
from repro.mpi.window import Window


@dataclass
class BlockCacheStats:
    """Hit/miss accounting of the native cache."""

    gets: int = 0
    block_hits: int = 0
    block_misses: int = 0
    bytes_from_cache: int = 0
    bytes_fetched: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.block_hits + self.block_misses
        return self.block_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


class BlockCachedWindow:
    """Direct-mapped block cache layered over a plain RMA window."""

    def __init__(self, window: Window, block_size: int = 1024, memory_bytes: int = 1 << 20):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if memory_bytes < block_size:
            raise ValueError("memory_bytes must hold at least one block")
        if any(du != 1 for du in window._group.disp_units):
            raise ValueError("BlockCachedWindow requires byte-addressed windows (disp_unit=1)")
        self._win = window
        self.block_size = block_size
        self.nblocks = memory_bytes // block_size
        self._data = np.zeros((self.nblocks, block_size), dtype=np.uint8)
        self._tag_target = np.full(self.nblocks, -1, dtype=np.int64)
        self._tag_block = np.full(self.nblocks, -1, dtype=np.int64)
        self._valid_bytes = np.zeros(self.nblocks, dtype=np.int64)
        self.stats = BlockCacheStats()
        self.cost = CostModel(
            memory=window.comm.perf.memory, sink=window.comm.proc.advance
        )
        self._fetch_buf = np.empty(block_size, dtype=np.uint8)

    # ------------------------------------------------------------------
    @property
    def raw(self) -> Window:
        return self._win

    def lock(self, rank: int, lock_type: str = "shared") -> None:
        self._win.lock(rank, lock_type)

    def lock_all(self) -> None:
        self._win.lock_all()

    def unlock(self, rank: int) -> None:
        self._win.unlock(rank)

    def unlock_all(self) -> None:
        self._win.unlock_all()

    def flush(self, rank: int) -> None:
        self._win.flush(rank)

    def flush_all(self) -> None:
        self._win.flush_all()

    @contextmanager
    def lock_epoch(
        self, rank: int, lock_type: str = "shared"
    ) -> Iterator["BlockCachedWindow"]:
        """Scoped passive-target epoch towards ``rank``."""
        with self._win.lock_epoch(rank, lock_type):
            yield self

    @contextmanager
    def lock_all_epoch(self) -> Iterator["BlockCachedWindow"]:
        """Scoped passive-target epoch towards every rank."""
        with self._win.lock_all_epoch():
            yield self

    @property
    def local_buffer(self) -> np.ndarray:
        return self._win.local_buffer

    def local_view(self, dtype) -> np.ndarray:
        return self._win.local_view(dtype)

    def invalidate(self) -> None:
        """Drop every cached block."""
        self._tag_target.fill(-1)
        self._tag_block.fill(-1)
        self._valid_bytes.fill(0)
        self.stats.invalidations += 1
        self.cost.invalidate(self.nblocks)

    def put(self, origin, target_rank, target_disp, count=None, datatype=None) -> int:
        return self._win.put(origin, target_rank, target_disp, count, datatype)

    # ------------------------------------------------------------------
    def get(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_disp: int,
        count: int | None = None,
        datatype: Datatype | None = None,
    ) -> int:
        """Block-cached get of a contiguous byte range."""
        dtype, count = self._win._resolve_dtype(origin, count, datatype)
        if not dtype.is_contiguous():
            # Derived layouts bypass the block cache entirely.
            return self._win.get(origin, target_rank, target_disp, count, dtype)
        nbytes = dtype.transfer_size(count)
        self.stats.gets += 1
        if nbytes == 0:
            return 0
        obuf = Window._origin_bytes(origin)
        du = self._win._group.disp_units[target_rank]
        start = target_disp * du
        end = start + nbytes
        win_size = self._win.size_of(target_rank)
        if end > win_size:
            raise ValueError(
                f"get out of bounds: [{start}, {end}) > window {win_size}"
            )
        B = self.block_size
        for blk in range(start // B, (end - 1) // B + 1):
            blo = blk * B
            bhi = min(blo + B, win_size)
            # intersection of the request with this block
            rlo = max(start, blo)
            rhi = min(end, bhi)
            part = rhi - rlo
            slot = self._slot(target_rank, blk)
            self.cost.probes(1)
            hit = (
                self._tag_target[slot] == target_rank
                and self._tag_block[slot] == blk
                and self._valid_bytes[slot] >= (rhi - blo)
            )
            if hit:
                self.stats.block_hits += 1
            else:
                self._fetch_block(target_rank, blk, blo, bhi, slot)
                self.stats.block_misses += 1
            src = self._data[slot, rlo - blo : rhi - blo]
            obuf[rlo - start : rhi - start] = src
            self.cost.copy(part)
            self.stats.bytes_from_cache += part
        return nbytes

    def get_blocking(self, origin, target_rank, target_disp, count=None, datatype=None) -> int:
        n = self.get(origin, target_rank, target_disp, count, datatype)
        self.flush(target_rank)
        return n

    def get_batch(self, requests) -> list[int]:
        """Element-wise batch: block granularity already amortises fetches.

        The block cache's whole point is that misses fetch aligned blocks
        (blocking, so a block is reusable immediately); there is nothing
        further to pipeline, and serving elements in order keeps its stats
        and eviction behaviour identical to scalar gets.
        """
        return [self.get(*req) for req in requests]

    # ------------------------------------------------------------------
    def _slot(self, target: int, blk: int) -> int:
        # Direct mapping: a cheap multiplicative hash of (target, block).
        x = (target * 0x9E3779B9 + blk * 0x85EBCA6B) & 0xFFFFFFFF
        return x % self.nblocks

    def _fetch_block(self, target: int, blk: int, blo: int, bhi: int, slot: int) -> None:
        """Blocking fetch of one whole block into its slot (no overlap)."""
        n = bhi - blo
        buf = self._fetch_buf[:n]
        self._win.get(buf, target, blo, count=n)
        self._win.flush(target)
        self._data[slot, :n] = buf
        self.cost.copy(n)
        self._tag_target[slot] = target
        self._tag_block[slot] = blk
        self._valid_bytes[slot] = n
        self.stats.bytes_fetched += n
