"""Baselines the paper compares against.

* :class:`~repro.baselines.block_cache.BlockCachedWindow` — the *native*
  comparator of Figs. 12/14: a traditional block-based, direct-mapped
  software cache in the style of the UPC runtime cache shipped with the
  Larkins et al. Barnes-Hut code.  Fixed block size ⇒ internal
  fragmentation; direct mapping ⇒ conflict misses tied to memory size
  (exactly the sensitivity Fig. 12 shows); blocking per-miss fetches ⇒ no
  overlap.
* the *foMPI* baseline is simply a plain :class:`repro.mpi.Window` (no
  caching layer at all).
"""

from repro.baselines.block_cache import BlockCachedWindow, BlockCacheStats

__all__ = ["BlockCachedWindow", "BlockCacheStats"]
