"""Public CLaMPI facade — the user-facing API of the caching library.

Mirrors how the paper's library is used from C:

===========================  =========================================
Paper / MPI                  This module
===========================  =========================================
``MPI_Win_allocate`` + info  :func:`window_allocate` (``mode=...``)
``MPI_Win_create`` + info    :func:`window_create`
cache-enabling a window      :func:`wrap`
``CLAMPI_Invalidate(win)``   :func:`invalidate`
info key ``clampi_mode``     :data:`INFO_MODE_KEY`
===========================  =========================================

Example (user-defined mode, paper Listing 1)::

    win = clampi.window_allocate(comm, nbytes, mode=clampi.Mode.USER_DEFINED)
    win.lock(peer)
    while not terminate:
        win.get(lbuf1, peer, off1)
        win.get(lbuf2, peer, off2)
        win.flush(peer)                 # closes epoch
        terminate = computation(lbuf1, lbuf2)
    clampi.invalidate(win)
    win.unlock(peer)
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

import numpy as np

from repro.core.config import INFO_MODE_KEY, AdaptiveParams, Config, EvictionPolicy, Mode
from repro.core.stats import AccessType, CacheStats
from repro.core.window import CachedWindow
from repro.mpi.comm import Communicator
from repro.mpi.window import Window

__all__ = [
    "AccessType",
    "AdaptiveParams",
    "CacheStats",
    "CachedWindow",
    "Config",
    "EvictionPolicy",
    "INFO_MODE_KEY",
    "Mode",
    "invalidate",
    "window_allocate",
    "window_create",
    "wrap",
]


def _merge(config: Config | None, mode: Mode | None) -> Config:
    cfg = config or Config()
    if mode is not None:
        cfg = replace(cfg, mode=mode)
    return cfg


def window_allocate(
    comm: Communicator,
    nbytes: int,
    disp_unit: int = 1,
    mode: Mode | None = None,
    config: Config | None = None,
    info: Mapping[str, Any] | None = None,
) -> CachedWindow:
    """Collectively allocate a caching-enabled window.

    ``mode`` overrides ``config.mode``; an explicit ``clampi_mode`` info key
    overrides both (it is the MPI-standard-compatible channel of Sec. III-A).
    """
    win = Window.allocate(comm, nbytes, disp_unit=disp_unit, info=info)
    return CachedWindow(win, _merge(config, mode))


def window_create(
    comm: Communicator,
    buffer: np.ndarray,
    disp_unit: int = 1,
    mode: Mode | None = None,
    config: Config | None = None,
    info: Mapping[str, Any] | None = None,
) -> CachedWindow:
    """Collectively cache-enable a window over an existing local buffer."""
    win = Window.create(comm, buffer, disp_unit=disp_unit, info=info)
    return CachedWindow(win, _merge(config, mode))


def wrap(
    window: Window, mode: Mode | None = None, config: Config | None = None
) -> CachedWindow:
    """Cache-enable an already-created plain window (local operation)."""
    return CachedWindow(window, _merge(config, mode))


def invalidate(window: CachedWindow) -> None:
    """``CLAMPI_Invalidate``: drop all cached entries of ``window``."""
    window.invalidate()
