"""Public CLaMPI facade — the user-facing API of the caching library.

Mirrors how the paper's library is used from C:

===========================  =========================================
Paper / MPI                  This module
===========================  =========================================
``MPI_Win_allocate`` + info  :func:`window_allocate` (``mode=...``)
``MPI_Win_create`` + info    :func:`window_create`
cache-enabling a window      :func:`wrap`
``CLAMPI_Invalidate(win)``   :func:`invalidate`
info key ``clampi_mode``     :data:`INFO_MODE_KEY`
===========================  =========================================

Configuration resolution
------------------------
Three channels can name the operational mode; :func:`resolve_config` is
the single place that arbitrates them.  Highest priority first:

1. ``info["clampi_mode"]`` — the MPI-standard-compatible channel of paper
   Sec. III-A (an installation can flip modes without touching code);
2. the ``mode=`` keyword — the pythonic shortcut;
3. ``config.mode`` — whatever the explicit :class:`Config` carries;
4. the :class:`Config` default (``TRANSPARENT``).

The eviction/admission **policy** resolves through the same funnel, by
:mod:`repro.core.policy` registry name.  Highest priority first:

1. ``info["clampi_policy"]`` — per-window info key (:data:`INFO_POLICY_KEY`);
2. the ``policy=`` keyword on :func:`window_allocate` / :func:`window_create`
   / :func:`wrap`;
3. ``config.policy`` — an explicit, non-default :class:`Config` value;
4. the ``CLAMPI_POLICY`` environment variable (:data:`ENV_POLICY_VAR`) —
   the channel of last resort, consulted **only** when every channel above
   left the policy at the default;
5. the registry default (``"clampi-full"``, the paper's score policy).

Any channel accepts a registry name (``"lru"``, ``"gdsf"``, ...), a name
registered at runtime via :func:`register`, or — deprecated — an
:class:`EvictionPolicy` enum value.

Example (user-defined mode, paper Listing 1)::

    win = clampi.window_allocate(comm, nbytes, mode=clampi.Mode.USER_DEFINED)
    with win.lock_epoch(peer):
        while not terminate:
            win.get(lbuf1, peer, off1)
            win.get(lbuf2, peer, off2)
            win.flush(peer)                 # closes epoch
            terminate = computation(lbuf1, lbuf2)
        clampi.invalidate(win)

Statistics come back through :func:`stats` / :meth:`CacheStats.snapshot`
(a versioned, stable schema) and, for structured per-event telemetry,
through the :mod:`repro.obs` subsystem.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Any, Mapping

import numpy as np

from repro.core.config import (
    ENV_POLICY_VAR,
    INFO_MODE_KEY,
    INFO_POLICY_KEY,
    INFO_RECOVERY_KEY,
    RECOVERY_MODES,
    AdaptiveParams,
    Config,
    EvictionPolicy,
    Mode,
)
from repro.core.policy import (
    DEFAULT_POLICY,
    CachePolicy,
    PolicyContext,
    available_policies,
    canonical_policy_name,
    make_policy,
    register,
)
from repro.core.stats import SCHEMA_VERSION, AccessType, CacheStats
from repro.core.window import CachedWindow
from repro.mpi.comm import Communicator
from repro.mpi.window import Window

__all__ = [
    "AccessType",
    "AdaptiveParams",
    "CachePolicy",
    "CacheStats",
    "CachedWindow",
    "Config",
    "DEFAULT_POLICY",
    "ENV_POLICY_VAR",
    "EvictionPolicy",
    "INFO_MODE_KEY",
    "INFO_POLICY_KEY",
    "INFO_RECOVERY_KEY",
    "Mode",
    "PolicyContext",
    "RECOVERY_MODES",
    "SCHEMA_VERSION",
    "available_policies",
    "canonical_policy_name",
    "configure",
    "degraded",
    "invalidate",
    "make_policy",
    "register",
    "resolve_config",
    "stats",
    "window_allocate",
    "window_create",
    "wrap",
]


def resolve_config(
    config: Config | None = None,
    mode: Mode | None = None,
    info: Mapping[str, Any] | None = None,
    policy: str | EvictionPolicy | None = None,
    recovery: str | None = None,
) -> Config:
    """Resolve the effective :class:`Config` from every facade channel.

    Mode precedence (highest wins): ``info["clampi_mode"]`` > ``mode=`` >
    ``config.mode`` > the :class:`Config` default.

    Policy precedence (highest wins): ``info["clampi_policy"]`` >
    ``policy=`` > a non-default ``config.policy`` > the ``CLAMPI_POLICY``
    environment variable > the registry default (``"clampi-full"``).  The
    environment variable is a channel of *last resort*: it is consulted
    only when neither the info key, the keyword nor the config named a
    non-default policy, so a program that pins a specific policy can
    never be perturbed by the environment.

    The crash-recovery mode (see :data:`RECOVERY_MODES` and
    ``docs/resilience.md``) resolves like the mode:
    ``info["clampi_recovery"]`` > ``recovery=`` > ``config.recovery`` >
    the default (``"invalidate"``).

    This is the one place the precedence lives; every facade entry point
    delegates here.
    """
    cfg = config or Config()
    if mode is not None:
        cfg = replace(cfg, mode=mode)
    if policy is not None:
        cfg = replace(cfg, policy=canonical_policy_name(policy))
    if recovery is not None:
        cfg = replace(cfg, recovery=recovery)
    if info is not None:
        info_mode = info.get(INFO_MODE_KEY)
        if info_mode is not None:
            cfg = replace(cfg, mode=Mode(info_mode))
        info_policy = info.get(INFO_POLICY_KEY)
        if info_policy is not None:
            cfg = replace(cfg, policy=canonical_policy_name(info_policy))
        info_recovery = info.get(INFO_RECOVERY_KEY)
        if info_recovery is not None:
            cfg = replace(cfg, recovery=info_recovery)
    if (
        cfg.policy == DEFAULT_POLICY
        and policy is None
        and (info is None or info.get(INFO_POLICY_KEY) is None)
    ):
        env_policy = os.environ.get(ENV_POLICY_VAR)
        if env_policy:
            cfg = replace(cfg, policy=canonical_policy_name(env_policy))
    return cfg


def configure(**kwargs: Any) -> Config:
    """Build a :class:`Config` from keyword arguments.

    Convenience mirror of ``Config(**kwargs)`` exported on the facade so
    callers never import from ``repro.core``::

        cfg = clampi.configure(index_entries=1 << 14, adaptive=True)
    """
    return Config(**kwargs)


def window_allocate(
    comm: Communicator,
    nbytes: int,
    disp_unit: int = 1,
    mode: Mode | None = None,
    config: Config | None = None,
    info: Mapping[str, Any] | None = None,
    policy: str | EvictionPolicy | None = None,
    recovery: str | None = None,
) -> CachedWindow:
    """Collectively allocate a caching-enabled window.

    Mode, policy and recovery precedence follow :func:`resolve_config`:
    ``info["clampi_mode"]`` > ``mode=`` > ``config.mode``,
    ``info["clampi_policy"]`` > ``policy=`` > ``config.policy`` >
    ``CLAMPI_POLICY``, and ``info["clampi_recovery"]`` > ``recovery=`` >
    ``config.recovery``.
    """
    win = Window.allocate(comm, nbytes, disp_unit=disp_unit, info=info)
    return CachedWindow(
        win, resolve_config(config, mode, info, policy, recovery)
    )


def window_create(
    comm: Communicator,
    buffer: np.ndarray,
    disp_unit: int = 1,
    mode: Mode | None = None,
    config: Config | None = None,
    info: Mapping[str, Any] | None = None,
    policy: str | EvictionPolicy | None = None,
    recovery: str | None = None,
) -> CachedWindow:
    """Collectively cache-enable a window over an existing local buffer.

    Mode, policy and recovery precedence follow :func:`resolve_config`.
    """
    win = Window.create(comm, buffer, disp_unit=disp_unit, info=info)
    return CachedWindow(
        win, resolve_config(config, mode, info, policy, recovery)
    )


def wrap(
    window: Window,
    mode: Mode | None = None,
    config: Config | None = None,
    policy: str | EvictionPolicy | None = None,
    recovery: str | None = None,
) -> CachedWindow:
    """Cache-enable an already-created plain window (local operation).

    The window's creation-time info dict participates in the mode,
    policy and recovery resolution exactly as in :func:`window_allocate`.
    """
    return CachedWindow(
        window, resolve_config(config, mode, window.info, policy, recovery)
    )


def invalidate(window: CachedWindow) -> None:
    """``CLAMPI_Invalidate``: drop all cached entries of ``window``."""
    window.invalidate()


def degraded(window: CachedWindow) -> bool:
    """True while ``window``'s cache is quarantined (serving gets direct).

    A streak of storage faults self-disables the cache until a probe
    window of direct gets has passed — see ``docs/resilience.md``.  The
    ``quarantines`` / ``degraded_gets`` counters of :func:`stats` carry
    the cumulative history.
    """
    return window.degraded


def stats(window: CachedWindow) -> CacheStats:
    """The :class:`CacheStats` of a caching-enabled window.

    Facade accessor so callers need not know the attribute layout:
    ``clampi.stats(win).snapshot()`` / ``.breakdown()`` are the public,
    schema-versioned views.
    """
    return window.stats
