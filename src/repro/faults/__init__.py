"""``repro.faults`` — fault injection and resilience for the RMA stack.

The reproduction's interconnect is perfect by default; this subsystem
makes it misbehave *on purpose*, deterministically, so the caching layer
can be proven correct and gracefully degrading under failure:

* :class:`FaultPlan` / :class:`FaultRule` — a seeded, declarative
  description of transient get/put failures, flush timeouts, latency
  jitter and cache-storage pressure, keyed by op type, src/dst rank and
  virtual-time window;
* :class:`FaultInjector` — the per-rank evaluator, built automatically by
  :class:`~repro.mpi.simmpi.SimMPI` when a plan is passed to a job;
* :class:`RetryPolicy` — exponential backoff with jitter (charged in
  virtual time) and per-op timeouts, consumed by the
  :class:`~repro.mpi.window.Window` resilience layer;
* :mod:`repro.faults.chaos` — the chaos harness running micro-benchmarks
  and the LCC / Barnes-Hut applications under fault plans and checking
  results stay bit-identical to the fault-free run
  (``python -m repro.faults``).

Typical chaos run::

    from repro.faults import FaultPlan, RetryPolicy
    from repro.mpi import SimMPI

    plan = FaultPlan.transient_gets(0.05, seed=7)
    SimMPI(nprocs=8, faults=plan, retry=RetryPolicy(max_attempts=5)).run(program)

Layering: this package is a leaf — the MPI layer imports it, never the
other way around (the one exception, the ``StorageFault`` raise, is a
lazy import); the chaos harness, which needs the application layer, is
imported lazily — mirroring how ``repro.obs`` keeps its report CLI out of
the package import surface.
"""

from __future__ import annotations

from repro.faults.plan import (
    RULE_OPS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    make_injectors,
)
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RULE_OPS",
    "RetryPolicy",
    "make_injectors",
]
