"""Deterministic fault plans and the per-rank injector.

A :class:`FaultPlan` is a declarative description of what misbehaves during
a run: a tuple of :class:`FaultRule` site filters plus one seed.  Sites are
keyed by operation kind, source rank, destination rank and a *virtual-time*
window, so a plan can express things like "5% of the gets rank 2 issues
towards ranks 0-3 fail between t=1ms and t=5ms".

Rule kinds
----------
``get`` / ``put``
    The operation fails transiently: the window layer charges the wasted
    round-trip, raises :class:`~repro.mpi.errors.TransientNetworkError`
    and (policy permitting) retries with backoff.
``flush``
    A synchronisation call (``flush``/``flush_all``/``unlock``/
    ``unlock_all``) times out: :class:`~repro.mpi.errors.RMATimeoutError`,
    also retried.
``alloc``
    A cache-storage allocation fails
    (:class:`~repro.mpi.errors.StorageFault`): the caching engine serves
    the access uncached and may quarantine itself.
``jitter``
    The transfer succeeds but is stalled by ``stall`` extra seconds plus
    ``stall_factor`` times the model-priced duration — congestion rather
    than loss.  If the stalled duration exceeds the retry policy's per-op
    timeout the transfer degenerates into an ``RMATimeoutError``.
``crash``
    The rank dies *permanently* (crash-stop) once its virtual clock
    reaches the rule's ``t_start``.  Unlike every other op this is not a
    per-operation decision: :meth:`FaultPlan.crash_times` resolves the
    whole plan into one deterministic ``{rank: time}`` map before the run
    starts, and the scheduler's failure detector does the rest
    (see :mod:`repro.runtime.scheduler` and :mod:`repro.recovery`).

Determinism
-----------
Every decision is drawn from a :class:`random.Random` stream seeded with
``(plan seed, rank, op kind)`` and consumed in the rank's own program
order.  Because the simulated runtime executes each rank's program
deterministically, the same plan on the same job injects the *same*
faults at the same sites on every run — which is what lets the chaos
harness assert bit-identical results and lets a failing CI seed be
replayed locally.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

#: Operation kinds a rule may target.
RULE_OPS = ("get", "put", "flush", "alloc", "jitter", "crash")


@dataclass(frozen=True)
class FaultRule:
    """One site-keyed fault source within a :class:`FaultPlan`.

    ``ranks`` filters the *issuing* (source) rank, ``targets`` the target
    rank of the operation; ``None`` means "any".  ``t_start``/``t_end``
    bound the issuing rank's virtual clock.  ``stall``/``stall_factor``
    are only meaningful for ``jitter`` rules.
    """

    op: str
    probability: float = 1.0
    ranks: frozenset[int] | None = None
    targets: frozenset[int] | None = None
    t_start: float = 0.0
    t_end: float = math.inf
    stall: float = 0.0
    stall_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in RULE_OPS:
            raise ValueError(f"unknown fault op {self.op!r}; expected one of {RULE_OPS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.t_start < 0 or self.t_end < self.t_start:
            raise ValueError(
                f"invalid time window [{self.t_start}, {self.t_end})"
            )
        if self.stall < 0 or self.stall_factor < 0:
            raise ValueError("stall / stall_factor must be >= 0")
        if self.op == "jitter" and self.stall == 0.0 and self.stall_factor == 0.0:
            raise ValueError("a jitter rule needs stall and/or stall_factor > 0")
        if self.op == "crash":
            if self.targets is not None:
                raise ValueError(
                    "a crash rule kills the issuing rank; it cannot filter "
                    "by target — use ranks= to select the victims"
                )
            if self.stall or self.stall_factor:
                raise ValueError("stall / stall_factor are meaningless for crash rules")
            if not math.isfinite(self.t_start):
                raise ValueError("a crash rule needs a finite t_start (the death time)")
        # Freeze mutable filter arguments into frozensets.
        for name in ("ranks", "targets"):
            v = getattr(self, name)
            if v is not None and not isinstance(v, frozenset):
                object.__setattr__(self, name, frozenset(v))

    def matches(self, op: str, rank: int, target: int | None, now: float) -> bool:
        """Does this rule apply to the given site at virtual time ``now``?

        ``target is None`` (e.g. a ``flush_all`` completing operations to
        every peer, or an allocation with no peer) matches any ``targets``
        filter.
        """
        if op != self.op:
            return False
        if self.ranks is not None and rank not in self.ranks:
            return False
        if self.targets is not None and target is not None and target not in self.targets:
            return False
        return self.t_start <= now < self.t_end


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of everything that misbehaves."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ValueError(
                    f"FaultPlan rules must be FaultRule instances, got {rule!r}"
                )
        # A rank dies exactly once: two crash rules that could both apply
        # to the same rank make the plan ambiguous (which death time
        # wins?), so they are rejected outright.  ranks=None means "every
        # rank" and therefore overlaps any other crash rule.
        crash_rules = [r for r in self.rules if r.op == "crash"]
        for i, a in enumerate(crash_rules):
            for b in crash_rules[i + 1 :]:
                if a.ranks is None or b.ranks is None or (a.ranks & b.ranks):
                    overlap = (
                        "all ranks"
                        if a.ranks is None or b.ranks is None
                        else f"ranks {sorted(a.ranks & b.ranks)}"
                    )
                    raise ValueError(
                        f"overlapping crash rules for {overlap}: a rank can "
                        "only die once — merge the rules or disjoin ranks="
                    )

    # -- convenience constructors ---------------------------------------
    @classmethod
    def of(cls, *rules: FaultRule, seed: int = 0) -> "FaultPlan":
        return cls(rules=tuple(rules), seed=seed)

    @classmethod
    def transient_gets(
        cls,
        probability: float,
        seed: int = 0,
        ranks: Iterable[int] | None = None,
        targets: Iterable[int] | None = None,
    ) -> "FaultPlan":
        """Plan injecting transient failures into a fraction of all gets."""
        return cls.of(
            FaultRule(
                "get",
                probability=probability,
                ranks=frozenset(ranks) if ranks is not None else None,
                targets=frozenset(targets) if targets is not None else None,
            ),
            seed=seed,
        )

    def with_rules(self, *extra: FaultRule) -> "FaultPlan":
        return FaultPlan(rules=self.rules + tuple(extra), seed=self.seed)

    def rules_for(self, op: str) -> tuple[FaultRule, ...]:
        if op not in RULE_OPS:
            raise ValueError(f"unknown fault op {op!r}; expected one of {RULE_OPS}")
        return tuple(r for r in self.rules if r.op == op)

    # ------------------------------------------------------------------
    def crash_times(self, nprocs: int) -> dict[int, float]:
        """Resolve the plan's crash rules into ``{rank: death time}``.

        Deterministic: whether a probabilistic crash rule fires for a rank
        is one draw from the rank's dedicated ``(seed, rank, "crash")``
        stream, independent of everything else in the run.  Ranks absent
        from the map never crash.
        """
        rules = self.rules_for("crash")
        times: dict[int, float] = {}
        if not rules:
            return times
        for rank in range(nprocs):
            for rule in rules:
                if rule.ranks is not None and rank not in rule.ranks:
                    continue
                if (
                    rule.probability >= 1.0
                    or random.Random(f"{self.seed}:{rank}:crash").random()
                    < rule.probability
                ):
                    times[rank] = rule.t_start
                break  # overlap validation guarantees at most one match
        return times


class FaultInjector:
    """Per-rank evaluator of a :class:`FaultPlan`.

    One injector exists per simulated rank (built by
    :class:`~repro.mpi.simmpi.MPIProcess`); its decision streams are keyed
    by ``(plan seed, rank, op kind)`` so they are independent of sibling
    ranks and of thread interleaving.  ``clock`` supplies the rank's
    current virtual time for the rules' time windows.
    """

    def __init__(self, plan: FaultPlan, rank: int, clock: Callable[[], float]):
        self.plan = plan
        self.rank = rank
        self._clock = clock
        self._streams: dict[str, random.Random] = {}
        #: how many faults fired, per op kind (diagnostic)
        self.injected: dict[str, int] = {}
        #: how many decisions were evaluated, per op kind (diagnostic)
        self.consulted: dict[str, int] = {}
        # Pre-split rules by op so hot paths don't scan unrelated rules.
        self._by_op: dict[str, tuple[FaultRule, ...]] = {
            op: plan.rules_for(op) for op in RULE_OPS
        }

    # ------------------------------------------------------------------
    def _stream(self, op: str) -> random.Random:
        rng = self._streams.get(op)
        if rng is None:
            rng = random.Random(f"{self.plan.seed}:{self.rank}:{op}")
            self._streams[op] = rng
        return rng

    def draw(self, op: str) -> float:
        """One deterministic uniform draw from the ``op`` stream."""
        return self._stream(op).random()

    # ------------------------------------------------------------------
    def fire(self, op: str, target: int | None = None) -> FaultRule | None:
        """Decide whether a fault fires at this site; returns the rule.

        Consumes one uniform draw per *matching* rule (in plan order), so
        the decision sequence is a pure function of the plan and the
        rank's own operation order.
        """
        try:
            rules = self._by_op[op]
        except KeyError:
            # A typo'd op name must fail loudly, not "never fire".
            raise ValueError(
                f"unknown fault op {op!r}; expected one of {RULE_OPS}"
            ) from None
        if not rules:
            return None
        self.consulted[op] = self.consulted.get(op, 0) + 1
        now = self._clock()
        for rule in rules:
            if not rule.matches(op, self.rank, target, now):
                continue
            if self.draw(op) < rule.probability:
                self.injected[op] = self.injected.get(op, 0) + 1
                return rule
        return None

    def stall_for(self, target: int | None, base_duration: float) -> float:
        """Total injected jitter stall for one transfer priced at ``base_duration``."""
        rules = self._by_op.get("jitter")
        if not rules:
            return 0.0
        self.consulted["jitter"] = self.consulted.get("jitter", 0) + 1
        now = self._clock()
        extra = 0.0
        fired = False
        for rule in rules:
            if not rule.matches("jitter", self.rank, target, now):
                continue
            if self.draw("jitter") < rule.probability:
                extra += rule.stall + rule.stall_factor * base_duration
                fired = True
        if fired:
            self.injected["jitter"] = self.injected.get("jitter", 0) + 1
        return extra

    # ------------------------------------------------------------------
    def storage_hook(self, nbytes: int) -> None:
        """Allocation-site hook for :class:`repro.core.storage.Storage`.

        Raises :class:`~repro.mpi.errors.StorageFault` when an ``alloc``
        rule fires; a plain return means the allocation proceeds.
        """
        rule = self.fire("alloc", None)
        if rule is not None:
            # Imported lazily so repro.faults stays a leaf package (the MPI
            # layer imports repro.faults at module level, not vice versa).
            from repro.mpi.errors import StorageFault

            raise StorageFault(
                f"injected allocation failure ({nbytes} B) at rank {self.rank}"
            )

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


def make_injectors(
    plan: FaultPlan, nprocs: int, clocks: Sequence[Callable[[], float]]
) -> list[FaultInjector]:
    """Build one injector per rank (helper for custom harnesses)."""
    if len(clocks) != nprocs:
        raise ValueError("need one clock callable per rank")
    return [FaultInjector(plan, r, clocks[r]) for r in range(nprocs)]
