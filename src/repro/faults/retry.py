"""Retry/backoff policy for transient RMA failures.

All delays are *virtual-time* seconds: a retrying rank charges the backoff
to its simulated clock (through ``SimProcess.advance``), so resilience has
a measurable performance cost in every figure, exactly like the cache's
management costs.  The policy object itself is pure and deterministic —
the jitter term is driven by a uniform draw supplied by the caller (the
per-rank :class:`~repro.faults.plan.FaultInjector` stream), never by wall
clocks or global RNG state.

Single owner: the retry *loop* consuming this policy lives in exactly one
place — :class:`repro.rma.interceptors.Retry`, the outermost interceptor
of both the data and sync pipelines.  Nothing else re-issues failed
operations; lint rule ANL003 keeps callers from reaching around it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, plus an optional per-op timeout.

    ``max_attempts`` counts the initial try: ``1`` disables retries
    entirely, so the first injected fault surfaces to the application.
    ``op_timeout`` bounds the virtual time a single RMA operation may
    take (including injected stalls); a transfer that would exceed it
    raises :class:`~repro.mpi.errors.RMATimeoutError` after charging the
    timeout.
    """

    max_attempts: int = 4
    base_delay: float = 2e-6        #: first backoff delay (virtual seconds)
    multiplier: float = 2.0         #: exponential growth per attempt
    max_delay: float = 1e-3         #: backoff cap
    jitter: float = 0.25            #: +/- fraction applied to each delay
    op_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise ValueError("op_timeout must be > 0 when set")

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """No retries: the first fault propagates (chaos-debugging mode)."""
        return cls(max_attempts=1)

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 1

    def with_timeout(self, op_timeout: float) -> "RetryPolicy":
        return replace(self, op_timeout=op_timeout)

    def delay(self, attempt: int, u: float = 0.5) -> float:
        """Backoff before retry number ``attempt`` (1-based, deterministic).

        ``u`` is a uniform [0, 1) draw; ``u = 0.5`` gives the undithered
        midpoint.  The delay for attempt ``k`` is
        ``min(base * multiplier**(k-1), max_delay)`` scaled by
        ``1 + jitter * (2u - 1)``.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        d = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            d *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return d


#: Policy used by the window layer when a fault plan is active but no
#: explicit policy was configured.
DEFAULT_RETRY_POLICY = RetryPolicy()
