"""CLI for the chaos harness: ``python -m repro.faults``.

The default (``--scenario transparent``) runs the chaos suite (micro +
LCC + Barnes-Hut, each clean vs faulted) and exits non-zero when any
workload's faulted result is not bit-identical to the fault-free run, or
when the plan injected nothing (a vacuous pass).

``--scenario crash`` runs the crash-stop scenario instead: one rank of
eight dies permanently mid-run and the suite fails unless LCC and
Barnes-Hut complete on the seven survivors (no deadlock, no escaped
``RankFailedError``), the recovery counters (stats schema v4) fired, and
an armed-but-unfired crash plan stayed bit-identical in results and
virtual time.

``--obs capture.jsonl`` streams every telemetry event of the runs (fault
injections, retries, degradations, crashes, revocations, cache accesses)
to a JSONL file — the artifact CI uploads for the chaos jobs, so a bad
seed can be replayed and inspected offline.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.faults.chaos import render, render_crash, run_crash_suite, run_suite


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="chaos harness: fault-injected runs must stay bit-identical",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default 0)"
    )
    parser.add_argument(
        "--scenario",
        choices=("transparent", "crash"),
        default="transparent",
        help="'transparent' = fault-transparency suite (default); "
        "'crash' = permanent rank failure + survivor recovery",
    )
    parser.add_argument(
        "--obs",
        metavar="PATH",
        default=None,
        help="stream all telemetry events of the runs to a JSONL file",
    )
    args = parser.parse_args(argv)

    sink = None
    if args.obs is not None:
        sink = obs.get_bus().attach(obs.JSONLSink(args.obs))
    try:
        if args.scenario == "crash":
            outcomes = run_crash_suite(seed=args.seed)
            rendered = render_crash(outcomes)
        else:
            outcomes = run_suite(seed=args.seed)
            rendered = render(outcomes)
    finally:
        if sink is not None:
            obs.get_bus().detach(sink)
            sink.close()

    print(f"chaos suite (scenario={args.scenario}, seed={args.seed})")
    print(rendered)
    if all(o.ok for o in outcomes):
        print("chaos suite PASSED")
        return 0
    print("chaos suite FAILED", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
