"""Chaos harness: prove the stack is fault-transparent.

Runs each workload twice — once fault-free, once under a
:class:`~repro.faults.FaultPlan` — and checks the *computed results are
bit-identical*.  That is the correctness contract of the resilience layer
(docs/resilience.md): injected transient failures, flush timeouts, latency
jitter and cache-storage pressure may change timing and the stats
counters, but never a single output byte.

Workloads:

* ``micro``  — synthetic get/flush loop with heavy reuse over a
  caching-enabled window, including storage faults aggressive enough to
  quarantine the cache;
* ``lcc``    — the Local Clustering Coefficient application (Sec. IV-C);
* ``barnes`` — the Barnes-Hut force phase (Sec. IV-B).

Run it via ``python -m repro.faults [--seed N] [--obs capture.jsonl]``;
exit status is non-zero when any workload diverges.  Like
:mod:`repro.obs.report`, this module needs the application layer and is
therefore *not* imported by ``repro.faults.__init__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import clampi
from repro.apps.cachespec import CacheSpec
from repro.apps.lcc import LCCApp
from repro.apps.barnes_hut import BarnesHutApp
from repro.core.config import Config
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.mpi.simmpi import MPIProcess, SimMPI

#: fraction of gets that fail transiently in the default plan (the
#: acceptance bar is >= 5%)
DEFAULT_GET_FAILURE_RATE = 0.08


@dataclass
class ChaosOutcome:
    """Result of one clean-vs-faulted workload comparison."""

    name: str
    identical: bool                 #: faulted results == clean results, bitwise
    clean_elapsed: float            #: virtual makespan, fault-free run
    faulty_elapsed: float           #: virtual makespan, faulted run
    stats: dict[str, float] = field(default_factory=dict)  #: merged, faulted run

    @property
    def ok(self) -> bool:
        """Identical results *and* the plan demonstrably fired."""
        return self.identical and self.stats.get("faults_injected", 0) > 0


def default_plan(seed: int) -> FaultPlan:
    """The standard chaos mix: lost gets, flush timeouts, jitter, pressure."""
    return FaultPlan.of(
        FaultRule("get", probability=DEFAULT_GET_FAILURE_RATE),
        FaultRule("flush", probability=0.02),
        FaultRule("jitter", probability=0.10, stall=2e-6, stall_factor=0.5),
        FaultRule("alloc", probability=0.02),
        seed=seed,
    )


def default_retry() -> RetryPolicy:
    return RetryPolicy(max_attempts=8)


def merge_stats(per_rank: list[dict]) -> dict[str, float]:
    """Sum per-rank snapshot counters (dropping the schema tag).

    Non-numeric snapshot values (the v3 ``policy`` name) are skipped —
    only counters can be summed across ranks.
    """
    merged: dict[str, float] = {}
    for snap in per_rank:
        for k, v in snap.items():
            if k != "schema_version" and isinstance(v, (int, float)):
                merged[k] = merged.get(k, 0) + v
    return merged


# ----------------------------------------------------------------------
# micro-benchmark workload
# ----------------------------------------------------------------------
def _micro_program(mpi: MPIProcess, seed: int):
    """Reuse-heavy get/flush loop over a small caching-enabled window."""
    comm = mpi.comm_world
    cfg = Config(
        index_entries=64,
        storage_bytes=8 * 1024,
        mode=clampi.Mode.ALWAYS_CACHE,
        quarantine_threshold=2,
        quarantine_probe_interval=8,
    )
    win = clampi.window_allocate(comm, 4096, config=cfg)
    view = win.local_view(np.float64)
    rng = np.random.default_rng(seed + mpi.rank)
    view[:] = rng.normal(size=view.size)
    comm.barrier()

    # Zipf-ish access stream over all peers: hubs get refetched a lot.
    offsets = (rng.zipf(1.5, size=200) - 1) % (view.size // 8)
    peers = rng.integers(0, mpi.size, size=200)
    buf = np.empty(8)
    acc = np.zeros(8)
    with win.lock_all_epoch():
        for off, peer in zip(offsets, peers):
            if peer == mpi.rank:
                continue
            win.get(buf, int(peer), int(off) * 8 * 8)
            win.flush(int(peer))
            acc += buf
    t = mpi.time
    return acc, clampi.stats(win).snapshot(), t


def run_micro(
    plan: FaultPlan,
    retry: RetryPolicy | None = None,
    nprocs: int = 4,
    seed: int = 1,
) -> ChaosOutcome:
    retry = retry or default_retry()
    # A burst of guaranteed allocation failures early in the run drives the
    # cache through its full quarantine -> probe -> re-enable cycle, so the
    # suite exercises graceful degradation, not just retries.
    plan = plan.with_rules(
        FaultRule("alloc", probability=1.0, t_start=1e-5, t_end=5e-5)
    )
    clean = SimMPI(nprocs=nprocs).run(_micro_program, seed)
    faulty = SimMPI(nprocs=nprocs, faults=plan, retry=retry).run(
        _micro_program, seed
    )
    identical = all(
        np.array_equal(a, b) for (a, _, _), (b, _, _) in zip(clean, faulty)
    )
    return ChaosOutcome(
        name="micro",
        identical=identical,
        clean_elapsed=max(t for _, _, t in clean),
        faulty_elapsed=max(t for _, _, t in faulty),
        stats=merge_stats([s for _, s, _ in faulty]),
    )


# ----------------------------------------------------------------------
# application workloads
# ----------------------------------------------------------------------
def run_lcc(
    plan: FaultPlan,
    retry: RetryPolicy | None = None,
    nprocs: int = 4,
    scale: int = 7,
) -> ChaosOutcome:
    retry = retry or default_retry()
    app = LCCApp(scale=scale, edge_factor=8, seed=2)
    spec = CacheSpec.clampi_fixed(256, 64 * 1024)
    clean = app.run(nprocs, spec)
    faulty = app.run(nprocs, spec, faults=plan, retry=retry)
    return ChaosOutcome(
        name="lcc",
        identical=bool(np.array_equal(clean.lcc, faulty.lcc)),
        clean_elapsed=clean.elapsed,
        faulty_elapsed=faulty.elapsed,
        stats=merge_stats(faulty.cache_stats),
    )


def run_barnes_hut(
    plan: FaultPlan,
    retry: RetryPolicy | None = None,
    nprocs: int = 4,
    nbodies: int = 192,
) -> ChaosOutcome:
    retry = retry or default_retry()
    app = BarnesHutApp(nbodies=nbodies, seed=3)
    spec = CacheSpec.clampi_fixed(256, 64 * 1024)
    clean = app.run(nprocs, spec)
    faulty = app.run(nprocs, spec, faults=plan, retry=retry)
    return ChaosOutcome(
        name="barnes-hut",
        identical=bool(np.array_equal(clean.forces, faulty.forces)),
        clean_elapsed=clean.elapsed,
        faulty_elapsed=faulty.elapsed,
        stats=merge_stats(faulty.cache_stats),
    )


# ----------------------------------------------------------------------
# crash-stop scenario (docs/resilience.md, "crash" failure model)
# ----------------------------------------------------------------------
@dataclass
class CrashOutcome:
    """Result of one crash-stop workload run (clean / armed / crashed)."""

    name: str
    nprocs: int
    victim: int                    #: rank killed in the crashed run
    completed: bool                #: crashed run finished on the survivors
    survivors: int                 #: ranks that returned a result
    #: armed-but-unfired run (crash planned far past the end) stayed
    #: bit-identical to the clean run in results AND virtual time
    unfired_identical: bool
    schema_ok: bool                #: survivor snapshots carry schema v4
    clean_elapsed: float
    crashed_elapsed: float
    stats: dict[str, float] = field(default_factory=dict)  #: merged, crashed run

    @property
    def ok(self) -> bool:
        """Survivors completed, recovery demonstrably engaged, no drift."""
        return (
            self.completed
            and self.survivors == self.nprocs - 1
            and self.unfired_identical
            and self.schema_ok
            and self.stats.get("rank_failures", 0) > 0
        )


def crash_plan(seed: int, victim: int, t_start: float) -> FaultPlan:
    """A plan that kills exactly ``victim`` at virtual time ``t_start``."""
    return FaultPlan.of(
        FaultRule("crash", probability=1.0, ranks=(victim,), t_start=t_start),
        seed=seed,
    )


def _run_crash_app(
    name: str,
    run,
    results_of,
    seed: int,
    nprocs: int,
) -> CrashOutcome:
    """Shared clean / armed-unfired / crashed protocol for one app.

    ``run(faults)`` executes the app; ``results_of(outcome)`` extracts the
    computed array compared for bit-identity.
    """
    clean = run(None)
    victim = (seed + nprocs // 2) % nprocs
    # Armed but unfired: the crash machinery is active (failure detector,
    # Recovery interceptor, CacheRecovery stage) but the victim would die
    # long after the run ends -- results and virtual times must stay
    # bit-identical to the clean run.
    unfired = run(crash_plan(seed, victim, t_start=clean.makespan * 10.0))
    unfired_identical = (
        bool(np.array_equal(results_of(clean), results_of(unfired)))
        and clean.rank_times == unfired.rank_times
        and clean.makespan == unfired.makespan
    )
    # The real crash: mid-force/traversal-phase, after setup completed.
    setup = clean.makespan - clean.elapsed
    try:
        crashed = run(crash_plan(seed, victim, setup + 0.45 * clean.elapsed))
    except Exception:
        # Deadlock, an escaped RankFailedError, a survivor dying on an
        # unhandled revocation -- exactly what this scenario guards against.
        return CrashOutcome(
            name=name,
            nprocs=nprocs,
            victim=victim,
            completed=False,
            survivors=0,
            unfired_identical=unfired_identical,
            schema_ok=False,
            clean_elapsed=clean.elapsed,
            crashed_elapsed=float("nan"),
        )
    return CrashOutcome(
        name=name,
        nprocs=nprocs,
        victim=victim,
        completed=True,
        survivors=len(crashed.cache_stats),
        unfired_identical=unfired_identical,
        schema_ok=all(
            s.get("schema_version") == 4 for s in crashed.cache_stats
        ),
        clean_elapsed=clean.elapsed,
        crashed_elapsed=crashed.elapsed,
        stats=merge_stats(crashed.cache_stats),
    )


def run_crash_lcc(seed: int = 0, nprocs: int = 8, scale: int = 7) -> CrashOutcome:
    """LCC with one rank dying mid-traversal; survivors must finish."""
    app = LCCApp(scale=scale, edge_factor=8, seed=2)
    spec = CacheSpec.clampi_fixed(256, 64 * 1024, recovery="serve-stale")
    return _run_crash_app(
        "lcc-crash",
        lambda faults: app.run(nprocs, spec, faults=faults),
        lambda r: r.lcc,
        seed,
        nprocs,
    )


def run_crash_barnes_hut(
    seed: int = 0, nprocs: int = 8, nbodies: int = 192
) -> CrashOutcome:
    """Barnes-Hut with one rank dying mid-force-phase."""
    app = BarnesHutApp(nbodies=nbodies, seed=3)
    spec = CacheSpec.clampi_fixed(256, 64 * 1024, recovery="serve-stale")
    return _run_crash_app(
        "barnes-crash",
        lambda faults: app.run(nprocs, spec, faults=faults),
        lambda r: r.forces,
        seed,
        nprocs,
    )


def run_crash_suite(seed: int = 0) -> list[CrashOutcome]:
    """Both applications under the crash-stop scenario."""
    return [run_crash_lcc(seed=seed), run_crash_barnes_hut(seed=seed)]


def render_crash(outcomes: list[CrashOutcome]) -> str:
    """Human-readable crash-scenario report (one block per workload)."""
    lines = []
    for o in outcomes:
        verdict = "OK " if o.ok else "FAIL"
        lines.append(
            f"[{verdict}] {o.name:<12} survivors={o.survivors}/{o.nprocs} "
            f"(rank {o.victim} crashed) unfired-identical="
            f"{str(o.unfired_identical):<5} "
            f"elapsed {o.clean_elapsed * 1e3:8.3f} ms -> "
            f"{o.crashed_elapsed * 1e3:8.3f} ms"
        )
        s = o.stats
        lines.append(
            f"       rank_failures={s.get('rank_failures', 0):.0f} "
            f"failed_target_gets={s.get('failed_target_gets', 0):.0f} "
            f"recovered_gets={s.get('recovered_gets', 0):.0f} "
            f"recovery_pinned={s.get('recovery_pinned', 0):.0f} "
            f"recovery_dropped={s.get('recovery_dropped', 0):.0f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
def run_suite(seed: int = 0) -> list[ChaosOutcome]:
    """All workloads under the default chaos mix for ``seed``."""
    plan = default_plan(seed)
    retry = default_retry()
    return [
        run_micro(plan, retry),
        run_lcc(plan, retry),
        run_barnes_hut(plan, retry),
    ]


def render(outcomes: list[ChaosOutcome]) -> str:
    """Human-readable chaos report (one block per workload)."""
    lines = []
    for o in outcomes:
        verdict = "OK " if o.ok else "FAIL"
        slowdown = (
            o.faulty_elapsed / o.clean_elapsed if o.clean_elapsed else float("nan")
        )
        lines.append(
            f"[{verdict}] {o.name:<11} bit-identical={str(o.identical):<5} "
            f"elapsed {o.clean_elapsed * 1e3:8.3f} ms -> "
            f"{o.faulty_elapsed * 1e3:8.3f} ms ({slowdown:.2f}x)"
        )
        s = o.stats
        lines.append(
            f"       faults={s.get('faults_injected', 0):.0f} "
            f"retries={s.get('retries', 0):.0f} "
            f"storage_faults={s.get('storage_faults', 0):.0f} "
            f"quarantines={s.get('quarantines', 0):.0f} "
            f"degraded_gets={s.get('degraded_gets', 0):.0f}"
        )
    return "\n".join(lines)
