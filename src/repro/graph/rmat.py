"""Vectorised R-MAT graph generator (Chakrabarti, Zhan, Faloutsos, SDM'04).

Each edge picks one of four adjacency-matrix quadrants per scale bit with
probabilities ``(a, b, c, d)``; the classic Graph500-style defaults
``(0.57, 0.19, 0.19, 0.05)`` produce the skewed, scale-free degree
distributions that give LCC its data reuse (popular vertices' adjacency
lists are fetched over and over — exactly what CLaMPI caches).

The generator is fully vectorised over edges (one NumPy pass per scale bit)
and deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

#: Graph500 / paper-style default quadrant probabilities.
DEFAULT_PROBS = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    nedges: int,
    probs: tuple[float, float, float, float] = DEFAULT_PROBS,
    seed: int = 0,
    noise: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``nedges`` directed R-MAT edges over ``2**scale`` vertices.

    Returns ``(src, dst)`` int64 arrays.  ``noise`` perturbs the quadrant
    probabilities per bit (the standard smoothing that avoids exact
    power-of-two degree artefacts).
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if nedges < 0:
        raise ValueError("nedges must be >= 0")
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError(f"probabilities must sum to 1, got {a + b + c + d}")
    rng = np.random.default_rng(seed)
    src = np.zeros(nedges, dtype=np.int64)
    dst = np.zeros(nedges, dtype=np.int64)
    for bit in range(scale):
        if noise:
            jitter = 1.0 + noise * (rng.random(4) - 0.5)
            pa, pb, pc, pd = (np.array([a, b, c, d]) * jitter) / np.sum(
                np.array([a, b, c, d]) * jitter
            )
        else:
            pa, pb, pc, pd = a, b, c, d
        r = rng.random(nedges)
        # quadrants: A=(0,0) p=pa, B=(0,1) p=pb, C=(1,0) p=pc, D=(1,1) p=pd
        src_bit = r >= pa + pb
        dst_bit = ((r >= pa) & (r < pa + pb)) | (r >= pa + pb + pc)
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    return src, dst


def rmat_graph(
    scale: int,
    nedges: int,
    probs: tuple[float, float, float, float] = DEFAULT_PROBS,
    seed: int = 0,
    undirected: bool = True,
    permute: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """A cleaned R-MAT edge list: no self-loops, deduplicated, symmetrised.

    ``permute`` relabels vertices with a random permutation so that vertex
    id does not correlate with degree (otherwise the 1-D partitioner would
    give rank 0 all the hubs).
    """
    src, dst = rmat_edges(scale, nedges, probs, seed)
    n = 1 << scale
    if permute:
        perm = np.random.default_rng(seed + 1).permutation(n)
        src = perm[src]
        dst = perm[dst]
    if undirected:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    # Deduplicate via the combined key.
    key = src * n + dst
    _uniq, idx = np.unique(key, return_index=True)
    return src[idx], dst[idx]
