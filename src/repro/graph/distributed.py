"""Distributed CSR graph over RMA windows.

Layout (per the paper's LCC setup): vertices are 1-D block-partitioned;
each rank exposes the adjacency array of its own vertex block through an
RMA window.  The CSR index (offsets/degrees) is *replicated* on every rank
at build time — a standard trick that lets a single one-sided get fetch a
whole remote adjacency list (the get size equals the vertex degree, which
is what produces the variable-size distribution of Fig. 3).

The window itself is created by a caller-supplied factory so the same graph
can run over a plain window (foMPI baseline), a CLaMPI
:class:`~repro.core.window.CachedWindow`, or the block-cache baseline.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import BlockPartition
from repro.mpi.comm import Communicator

ITEM = np.dtype(np.int64)


class GetWindow(Protocol):
    """The window sub-protocol the graph needs (satisfied by Window,
    CachedWindow and BlockCachedWindow)."""

    def lock_all(self) -> None: ...
    def unlock_all(self) -> None: ...
    def flush(self, rank: int) -> None: ...
    def flush_all(self) -> None: ...
    def get(self, origin, target_rank, target_disp, count=None, datatype=None) -> int: ...
    def get_batch(self, requests) -> list[int]: ...


WindowFactory = Callable[[Communicator, np.ndarray], GetWindow]


class DistributedGraph:
    """A block-partitioned CSR graph whose adjacency lives in RMA windows."""

    def __init__(
        self,
        comm: Communicator,
        csr: CSRGraph,
        partition: BlockPartition,
        window: GetWindow,
    ):
        self.comm = comm
        self.csr = csr  #: replicated index (offsets) + local correctness oracle
        self.partition = partition
        self.window = window
        self.lo, self.hi = partition.range_of(comm.rank)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        comm: Communicator,
        src: np.ndarray,
        dst: np.ndarray,
        nvertices: int,
        window_factory: WindowFactory,
        csr: CSRGraph | None = None,
    ) -> "DistributedGraph":
        """Collectively build the distributed graph from a shared edge list.

        Every rank passes the same (deterministically generated) edge list;
        each keeps the replicated CSR index and exposes only its own block's
        adjacency through the window.  Passing a prebuilt ``csr`` (shared
        across simulated ranks) avoids rebuilding the index per rank.
        """
        if csr is None:
            csr = CSRGraph.from_edges(src, dst, nvertices)
        part = BlockPartition(nvertices, comm.size)
        lo, hi = part.range_of(comm.rank)
        local_adj = np.ascontiguousarray(
            csr.adjacency[csr.offsets[lo] : csr.offsets[hi]]
        )
        window = window_factory(comm, local_adj.view(np.uint8))
        return cls(comm, csr, part, window)

    # ------------------------------------------------------------------
    @property
    def nvertices(self) -> int:
        return self.csr.nvertices

    @property
    def local_vertices(self) -> range:
        """The vertex block owned by this rank."""
        return range(self.lo, self.hi)

    def owner(self, v: int) -> int:
        return self.partition.owner(v)

    def degree(self, v: int) -> int:
        return self.csr.degree(v)

    def remote_location(self, v: int) -> tuple[int, int, int]:
        """``(owner, byte_displacement, element_count)`` of adj(v)."""
        owner = self.partition.owner(v)
        olo, _ohi = self.partition.range_of(owner)
        disp = int(self.csr.offsets[v] - self.csr.offsets[olo]) * ITEM.itemsize
        return owner, disp, self.csr.degree(v)

    def local_adjacency(self, v: int) -> np.ndarray:
        """adj(v) for a locally-owned vertex (plain memory access)."""
        if not self.lo <= v < self.hi:
            raise ValueError(f"vertex {v} not owned by rank {self.comm.rank}")
        return self.csr.neighbors(v)

    def fetch_adjacency(self, v: int, out: np.ndarray) -> tuple[int, int]:
        """Issue a (possibly cached) one-sided get of adj(v) into ``out``.

        Returns ``(owner, count)``.  The caller flushes; for locally owned
        vertices the data is copied immediately and no get is issued.
        """
        owner, disp, count = self.remote_location(v)
        if owner == self.comm.rank:
            out[:count] = self.local_adjacency(v)
            return owner, count
        self.window.get(out[:count], owner, disp)
        return owner, count

    def fetch_adjacencies(self, vertices) -> list[np.ndarray]:
        """Batched adjacency fetch with flush-pipelined completion.

        All remote gets are issued through one ``window.get_batch`` call —
        one epoch-bookkeeping pass and one batched accounting event — and
        each distinct remote owner is flushed exactly once afterwards, so
        the transfer latencies overlap instead of being paid serially as
        the get+flush-per-neighbour pattern of :meth:`fetch_adjacency`
        does.  Locally owned vertices are copied directly.  Returns one
        int64 adjacency buffer per requested vertex, in request order.
        """
        bufs: list[np.ndarray] = []
        requests: list[tuple] = []
        owners: set[int] = set()
        for v in vertices:
            v = int(v)
            owner, disp, count = self.remote_location(v)
            buf = np.empty(count, dtype=ITEM)
            bufs.append(buf)
            if owner == self.comm.rank:
                buf[:count] = self.local_adjacency(v)
            else:
                requests.append((buf, owner, disp))
                owners.add(owner)
        if requests:
            self.window.get_batch(requests)
            for owner in sorted(owners):
                self.window.flush(owner)
        return bufs
