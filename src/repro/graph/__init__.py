"""Graph substrate: R-MAT generation, CSR storage, 1-D partitioning.

The paper's LCC experiments (Sec. IV-C) run on scale-free R-MAT graphs
(Chakrabarti et al.) partitioned one-dimensionally: each of ``P`` processes
owns a contiguous block of vertices and all their incident edges.  This
package provides:

* :func:`~repro.graph.rmat.rmat_edges` — vectorised R-MAT edge generation;
* :class:`~repro.graph.csr.CSRGraph` — compressed sparse row adjacency;
* :class:`~repro.graph.partition.BlockPartition` — 1-D vertex blocks;
* :class:`~repro.graph.distributed.DistributedGraph` — per-rank CSR slices
  exposed through (cached) RMA windows, the communication substrate of the
  LCC application.
"""

from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedGraph
from repro.graph.partition import BlockPartition
from repro.graph.rmat import rmat_edges, rmat_graph

__all__ = [
    "BlockPartition",
    "CSRGraph",
    "DistributedGraph",
    "rmat_edges",
    "rmat_graph",
]
