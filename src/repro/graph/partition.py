"""1-D block partitioning of vertices over ranks (paper Sec. IV-C).

"G is partitioned among P processes by using a one-dimensional scheme: each
partition V_i ⊆ V is assigned to a process p_i.  The process p_i owns all
the vertices v ∈ V_i and all the edges (v, u)."

We use balanced contiguous blocks: rank i owns vertices
``[i*ceil(n/P), min((i+1)*ceil(n/P), n))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class BlockPartition:
    """Balanced contiguous 1-D partition of ``nitems`` over ``nparts``."""

    nitems: int
    nparts: int

    def __post_init__(self) -> None:
        if self.nitems < 0:
            raise ValueError("nitems must be >= 0")
        if self.nparts < 1:
            raise ValueError("nparts must be >= 1")

    @cached_property
    def block(self) -> int:
        """Items per part (last part may be smaller)."""
        return -(-self.nitems // self.nparts)  # ceil division

    def owner(self, item: int) -> int:
        if not 0 <= item < self.nitems:
            raise ValueError(f"item {item} out of range [0, {self.nitems})")
        return item // self.block if self.block else 0

    def owners(self, items: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner`."""
        return np.asarray(items, dtype=np.int64) // max(self.block, 1)

    def range_of(self, part: int) -> tuple[int, int]:
        """``[lo, hi)`` item range of ``part``."""
        if not 0 <= part < self.nparts:
            raise ValueError(f"part {part} out of range [0, {self.nparts})")
        lo = min(part * self.block, self.nitems)
        hi = min(lo + self.block, self.nitems)
        return lo, hi

    def size_of(self, part: int) -> int:
        lo, hi = self.range_of(part)
        return hi - lo

    def local_index(self, item: int) -> int:
        """Index of ``item`` within its owner's block."""
        return item - self.range_of(self.owner(item))[0]
