"""Compressed-sparse-row adjacency structure.

The canonical static-graph layout: ``offsets`` (n+1 int64) and ``adjacency``
(m int64, neighbour ids sorted per vertex).  Sorted adjacencies make the
LCC triangle counting a linear merge / ``np.intersect1d`` per vertex pair.
"""

from __future__ import annotations

import numpy as np


class CSRGraph:
    """Immutable CSR graph over vertices ``0..n-1``."""

    def __init__(self, offsets: np.ndarray, adjacency: np.ndarray):
        offsets = np.asarray(offsets, dtype=np.int64)
        adjacency = np.asarray(adjacency, dtype=np.int64)
        if offsets.ndim != 1 or adjacency.ndim != 1:
            raise ValueError("offsets/adjacency must be 1-D")
        if offsets[0] != 0 or offsets[-1] != adjacency.size:
            raise ValueError("offsets must start at 0 and end at len(adjacency)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        self.offsets = offsets
        self.adjacency = adjacency

    @classmethod
    def from_edges(cls, src: np.ndarray, dst: np.ndarray, nvertices: int) -> "CSRGraph":
        """Build from a directed edge list (each (u,v) becomes v in adj(u))."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src/dst length mismatch")
        if src.size and (src.min() < 0 or src.max() >= nvertices):
            raise ValueError("source vertex out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= nvertices):
            raise ValueError("destination vertex out of range")
        order = np.lexsort((dst, src))
        src_s, dst_s = src[order], dst[order]
        degrees = np.bincount(src_s, minlength=nvertices)
        offsets = np.zeros(nvertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        return cls(offsets, dst_s)

    # ------------------------------------------------------------------
    @property
    def nvertices(self) -> int:
        return self.offsets.size - 1

    @property
    def nedges(self) -> int:
        return int(self.adjacency.size)

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` (a view, do not mutate)."""
        return self.adjacency[self.offsets[v] : self.offsets[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        adj = self.neighbors(u)
        i = np.searchsorted(adj, v)
        return bool(i < adj.size and adj[i] == v)

    def local_clustering(self, v: int) -> float:
        """Reference (single-node) LCC of ``v`` — the paper's formula."""
        adj = self.neighbors(v)
        deg = adj.size
        if deg < 2:
            return 0.0
        links = 0
        adj_set = adj  # sorted
        for u in adj:
            links += np.intersect1d(adj_set, self.neighbors(int(u))).size
        # each triangle edge counted twice in the loop above
        return links / (deg * (deg - 1))
