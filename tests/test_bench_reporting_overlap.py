"""Unit tests for reporting tables and the overlap methodology."""

import pytest

from repro.bench.overlap import OverlapPoint, measure_overlap
from repro.bench.reporting import FigureResult, format_table
from repro.util import KiB


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("---")
        assert "333" in lines[3]

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456], [12345.6], [0.0001234]])
        assert "0.123" in out
        assert "1.23e+04" in out or "12345" in out.replace(",", "")
        assert "0.000123" in out

    def test_zero(self):
        assert "0" in format_table(["x"], [[0.0]])


class TestFigureResult:
    def test_render_contains_everything(self):
        fig = FigureResult("Fig. X", "demo", ["a", "b"])
        fig.rows.append([1, 2])
        fig.notes.append("a note")
        fig.add_claim("something holds", True)
        out = fig.render()
        assert "Fig. X" in out
        assert "a note" in out
        assert "[OK] something holds" in out

    def test_render_flags_mismatches(self):
        fig = FigureResult("Fig. Y", "demo", ["a"])
        fig.add_claim("broken", False)
        assert "[MISMATCH] broken" in fig.render()
        assert not fig.all_claims_hold

    def test_markdown_table(self):
        fig = FigureResult("Fig. Z", "demo", ["col1", "col2"])
        fig.rows.append(["v", 3.5])
        fig.add_claim("ok", True)
        md = fig.markdown()
        assert "| col1 | col2 |" in md
        assert "| v | 3.5 |" in md
        assert "**HOLDS**" in md

    def test_all_claims_hold_empty(self):
        assert FigureResult("f", "t", ["h"]).all_claims_hold

    def test_json_roundtrip(self):
        import json

        fig = FigureResult("Fig. J", "json demo", ["a", "b"])
        fig.rows.append([1, 2.5])
        fig.add_claim("c1", True)
        fig.add_claim("c2", False)
        data = json.loads(fig.to_json())
        assert data["figure"] == "Fig. J"
        assert data["rows"] == [[1, 2.5]]
        assert data["claims"][1] == {"claim": "c2", "holds": False}
        assert data["all_claims_hold"] is False

    def test_cli_json_dir(self, tmp_path):
        import json

        from repro.bench.__main__ import main

        rc = main(["fig01", "--json-dir", str(tmp_path)])
        assert rc == 0
        data = json.loads((tmp_path / "fig01.json").read_text())
        assert data["all_claims_hold"] is True


class TestOverlap:
    def test_overlap_point_math(self):
        # fully hidden: T_ov == T_base -> fraction 1
        assert OverlapPoint("x", 8, 1.0, 1.0).overlap_fraction == 1.0
        # fully exposed: T_ov == 2*T_base -> fraction 0
        assert OverlapPoint("x", 8, 1.0, 2.0).overlap_fraction == 0.0
        # halfway
        assert OverlapPoint("x", 8, 1.0, 1.5).overlap_fraction == pytest.approx(0.5)
        # clamped
        assert OverlapPoint("x", 8, 1.0, 3.0).overlap_fraction == 0.0
        assert OverlapPoint("x", 8, 0.0, 1.0).overlap_fraction == 0.0

    def test_fompi_overlap_high(self):
        p = measure_overlap("fompi", 16 * KiB, repetitions=5)
        assert p.overlap_fraction > 0.8

    def test_direct_overlap_below_fompi(self):
        f = measure_overlap("fompi", 16 * KiB, repetitions=5)
        d = measure_overlap("direct", 16 * KiB, repetitions=5)
        assert d.overlap_fraction < f.overlap_fraction

    def test_failing_beats_direct_at_large_size(self):
        d = measure_overlap("direct", 64 * KiB, repetitions=5)
        fl = measure_overlap("failing", 64 * KiB, repetitions=5)
        assert fl.overlap_fraction > d.overlap_fraction

    def test_unknown_access_rejected(self):
        from repro.runtime import RankFailedError

        with pytest.raises(RankFailedError):
            measure_overlap("bogus", 1024)
