"""The chaos harness: fault-injected application runs stay bit-identical."""

import numpy as np
import pytest

from repro.faults.chaos import (
    ChaosOutcome,
    default_plan,
    default_retry,
    merge_stats,
    render,
    run_lcc,
    run_micro,
)


@pytest.fixture(scope="module")
def plan():
    return default_plan(seed=0)


class TestMicro:
    def test_bit_identical_with_full_quarantine_cycle(self, plan):
        out = run_micro(plan)
        assert out.identical
        assert out.ok
        assert out.stats["faults_injected"] > 0
        assert out.stats["retries"] > 0
        # The micro workload deliberately drives the cache through
        # quarantine: degradation must be visible in the merged stats.
        assert out.stats["quarantines"] > 0
        assert out.stats["degraded_gets"] > 0
        assert out.faulty_elapsed > out.clean_elapsed

    def test_deterministic(self, plan):
        a = run_micro(plan)
        b = run_micro(plan)
        assert a.stats == b.stats
        assert a.faulty_elapsed == b.faulty_elapsed


class TestLCC:
    def test_lcc_bit_identical_under_five_percent_get_failures(self, plan):
        # The acceptance bar: >= 5% of gets failing transiently while the
        # computed coefficients stay bit-identical.
        assert any(
            r.op == "get" and r.probability >= 0.05 for r in plan.rules
        )
        out = run_lcc(plan)
        assert out.identical
        assert out.ok
        assert out.stats["faults_injected"] > 0


class TestHarnessPlumbing:
    def test_merge_stats_sums_and_drops_schema(self):
        merged = merge_stats(
            [
                {"schema_version": 2, "gets": 3, "retries": 1},
                {"schema_version": 2, "gets": 4},
            ]
        )
        assert merged == {"gets": 7, "retries": 1}

    def test_outcome_ok_requires_injection(self):
        vacuous = ChaosOutcome(
            name="x", identical=True, clean_elapsed=1.0, faulty_elapsed=1.0
        )
        assert not vacuous.ok

    def test_render_mentions_workloads_and_counters(self):
        out = ChaosOutcome(
            name="micro",
            identical=True,
            clean_elapsed=1e-3,
            faulty_elapsed=2e-3,
            stats={"faults_injected": 5, "retries": 4},
        )
        text = render([out])
        assert "micro" in text
        assert "faults=5" in text
        assert "2.00x" in text

    def test_cli_reports_failure_on_mismatch(self, monkeypatch, capsys):
        from repro.faults import __main__ as cli

        bad = ChaosOutcome(
            name="micro", identical=False, clean_elapsed=1.0, faulty_elapsed=1.0
        )
        monkeypatch.setattr(cli, "run_suite", lambda seed: [bad])
        assert cli.main(["--seed", "1"]) == 1
        good = ChaosOutcome(
            name="micro",
            identical=True,
            clean_elapsed=1.0,
            faulty_elapsed=1.0,
            stats={"faults_injected": 3},
        )
        monkeypatch.setattr(cli, "run_suite", lambda seed: [good])
        assert cli.main(["--seed", "1"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_cli_obs_capture_writes_jsonl(self, tmp_path, monkeypatch):
        import json

        from repro.faults import __main__ as cli

        path = tmp_path / "chaos.jsonl"

        def tiny_suite(seed):
            plan = default_plan(seed)
            return [run_micro(plan, default_retry(), nprocs=2)]

        monkeypatch.setattr(cli, "run_suite", tiny_suite)
        assert cli.main(["--seed", "0", "--obs", str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "fault.injected" in kinds


class TestCrashScenario:
    @pytest.fixture(scope="class")
    def lcc_outcome(self):
        from repro.faults.chaos import run_crash_lcc

        return run_crash_lcc(seed=0, nprocs=4, scale=5)

    def test_lcc_survives_a_crash(self, lcc_outcome):
        o = lcc_outcome
        assert o.ok
        assert o.completed
        assert o.survivors == o.nprocs - 1
        assert 0 <= o.victim < o.nprocs

    def test_lcc_unfired_plan_is_bit_identical(self, lcc_outcome):
        assert lcc_outcome.unfired_identical

    def test_lcc_recovery_counters_fired(self, lcc_outcome):
        assert lcc_outcome.schema_ok
        assert lcc_outcome.stats["rank_failures"] > 0

    def test_barnes_hut_survives_a_crash(self):
        from repro.faults.chaos import run_crash_barnes_hut

        o = run_crash_barnes_hut(seed=0, nprocs=4, nbodies=96)
        assert o.ok
        assert o.survivors == o.nprocs - 1
        assert o.unfired_identical
        assert o.stats["rank_failures"] > 0

    def test_render_crash_mentions_survivors_and_counters(self):
        from repro.faults.chaos import CrashOutcome, render_crash

        o = CrashOutcome(
            name="lcc-crash",
            nprocs=4,
            victim=2,
            completed=True,
            survivors=3,
            unfired_identical=True,
            schema_ok=True,
            clean_elapsed=1e-3,
            crashed_elapsed=9e-4,
            stats={
                "rank_failures": 3,
                "failed_target_gets": 5,
                "recovered_gets": 7,
                "recovery_pinned": 2,
                "recovery_dropped": 0,
            },
        )
        text = render_crash([o])
        assert "survivors=3/4" in text
        assert "rank 2 crashed" in text
        assert "recovered_gets=7" in text
        assert "OK" in text
