"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import MemoryModel, NetworkModel, PerfModel, Topology


@pytest.fixture
def perf4() -> PerfModel:
    """A 4-rank, one-rank-per-node performance model."""
    return PerfModel.default(4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def run_job(nprocs: int, program, *args, ranks_per_node: int = 1, **kwargs):
    """Run a simulated MPI job and return (results, elapsed_seconds)."""
    from repro.mpi import SimMPI

    mpi = SimMPI(nprocs=nprocs, ranks_per_node=ranks_per_node)
    results = mpi.run(program, *args, **kwargs)
    return results, mpi.elapsed
