"""Shared fixtures for the test suite.

Determinism policy: tests never draw from global RNG state or the wall
clock.  Randomness comes from the fixtures below — ``rng`` (one fixed
stream, shared shape across tests) or ``seeded_rng`` (an independent
stream per test, derived from the test's node id, so inserting a test
or reordering a module never shifts another test's draws).
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.net import MemoryModel, NetworkModel, PerfModel, Topology


@pytest.fixture
def perf4() -> PerfModel:
    """A 4-rank, one-rank-per-node performance model."""
    return PerfModel.default(4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def seeded_rng(request) -> np.random.Generator:
    """Per-test deterministic RNG: the seed is the test's node id.

    Unlike ``rng`` (every test sees the same stream), each test gets its
    own stream, stable across runs and insensitive to test ordering or
    ``-k`` selection.
    """
    seed = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng(seed)


def run_job(nprocs: int, program, *args, ranks_per_node: int = 1, **kwargs):
    """Run a simulated MPI job and return (results, elapsed_seconds)."""
    from repro.mpi import SimMPI

    mpi = SimMPI(nprocs=nprocs, ranks_per_node=ranks_per_node)
    results = mpi.run(program, *args, **kwargs)
    return results, mpi.elapsed
