"""Property test: the simulated RMA window matches a shadow memory model.

Random sequences of puts and gets through the Window API must behave
exactly like direct reads/writes of per-rank byte arrays.  This pins the
substrate's data movement (the cache's golden test builds on top of it).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import SimMPI, Window

NBYTES = 2048


def _program(m, ops):
    win = Window.allocate(m.comm_world, NBYTES)
    shadow = [np.zeros(NBYTES, np.uint8) for _ in range(m.size)]
    # deterministic initial fill, same on every rank's shadow
    for r in range(m.size):
        init = ((np.arange(NBYTES) * (r + 11)) % 256).astype(np.uint8)
        if r == m.rank:
            win.local_buffer[:] = init
        shadow[r][:] = init
    m.comm_world.barrier()

    if m.rank == 0:
        win.lock_all()
        rng = np.random.default_rng(12345)
        ok = True
        for kind, trg, dsp, n in ops:
            trg %= m.size
            dsp %= NBYTES
            n = max(1, n % (NBYTES - dsp))
            if kind == 0:  # get
                buf = np.empty(n, np.uint8)
                win.get(buf, trg, dsp)
                win.flush(trg)
                ok = ok and np.array_equal(buf, shadow[trg][dsp : dsp + n])
            else:  # put
                payload = rng.integers(0, 256, n).astype(np.uint8)
                win.put(payload, trg, dsp)
                win.flush(trg)
                shadow[trg][dsp : dsp + n] = payload
        # final sweep: every rank's full window must equal the shadow
        full = np.empty(NBYTES, np.uint8)
        for r in range(m.size):
            win.get(full, r, 0)
            win.flush(r)
            ok = ok and np.array_equal(full, shadow[r])
        win.unlock_all()
        m.comm_world.barrier()
        return ok
    m.comm_world.barrier()
    return True


@settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 1),
            st.integers(0, 2),
            st.integers(0, NBYTES - 1),
            st.integers(1, 512),
        ),
        max_size=30,
    )
)
def test_property_window_matches_shadow_memory(ops):
    results = SimMPI(nprocs=3).run(_program, ops)
    assert all(results), "window data diverged from the shadow model"
