"""Tests for the repro.obs telemetry subsystem.

Covers the event model, bus enabling semantics (NullSink keeps the bus
disabled), sink behaviour, the instrumentation hooks in the MPI/CLaMPI
layers, the JSONL round-trip, the no-behavioural-change guarantee of the
disabled path, and the report CLI reconstruction of the access breakdown.
"""

import json

import numpy as np
import pytest

from repro import clampi, obs
from repro.mpi import SimMPI
from repro.util import KiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


def make_window(m, mode=clampi.Mode.ALWAYS_CACHE, nbytes=64 * KiB, **cfg_kwargs):
    cfg = clampi.Config(**cfg_kwargs) if cfg_kwargs else None
    win = clampi.window_allocate(m.comm_world, nbytes, mode=mode, config=cfg)
    win.local_view(np.uint8)[:] = (np.arange(nbytes) * (m.rank + 3)) % 251
    m.comm_world.barrier()
    return win


def cached_get_program(m):
    """Each rank: one miss then two hits against its neighbour's window."""
    win = make_window(m)
    peer = (m.rank + 1) % m.size
    with win.lock_all_epoch():
        buf = np.empty(256, np.uint8)
        win.get_blocking(buf, peer, 0)
        win.get_blocking(buf, peer, 0)
        win.get_blocking(buf, peer, 0)
    return win.stats.snapshot(), win.stats.breakdown()


# ---------------------------------------------------------------------------
# event model
# ---------------------------------------------------------------------------
class TestEvent:
    def test_json_round_trip(self):
        e = obs.Event(
            obs.RMA_GET,
            rank=2,
            time=1.5e-6,
            epoch=3,
            win=7,
            duration=2e-7,
            attrs={"target": 1, "nbytes": 64},
        )
        back = obs.Event.from_json(e.to_json())
        assert back == e
        assert back.is_span

    def test_counter_event_is_not_span(self):
        e = obs.Event(obs.CACHE_ACCESS, rank=0, time=0.0)
        assert not e.is_span

    def test_all_kinds_is_complete(self):
        assert obs.CACHE_ACCESS in obs.ALL_KINDS
        assert obs.NET_TRANSFER in obs.ALL_KINDS
        assert obs.SCHED_SWITCH in obs.ALL_KINDS


# ---------------------------------------------------------------------------
# bus semantics
# ---------------------------------------------------------------------------
class TestBus:
    def test_disabled_by_default(self):
        bus = obs.EventBus()
        assert not bus.enabled

    def test_ring_buffer_enables(self):
        bus = obs.EventBus()
        sink = bus.attach(obs.RingBufferSink())
        assert bus.enabled
        bus.emit(obs.Event(obs.RMA_GET, rank=0, time=0.0))
        assert len(sink) == 1
        bus.detach(sink)
        assert not bus.enabled

    def test_null_sink_keeps_bus_disabled(self):
        bus = obs.EventBus()
        bus.attach(obs.NullSink())
        assert not bus.enabled

    def test_parent_chaining(self):
        parent = obs.EventBus()
        child = obs.EventBus(parent=parent)
        assert not child.enabled
        sink = parent.attach(obs.RingBufferSink())
        assert child.enabled  # enabled via the parent
        child.emit(obs.Event(obs.CACHE_EVICT, rank=1, time=0.0))
        assert [e.kind for e in sink] == [obs.CACHE_EVICT]
        parent.detach(sink)

    def test_child_sink_does_not_reach_parent(self):
        parent = obs.EventBus()
        child = obs.EventBus(parent=parent)
        local = child.attach(obs.RingBufferSink())
        child.emit(obs.Event(obs.CACHE_EPOCH, rank=0, time=0.0))
        assert len(local) == 1
        assert not parent.enabled

    def test_callback_sink_kind_filter(self):
        seen = []
        bus = obs.EventBus()
        bus.attach(obs.CallbackSink(seen.append, kinds=(obs.RMA_PUT,)))
        bus.emit(obs.Event(obs.RMA_GET, rank=0, time=0.0))
        bus.emit(obs.Event(obs.RMA_PUT, rank=0, time=0.0))
        assert [e.kind for e in seen] == [obs.RMA_PUT]

    def test_capture_detaches_on_exit(self):
        bus = obs.get_bus()
        with obs.capture() as sink:
            assert bus.enabled
            assert isinstance(sink, obs.RingBufferSink)
        assert not bus.enabled


# ---------------------------------------------------------------------------
# instrumentation: events per get, hit vs miss
# ---------------------------------------------------------------------------
class TestInstrumentation:
    def test_cache_access_events_hit_vs_miss(self):
        with obs.capture() as sink:
            results, _ = run(2, cached_get_program)
        for r in range(2):
            accesses = [
                e.attrs["access"]
                for e in sink.events(kind=obs.CACHE_ACCESS, rank=r)
            ]
            assert accesses == ["direct", "hit_full", "hit_full"]
        snap, _ = results[0]
        assert snap["gets"] == 3

    def test_miss_emits_net_transfer_hit_does_not(self):
        with obs.capture() as sink:
            run(2, cached_get_program)
        # per rank: only the miss reaches the raw window (and the wire);
        # the two hits are served from local cache storage.
        gets = sink.events(kind=obs.RMA_GET, rank=0)
        assert len(gets) == 1
        assert gets[0].attrs["nbytes"] == 256
        assert len(sink.events(kind=obs.CACHE_ACCESS, rank=0)) == 3
        transfers = [
            e
            for e in sink.events(kind=obs.NET_TRANSFER, rank=0)
            if e.attrs.get("nbytes", 0) >= 256
        ]
        assert len(transfers) == 1

    def test_events_stamped_with_rank_time_epoch(self):
        with obs.capture() as sink:
            run(2, cached_get_program)
        per_rank = {0: [], 1: []}
        for e in sink.events(kind=obs.CACHE_ACCESS):
            assert e.rank in (0, 1)
            assert e.time >= 0.0
            assert e.win is not None
            per_rank[e.rank].append(e.epoch)
        # eph counts *closed* epochs: each blocking get flushes, so the
        # stamped epoch must be non-decreasing within a rank.
        for epochs in per_rank.values():
            assert epochs == sorted(epochs)

    def test_scheduler_emits_switches(self):
        with obs.capture() as sink:
            run(4, cached_get_program)
        switches = sink.events(kind=obs.SCHED_SWITCH)
        assert len(switches) > 0
        assert {e.rank for e in switches} <= {0, 1, 2, 3}

    def test_epoch_close_emits_cache_epoch(self):
        def program(m):
            win = make_window(m, record_timeline=True)
            peer = (m.rank + 1) % m.size
            buf = np.empty(64, np.uint8)
            with win.lock_all_epoch():
                for _ in range(3):
                    win.get(buf, peer, 0)
                    win.flush(peer)
            return win.timeline

        with obs.capture() as sink:
            results, _ = run(2, program)
        epochs = sink.events(kind=obs.CACHE_EPOCH, rank=0)
        # the same samples arrive on the global bus and in win.timeline
        assert [
            (e.attrs["eph"], e.attrs["gets"], e.attrs["hits"]) for e in epochs
        ] == results[0]
        assert len(results[0]) >= 3

    def test_virtual_time_ledger_notes_runs(self):
        before = obs.virtual_time.runs
        total0 = obs.virtual_time.total
        _, mpi = run(2, cached_get_program)
        assert obs.virtual_time.runs == before + 1
        assert obs.virtual_time.last == pytest.approx(mpi.elapsed)
        assert obs.virtual_time.total == pytest.approx(total0 + mpi.elapsed)


# ---------------------------------------------------------------------------
# JSONL round-trip + report
# ---------------------------------------------------------------------------
class TestJSONL:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        with obs.capture(obs.JSONLSink(path)):
            run(2, cached_get_program)
        from repro.obs import report

        events = report.load_events(path)
        assert events
        # every line is valid JSON and every event survives re-encoding
        for line, e in zip(path.read_text().splitlines(), events):
            assert obs.Event.from_dict(json.loads(line)) == e

    def test_breakdown_matches_live_stats_exactly(self, tmp_path):
        """Acceptance: capture-derived breakdown == CacheStats.breakdown()."""
        path = tmp_path / "capture.jsonl"
        with obs.capture(obs.JSONLSink(path)):
            results, _ = run(4, cached_get_program)
        from repro.obs import report

        events = report.load_events(path)
        for rank, (_snap, live_breakdown) in enumerate(results):
            assert report.access_breakdown(events, rank=rank) == live_breakdown

    def test_report_renders_sections(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        with obs.capture(obs.JSONLSink(path)):
            run(2, cached_get_program)
        from repro.obs import report

        text = report.render_report(report.load_events(path))
        assert "per-rank summary" in text
        assert "access breakdown" in text
        assert "contributors" in text

    def test_cli_report(self, tmp_path, capsys):
        path = tmp_path / "capture.jsonl"
        with obs.capture(obs.JSONLSink(path)):
            run(2, cached_get_program)
        from repro.obs.__main__ import main

        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "access breakdown" in out

        assert main(["report", str(path), "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "rank 0:" in out and "hit_full=" in out

    def test_cli_missing_capture(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read capture" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# disabled path: no behavioural change
# ---------------------------------------------------------------------------
class TestNullSinkNoChange:
    def test_cache_decisions_and_virtual_time_identical(self):
        def once():
            mpi = SimMPI(nprocs=2)
            results = mpi.run(cached_get_program)
            return [snap for snap, _ in results], mpi.elapsed

        baseline_stats, baseline_elapsed = once()

        null = obs.get_bus().attach(obs.NullSink())
        try:
            assert not obs.get_bus().enabled
            null_stats, null_elapsed = once()
        finally:
            obs.get_bus().detach(null)

        with obs.capture():
            ring_stats, ring_elapsed = once()

        assert null_stats == baseline_stats
        assert null_elapsed == baseline_elapsed
        # even the *enabled* path must not change simulation results
        assert ring_stats == baseline_stats
        assert ring_elapsed == baseline_elapsed

    def test_disabled_bus_skips_event_construction(self, monkeypatch):
        """Hot paths gate on bus.enabled before building Event objects."""
        constructed = []
        real_init = obs.Event.__init__

        def counting_init(self, *a, **k):
            constructed.append(1)
            real_init(self, *a, **k)

        monkeypatch.setattr(obs.Event, "__init__", counting_init)
        run(2, cached_get_program)
        assert not constructed
        # sanity: the hook does fire once the bus is enabled
        with obs.capture():
            run(2, cached_get_program)
        assert constructed

    def test_sinkless_run_builds_zero_events_across_op_kinds(
        self, monkeypatch
    ):
        """Get, put, accumulate, flush, fence and epoch close all stay
        allocation-free for telemetry when no sink is attached."""

        def mixed_program(m):
            win = make_window(m)
            peer = (m.rank + 1) % m.size
            buf = np.empty(256, np.uint8)
            out = np.arange(256, dtype=np.uint8)
            with win.lock_all_epoch():
                win.get_blocking(buf, peer, 0)
                win.put(out, peer, 0)
                win.flush(peer)
                win.flush_all()
            win.fence()
            win.fence()
            return int(buf[0])

        constructed = []
        real_init = obs.Event.__init__

        def counting_init(self, *a, **k):
            constructed.append(1)
            real_init(self, *a, **k)

        monkeypatch.setattr(obs.Event, "__init__", counting_init)
        run(2, mixed_program)
        assert not constructed

    def test_kind_gate_skips_unwanted_event_construction(self, monkeypatch):
        """A sink subscribed to one kind must not force construction of
        the kinds nobody consumes (bus.wants() gating, not just .enabled)."""
        built = []
        real_init = obs.Event.__init__

        def counting_init(self, kind, *a, **k):
            built.append(kind)
            real_init(self, kind, *a, **k)

        monkeypatch.setattr(obs.Event, "__init__", counting_init)
        seen = []
        sink = obs.CallbackSink(seen.append, kinds=(obs.CACHE_ACCESS,))
        bus = obs.get_bus()
        bus.attach(sink)
        try:
            run(2, cached_get_program)
        finally:
            bus.detach(sink)
        assert built, "subscribed kind must still be emitted"
        assert set(built) == {obs.CACHE_ACCESS}
        assert [e.kind for e in seen] == built
