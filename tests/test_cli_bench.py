"""Tests for the benchmark CLI entry point."""

import json

import pytest

from repro.bench.__main__ import main


class TestBenchCLI:
    def test_single_figure_renders_table(self, capsys):
        rc = main(["fig01"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Fig. 1" in out
        assert "[OK]" in out

    def test_markdown_mode(self, capsys):
        rc = main(["fig01", "--markdown"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "### Fig. 1" in out
        assert "**HOLDS**" in out

    def test_chart_mode(self, capsys):
        rc = main(["fig01", "--chart"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "x: size" in out

    def test_ablation_by_id(self, capsys):
        rc = main(["a4_allocator_fit"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Ablation A4" in out

    def test_reports_wall_and_virtual_time(self, capsys):
        rc = main(["fig01"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "wall time" in err
        assert "virtual time" in err
        assert "simulated" in err

    def test_unknown_id_errors(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_json_artifact_content(self, tmp_path, capsys):
        rc = main(["fig01", "--json-dir", str(tmp_path), "--markdown"])
        capsys.readouterr()
        assert rc == 0
        data = json.loads((tmp_path / "fig01.json").read_text())
        assert data["figure"] == "Fig. 1"
        assert len(data["rows"]) >= 5
