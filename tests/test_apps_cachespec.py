"""Unit tests for the cache-configuration switch used by all applications."""

import numpy as np
import pytest

from repro import clampi
from repro.apps.cachespec import CacheKind, CacheSpec, cache_stats_of
from repro.baselines import BlockCachedWindow
from repro.mpi import SimMPI, Window
from repro.trace import TraceRecorder, TracingWindow
from repro.util import KiB, MiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestConstructors:
    def test_fompi(self):
        spec = CacheSpec.fompi()
        assert spec.kind is CacheKind.NONE
        assert spec.label == "foMPI"

    def test_fixed(self):
        spec = CacheSpec.clampi_fixed(1024, 2 * MiB)
        assert spec.kind is CacheKind.CLAMPI
        assert not spec.config.adaptive
        assert "fixed" in spec.label

    def test_adaptive(self):
        spec = CacheSpec.clampi_adaptive(1024, 2 * MiB)
        assert spec.config.adaptive
        assert "adaptive" in spec.label

    def test_native(self):
        spec = CacheSpec.native(memory_bytes=1 * MiB, block_size=512)
        assert spec.kind is CacheKind.NATIVE
        assert "native" in spec.label

    def test_extra_config_kwargs_forwarded(self):
        spec = CacheSpec.clampi_fixed(64, 1 * MiB, num_hashes=3, sample_size=8)
        assert spec.config.num_hashes == 3
        assert spec.config.sample_size == 8

    def test_with_mode(self):
        spec = CacheSpec.clampi_fixed(64, 1 * MiB).with_mode(clampi.Mode.USER_DEFINED)
        assert spec.mode is clampi.Mode.USER_DEFINED


class TestMakeWindow:
    def test_window_flavours(self):
        def program(m):
            buf = np.zeros(1024, np.uint8)
            plain = CacheSpec.fompi().make_window(m.comm_world, buf.copy())
            cached = CacheSpec.clampi_fixed(64, 64 * KiB).make_window(
                m.comm_world, buf.copy()
            )
            native = CacheSpec.native(64 * KiB).make_window(m.comm_world, buf.copy())
            rec = TraceRecorder()
            traced = CacheSpec.fompi().make_window(m.comm_world, buf.copy(), rec)
            return (
                type(plain).__name__,
                type(cached).__name__,
                type(native).__name__,
                type(traced).__name__,
            )

        results, _ = run(2, program)
        assert results[0] == (
            "Window",
            "CachedWindow",
            "BlockCachedWindow",
            "TracingWindow",
        )

    def test_cache_stats_of_each_flavour(self):
        def program(m):
            buf = np.zeros(1024, np.uint8)
            plain = CacheSpec.fompi().make_window(m.comm_world, buf.copy())
            cached = CacheSpec.clampi_fixed(64, 64 * KiB).make_window(
                m.comm_world, buf.copy()
            )
            native = CacheSpec.native(64 * KiB).make_window(m.comm_world, buf.copy())
            rec = TraceRecorder()
            traced = TracingWindow(cached, rec)
            return (
                cache_stats_of(plain),
                "gets" in cache_stats_of(cached),
                "block_hits" in cache_stats_of(native),
                "gets" in cache_stats_of(traced),
            )

        results, _ = run(2, program)
        assert results[0] == ({}, True, True, True)


class TestPolicyField:
    def test_default_is_none(self):
        assert CacheSpec.clampi_fixed(64, 4096).policy is None

    def test_constructor_policy(self):
        spec = CacheSpec.clampi_fixed(64, 4096, policy="lru")
        assert spec.policy == "lru"
        assert "lru" in spec.label

    def test_with_policy(self):
        spec = CacheSpec.clampi_fixed(64, 4096).with_policy("gdsf")
        assert spec.policy == "gdsf"

    def test_label_without_policy_unchanged(self):
        assert "," not in CacheSpec.clampi_fixed(64, 4096).label.split("|S|")[1]

    def test_policy_reaches_window(self):
        from repro.mpi import SimMPI

        def program(m):
            spec = CacheSpec.clampi_fixed(64, 4096, policy="slru")
            win = spec.make_window(m.comm_world, np.zeros(1024, np.uint8))
            return win.policy_name

        assert SimMPI(nprocs=2).run(program)[0] == "slru"

    def test_adaptive_policy_plumbed(self):
        from repro.mpi import SimMPI

        def program(m):
            spec = CacheSpec.clampi_adaptive(64, 4096, policy="tinylfu")
            win = spec.make_window(m.comm_world, np.zeros(1024, np.uint8))
            return win.policy_name, win.config.adaptive

        name, adaptive = SimMPI(nprocs=2).run(program)[0]
        assert name == "tinylfu" and adaptive
