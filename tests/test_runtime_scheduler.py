"""Unit tests for the deterministic cooperative runtime."""

import pytest

from repro.runtime import DeadlockError, RankFailedError, SimWorld


class TestBasicExecution:
    def test_single_rank(self):
        world = SimWorld(1)
        assert world.run(lambda p: p.rank * 10) == [0]

    def test_all_ranks_run(self):
        world = SimWorld(5)
        assert world.run(lambda p: p.rank) == [0, 1, 2, 3, 4]

    def test_args_and_kwargs_forwarded(self):
        world = SimWorld(2)
        out = world.run(lambda p, a, b=0: (p.rank, a, b), 7, b=9)
        assert out == [(0, 7, 9), (1, 7, 9)]

    def test_mpmd_programs(self):
        world = SimWorld(2)
        out = world.run(None, programs=[lambda p: "a", lambda p: "b"])
        assert out == ["a", "b"]

    def test_world_is_single_shot(self):
        world = SimWorld(2)
        world.run(lambda p: None)
        with pytest.raises(RuntimeError, match="single-shot"):
            world.run(lambda p: None)

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            SimWorld(0)


class TestVirtualClocks:
    def test_advance_accumulates(self):
        world = SimWorld(1)

        def program(p):
            p.advance(1.5)
            p.advance(0.5)
            return p.clock

        assert world.run(program) == [2.0]

    def test_negative_advance_rejected(self):
        world = SimWorld(1)

        def program(p):
            p.advance(-1.0)

        with pytest.raises(RankFailedError):
            world.run(program)

    def test_sync_aligns_clocks_to_max(self):
        world = SimWorld(3)

        def program(p):
            p.advance(float(p.rank))  # clocks 0, 1, 2
            p.sync()
            return p.clock

        assert world.run(program) == [2.0, 2.0, 2.0]

    def test_sync_extra_time_added(self):
        world = SimWorld(2)

        def program(p):
            p.sync(extra_time=0.25)
            return p.clock

        assert world.run(program) == [0.25, 0.25]

    def test_sync_extra_time_takes_max_of_participants(self):
        world = SimWorld(2)

        def program(p):
            p.sync(extra_time=0.1 if p.rank == 0 else 0.4)
            return p.clock

        assert world.run(program) == [0.4, 0.4]

    def test_max_clock_reported(self):
        world = SimWorld(2)

        def program(p):
            p.advance(1.0 if p.rank else 3.0)

        world.run(program)
        assert world.max_clock == 3.0
        assert world.clocks == [3.0, 1.0]


class TestSyncPayloads:
    def test_payloads_gathered_by_rank(self):
        world = SimWorld(4)

        def program(p):
            return p.sync(payload=p.rank * 11)

        for result in world.run(program):
            assert result == [0, 11, 22, 33]

    def test_multiple_sync_rounds(self):
        world = SimWorld(3)

        def program(p):
            first = p.sync(payload=("a", p.rank))
            second = p.sync(payload=("b", p.rank))
            return first, second

        for first, second in world.run(program):
            assert first == [("a", 0), ("a", 1), ("a", 2)]
            assert second == [("b", 0), ("b", 1), ("b", 2)]

    def test_many_rounds_stress(self):
        world = SimWorld(4)

        def program(p):
            total = 0
            for i in range(50):
                got = p.sync(payload=p.rank + i)
                total += sum(got)
            return total

        results = world.run(program)
        expected = sum(sum(r + i for r in range(4)) for i in range(50))
        assert results == [expected] * 4


class TestDeterminism:
    def test_interleaving_is_reproducible(self):
        def program(p, log):
            for i in range(5):
                p.advance(0.1 * ((p.rank + i) % 3))
                p.sync()
                log.append((p.rank, round(p.clock, 6)))
            return None

        log1: list = []
        log2: list = []
        SimWorld(4).run(program, log1)
        SimWorld(4).run(program, log2)
        assert log1 == log2

    def test_rank_order_at_equal_clocks(self):
        order: list[int] = []

        def program(p):
            p.sync()
            order.append(p.rank)

        SimWorld(4).run(program)
        assert order == [0, 1, 2, 3]


class TestFailures:
    def test_exception_propagates_with_rank(self):
        world = SimWorld(3)

        def program(p):
            if p.rank == 1:
                raise ValueError("boom")
            p.sync()

        with pytest.raises(RankFailedError) as ei:
            world.run(program)
        assert ei.value.rank == 1
        assert isinstance(ei.value.original, ValueError)

    def test_failure_while_others_blocked(self):
        world = SimWorld(4)

        def program(p):
            if p.rank == 3:
                raise RuntimeError("late failure")
            p.sync()

        with pytest.raises(RankFailedError):
            world.run(program)

    def test_deadlock_detected_when_rank_exits_early(self):
        world = SimWorld(2)

        def program(p):
            if p.rank == 0:
                return "done"
            p.sync()  # rank 1 waits forever: rank 0 never syncs

        with pytest.raises(DeadlockError, match="blocked"):
            world.run(program)

    def test_abort_cannot_be_swallowed_by_user_except(self):
        world = SimWorld(2)

        def program(p):
            if p.rank == 0:
                raise ValueError("primary")
            try:
                p.sync()
            except Exception:  # noqa: BLE001 - must NOT catch the abort
                return "swallowed"
            return "ok"

        with pytest.raises(RankFailedError) as ei:
            world.run(program)
        assert ei.value.rank == 0
