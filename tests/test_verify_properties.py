"""Property tests: every registered policy on fuzzed workloads.

Two sweeps share the same fuzzed workload corpus:

* **transparent sweep** — each policy runs 50 short workloads in
  TRANSPARENT mode and every rank's schema-v4 snapshot must satisfy
  :func:`repro.core.stats.conservation_violations`, with the global
  ``cache.evict`` / ``cache.admit`` event stream reconciling exactly
  against the summed snapshot counters;
* **pressure sweep** — the same workloads stripped to their read-only
  ops run in USER_DEFINED mode (``cached-ud:``), where entries survive
  epoch closure, against a three-entry index.  That actually exercises
  the eviction/admission machinery (TRANSPARENT-mode entries die at
  every completion point, so capacity evictions cannot fire there), and
  the same two ledger properties must keep holding under churn.

The workloads are shared across policies (module-scoped fixtures), so a
policy that diverges fails against the exact same programs the others
passed.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.policy import available_policies
from repro.core.stats import conservation_violations
from repro.obs.events import CACHE_ADMIT, CACHE_EVICT
from repro.verify.oracle import _reconcile_events
from repro.verify.runner import Cell, run_cell
from repro.verify.workload import Phase, WorkloadSpec, generate, validate

N_WORKLOADS = 50
POLICIES = sorted(available_policies())


def _read_only(spec: WorkloadSpec) -> WorkloadSpec:
    """Drop every write op; reads and flushes keep their order."""
    phases = []
    for phase in spec.phases:
        ops = tuple(
            tuple(op for op in rank_ops if op.kind not in ("put", "accumulate"))
            for rank_ops in phase.ops
        )
        if any(ops):
            phases.append(Phase(phase.epoch, ops, phase.lock_targets))
    return replace(spec, phases=tuple(phases))


def _check_ledgers(result, cell, spec) -> None:
    assert result.error is None, f"seed {spec.seed}: {result.error}"
    assert result.violations == [], f"seed {spec.seed}: {result.violations}"
    for r, snap in enumerate(result.stats):
        assert snap is not None, f"seed {spec.seed} rank {r}"
        broken = conservation_violations(snap)
        assert not broken, f"seed {spec.seed} rank {r}: {broken}"
    findings = _reconcile_events(result, cell)
    assert not findings, (
        f"seed {spec.seed}: " + "; ".join(f.describe() for f in findings)
    )


@pytest.fixture(scope="module")
def workloads():
    """50 short valid fuzzed workloads."""
    specs = []
    for seed in range(N_WORKLOADS):
        spec = generate(
            seed, nprocs=3, n_phases=2, ops_per_rank=(6, 12), stale_probe=False
        )
        assert validate(spec) == []
        specs.append(spec)
    return specs


@pytest.fixture(scope="module")
def pressured_workloads(workloads):
    """The same workloads, read-only, squeezed into a 3-entry index."""
    specs = []
    for spec in workloads:
        squeezed = replace(
            _read_only(spec), index_entries=3, storage_bytes=1 << 16
        )
        assert validate(squeezed) == []
        specs.append(squeezed)
    return specs


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_conserves_stats_transparent(policy, workloads):
    for spec in workloads:
        cell = Cell(f"cached:{policy}", "deterministic", 0, "none")
        _check_ledgers(run_cell(spec, cell), cell, spec)


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_ledgers_hold_under_eviction_pressure(
    policy, pressured_workloads
):
    pressured = 0
    for spec in pressured_workloads:
        cell = Cell(f"cached-ud:{policy}", "deterministic", 0, "none")
        result = run_cell(spec, cell)
        _check_ledgers(result, cell, spec)
        evict = result.event_counts.get(CACHE_EVICT, 0)
        admit = result.event_counts.get(CACHE_ADMIT, 0)
        if evict or admit:
            pressured += 1
    # the tiny index must actually create churn somewhere, or the
    # reconciliation above trivially compared zeros the whole way
    assert pressured > 0, f"policy {policy} never evicted or rejected"
