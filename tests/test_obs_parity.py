"""Obs-parity determinism suite (ISSUE 9 satellite).

Runs LCC and Barnes-Hut under three telemetry configurations —

  (a) no sinks attached (the zero-overhead path),
  (b) an unbounded ring sink on the global bus,
  (c) a full JSONL sink on the global bus,

— and asserts that results, virtual times and stats snapshots are
bit-identical across all three, and that the (b)/(c) event streams match
the pre-refactor golden expectations committed in
``tests/fixtures/obs_parity_golden.json``.

The golden file is regenerated with::

    PYTHONPATH=src:tests python -c \
        "import test_obs_parity; test_obs_parity.write_golden()"

but MUST only be regenerated when the event schema intentionally changes;
a perf refactor that alters the captured stream is a bug by definition.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.apps import BarnesHutApp, LCCApp
from repro.apps.cachespec import CacheSpec
from repro.util import KiB

GOLDEN_PATH = Path(__file__).parent / "fixtures" / "obs_parity_golden.json"

SINK_MODES = ("none", "ring", "jsonl")


def _spec() -> CacheSpec:
    return CacheSpec.clampi_fixed(256, 256 * KiB)


def _run_lcc():
    app = LCCApp(scale=6, edge_factor=8, seed=3)
    return app.run(4, _spec())


def _run_bh():
    app = BarnesHutApp(nbodies=96, seed=5, theta=0.5)
    return app.run(4, _spec())


WORKLOADS = {"lcc": _run_lcc, "barnes_hut": _run_bh}


def _result_array(run) -> np.ndarray:
    return run.lcc if hasattr(run, "lcc") else run.forces


def _canon_stats(run) -> list[dict]:
    # per-rank stats snapshots, JSON-canonicalised (sorted keys)
    return json.loads(json.dumps(run.cache_stats, sort_keys=True))


def _stream_summary(lines: list[str]) -> dict:
    """Canonical digest of a captured event stream.

    Window ids come from a process-global counter, so remap each distinct
    id to its first-seen ordinal; ``attrs.origin`` holds a buffer identity
    (``id()``, a memory address subject to allocator reuse) and is masked
    out.  Everything else stays byte-strict.
    """
    kinds: dict[str, int] = {}
    win_map: dict = {}
    canon: list[str] = []
    for ln in lines:
        rec = json.loads(ln)
        kinds[rec["kind"]] = kinds.get(rec["kind"], 0) + 1
        if rec.get("win") is not None:
            rec["win"] = win_map.setdefault(rec["win"], len(win_map))
        attrs = rec.get("attrs") or {}
        if "origin" in attrs:
            attrs["origin"] = None
        canon.append(json.dumps(rec, sort_keys=True))
    digest = hashlib.sha256("\n".join(canon).encode("utf-8")).hexdigest()
    return {"count": len(lines), "kinds": kinds, "sha256": digest}


def run_workload(name: str, sink_mode: str) -> dict:
    """Run one workload under one sink configuration; return a snapshot."""
    fn = WORKLOADS[name]
    if sink_mode == "none":
        run = fn()
        stream = None
    elif sink_mode == "ring":
        with obs.capture(obs.RingBufferSink(capacity=None)) as sink:
            run = fn()
        stream = [e.to_json() for e in sink]
    elif sink_mode == "jsonl":
        buf = io.StringIO()
        with obs.capture(obs.JSONLSink(buf)):
            run = fn()
        stream = buf.getvalue().splitlines()
    else:  # pragma: no cover - guarded by SINK_MODES
        raise ValueError(sink_mode)

    arr = np.ascontiguousarray(_result_array(run))
    snap = {
        "result_sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
        "elapsed": repr(run.elapsed),
        "makespan": repr(run.makespan),
        "stats": _canon_stats(run),
    }
    if stream is not None:
        snap["stream"] = _stream_summary(stream)
    return snap


def write_golden() -> None:
    """Regenerate the committed golden file (schema changes only!)."""
    golden = {}
    for name in WORKLOADS:
        golden[name] = {mode: run_workload(name, mode) for mode in SINK_MODES}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestObsParity:
    def test_sink_modes_bit_identical(self, name, golden):
        """(a)/(b)/(c) agree on results, virtual times and stats."""
        snaps = {mode: run_workload(name, mode) for mode in SINK_MODES}
        base = snaps["none"]
        for mode in ("ring", "jsonl"):
            s = snaps[mode]
            assert s["result_sha256"] == base["result_sha256"], mode
            assert s["elapsed"] == base["elapsed"], mode
            assert s["makespan"] == base["makespan"], mode
            assert s["stats"] == base["stats"], mode
        # ... and against the committed pre-refactor goldens.
        for mode in SINK_MODES:
            g = golden[name][mode]
            s = snaps[mode]
            assert s["result_sha256"] == g["result_sha256"], mode
            assert s["elapsed"] == g["elapsed"], mode
            assert s["makespan"] == g["makespan"], mode
            assert s["stats"] == g["stats"], mode

    def test_streams_match_pre_refactor_golden(self, name, golden):
        """(b)/(c) event streams are unchanged vs the pre-refactor capture."""
        ring = run_workload(name, "ring")["stream"]
        jsonl = run_workload(name, "jsonl")["stream"]
        assert ring == jsonl  # identical capture regardless of sink type
        assert ring == golden[name]["ring"]["stream"]
        assert jsonl == golden[name]["jsonl"]["stream"]
