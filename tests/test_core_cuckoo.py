"""Unit + property tests for the cuckoo hash index I_w."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cuckoo import CuckooIndex


class FakeEntry:
    """Minimal Indexable."""

    def __init__(self, trg, dsp):
        self.key = (trg, dsp)
        self.slot = -1

    def __repr__(self):
        return f"FakeEntry{self.key}"


class TestLookupInsert:
    def test_miss_on_empty(self):
        idx = CuckooIndex(16)
        entry, probes = idx.lookup((0, 0))
        assert entry is None
        assert 1 <= probes <= 4

    def test_insert_then_lookup(self):
        idx = CuckooIndex(16)
        e = FakeEntry(1, 100)
        res = idx.insert(e)
        assert res.success
        found, _ = idx.lookup((1, 100))
        assert found is e
        assert e.slot >= 0

    def test_lookup_probes_bounded_by_p(self):
        idx = CuckooIndex(64, num_hashes=4)
        for i in range(40):
            idx.insert(FakeEntry(0, i))
        for i in range(40):
            _e, probes = idx.lookup((0, i))
            assert probes <= 4

    def test_duplicate_key_rejected(self):
        idx = CuckooIndex(16)
        idx.insert(FakeEntry(0, 5))
        with pytest.raises(ValueError):
            idx.insert(FakeEntry(0, 5))

    def test_remove(self):
        idx = CuckooIndex(16)
        e = FakeEntry(2, 3)
        idx.insert(e)
        idx.remove(e)
        assert idx.lookup((2, 3))[0] is None
        assert e.slot == -1
        assert len(idx) == 0

    def test_remove_unstored_raises(self):
        idx = CuckooIndex(16)
        with pytest.raises(KeyError):
            idx.remove(FakeEntry(0, 0))

    def test_len_and_load_factor(self):
        idx = CuckooIndex(32)
        for i in range(8):
            idx.insert(FakeEntry(1, i))
        assert len(idx) == 8
        assert idx.load_factor == pytest.approx(0.25)

    def test_clear(self):
        idx = CuckooIndex(16)
        entries = [FakeEntry(0, i) for i in range(5)]
        for e in entries:
            idx.insert(e)
        idx.clear()
        assert len(idx) == 0
        assert all(e.slot == -1 for e in entries)
        assert all(idx.lookup(e.key)[0] is None for e in entries)


class TestHighLoad:
    def test_fills_to_high_utilisation(self):
        """Fotakis et al.: p=4 reaches ~97% utilisation."""
        idx = CuckooIndex(256, num_hashes=4, max_iterations=64, seed=3)
        inserted = 0
        i = 0
        while inserted < int(0.9 * 256) and i < 1000:
            if idx.insert(FakeEntry(7, i)).success:
                inserted += 1
            i += 1
        assert inserted >= int(0.9 * 256)

    def test_failure_reports_path_and_homeless(self):
        idx = CuckooIndex(8, num_hashes=2, max_iterations=8, seed=1)
        failures = 0
        for i in range(100):
            res = idx.insert(FakeEntry(0, i))
            if not res.success:
                failures += 1
                assert res.homeless is not None
                assert res.path, "failure must expose an insertion path"
                assert res.homeless in res.path or res.homeless.slot == -1
        assert failures > 0, "a tiny table must eventually cycle"

    def test_table_consistent_after_failure(self):
        """After a failed walk every stored entry must still be findable."""
        idx = CuckooIndex(8, num_hashes=2, max_iterations=8, seed=1)
        tracked = []
        for i in range(100):
            e = FakeEntry(0, i)
            res = idx.insert(e)
            if res.success:
                tracked.append(e)
            else:
                # the homeless entry may have been one we tracked
                if res.homeless in tracked:
                    tracked.remove(res.homeless)
                if res.homeless is not e and e not in tracked:
                    tracked.append(e)
        for e in tracked:
            found, _ = idx.lookup(e.key)
            assert found is e, f"{e} lost after insertion failures"

    def test_insert_after_eviction_succeeds(self):
        idx = CuckooIndex(8, num_hashes=2, max_iterations=8, seed=1)
        res = None
        for i in range(200):
            res = idx.insert(FakeEntry(0, i))
            if not res.success:
                break
        assert res is not None and not res.success
        # evict somebody on the path who is stored, then retry the homeless
        stored = [e for e in res.path if e.slot >= 0]
        assert stored
        idx.remove(stored[0])
        assert idx.insert(res.homeless).success


class TestDeterminism:
    def test_same_seed_same_behaviour(self):
        def run(seed):
            idx = CuckooIndex(32, seed=seed)
            out = []
            for i in range(60):
                out.append(idx.insert(FakeEntry(0, i)).success)
            return out

        assert run(5) == run(5)

    def test_different_capacity_different_hashes(self):
        a = CuckooIndex(16, seed=1)
        b = CuckooIndex(64, seed=1)
        assert a.candidate_slots((0, 1)) != b.candidate_slots((0, 1))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CuckooIndex(0)
        with pytest.raises(ValueError):
            CuckooIndex(8, num_hashes=1)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 1000)),
        unique=True,
        max_size=120,
    ),
    removals=st.sets(st.integers(0, 119)),
)
def test_property_every_live_key_findable(keys, removals):
    """Insert a batch, remove a subset: lookups always agree with the model."""
    idx = CuckooIndex(256, seed=11)
    live = {}
    for i, key in enumerate(keys):
        e = FakeEntry(*key)
        res = idx.insert(e)
        if res.success:
            live[key] = e
        elif res.homeless is not e:
            live[key] = e
            del live[res.homeless.key]
    for i in sorted(removals):
        if i < len(keys) and keys[i] in live:
            idx.remove(live.pop(keys[i]))
    for key, e in live.items():
        found, probes = idx.lookup(key)
        assert found is e
        assert probes <= idx.num_hashes
    assert len(idx) == len(live)
