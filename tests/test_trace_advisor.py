"""Tests for the working-set-based parameter advisor."""

import numpy as np
import pytest

from repro.apps.cachespec import CacheSpec
from repro.bench import make_micro_workload, run_micro
from repro.trace import GetRecord, recommend_parameters
from repro.util import KiB


def R(trg, dsp, size=64):
    return GetRecord(trg, dsp, size)


class TestRecommendation:
    def test_empty_trace_gives_minimums(self):
        rec = recommend_parameters([], min_index=128, min_storage=1 * KiB)
        assert rec.index_entries == 128
        assert rec.storage_bytes == 1 * KiB

    def test_peaks_computed(self):
        records = [R(0, i, 100) for i in range(10)]  # 10 distinct gets
        rec = recommend_parameters(records)
        assert rec.peak_working_set == 10
        assert rec.peak_footprint == 1000

    def test_index_headroom_over_peak(self):
        records = [R(0, i) for i in range(1000)]
        rec = recommend_parameters(records, min_index=1)
        assert rec.index_entries > 1000  # load-factor + headroom margin

    def test_storage_covers_aligned_footprint(self):
        records = [R(0, i * 64, 1) for i in range(100)]  # 1-byte gets
        rec = recommend_parameters(records, min_storage=1)
        # each 1-byte entry occupies a 64-byte line
        assert rec.storage_bytes >= 100 * 64

    def test_smaller_tau_smaller_recommendation(self):
        # phase-structured access: 100 distinct, but any 10-window sees <= 10
        records = [R(0, i) for i in range(100)]
        full = recommend_parameters(records)
        phased = recommend_parameters(records, tau=10)
        assert phased.index_entries <= full.index_entries

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            recommend_parameters([R(0, 0)], headroom=0.5)


class TestAdvisorEndToEnd:
    def test_recommended_cache_mostly_hits(self):
        """Trace a workload uncached, size the cache, re-run: high hit rate,
        (almost) no capacity/failing accesses."""
        wl = make_micro_workload(n_distinct=300, z=4000, seed=6)
        records = [
            GetRecord(1, int(wl.displacements[i]), int(wl.sizes[i]))
            for i in wl.sequence
        ]
        rec = recommend_parameters(records)
        res = run_micro(
            wl, CacheSpec.clampi_fixed(rec.index_entries, rec.storage_bytes)
        )
        s = res.stats
        assert s["capacity"] == 0
        assert s["failing"] == 0
        hits = s["hit_full"] + s["hit_pending"] + s["hit_partial"]
        assert hits / s["gets"] > 0.85

    def test_adaptive_converges_near_recommendation(self):
        """The runtime controller should land in the advisor's ballpark."""
        from repro import clampi

        wl = make_micro_workload(n_distinct=200, z=6000, seed=6)
        records = [
            GetRecord(1, int(wl.displacements[i]), int(wl.sizes[i]))
            for i in wl.sequence
        ]
        rec = recommend_parameters(records)
        res = run_micro(
            wl,
            CacheSpec.clampi_adaptive(
                64,
                64 * KiB,
                adaptive_params=clampi.AdaptiveParams(check_interval=256),
            ),
        )
        assert res.final_index_entries >= 0.25 * rec.peak_working_set
        assert res.final_storage_bytes >= 0.25 * rec.peak_footprint
