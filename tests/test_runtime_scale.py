"""Scalability/stress tests of the cooperative runtime."""

import numpy as np

from repro.mpi import SimMPI, Window
from repro.runtime import SimWorld


class TestManyRanks:
    def test_64_rank_barrier_storm(self):
        def program(p):
            for i in range(20):
                p.advance(1e-9 * ((p.rank * 7 + i) % 5))
                p.sync()
            return p.clock

        world = SimWorld(64)
        results = world.run(program)
        assert len(set(results)) == 1  # everyone aligned

    def test_128_rank_allgather(self):
        mpi = SimMPI(nprocs=128)

        def program(m):
            return sum(m.comm_world.allgather(m.rank))

        results = mpi.run(program)
        assert results == [127 * 128 // 2] * 128

    def test_many_rank_window_ring(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.local_view(np.int64)[:] = m.rank
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(8, np.int64)
            win.get(buf, (m.rank + 1) % m.size, 0)
            win.flush((m.rank + 1) % m.size)
            win.unlock_all()
            return int(buf[0])

        results = SimMPI(nprocs=48).run(program)
        assert results == [(r + 1) % 48 for r in range(48)]

    def test_deep_sync_sequence_single_rank(self):
        def program(p):
            for _ in range(2000):
                p.sync()
            return True

        assert SimWorld(1).run(program) == [True]

    def test_collective_cost_scales_logarithmically(self):
        def program(m):
            m.comm_world.barrier()
            return m.time

        times = {}
        for n in (4, 16, 64):
            mpi = SimMPI(nprocs=n)
            mpi.run(program)
            times[n] = mpi.elapsed
        # tree model: log2(64)/log2(4) = 3x, far from linear 16x
        assert times[64] < 5 * times[4]
