"""End-to-end analysis runs: real apps under strict mode + the CLI.

The headline acceptance check of the analyzer: the paper's two
applications (LCC and Barnes-Hut) run with CLaMPI caching under
``sanitize(strict=True)`` without a single violation — their
get/flush/epoch discipline is exactly what the sanitizer models.  Also
covers the offline ``report`` subcommand over a JSONL capture and the
``smoke`` subcommand wired into CI.
"""

import json

from repro.analysis import sanitize
from repro.analysis.__main__ import main
from repro.apps.barnes_hut import BarnesHutApp
from repro.apps.cachespec import CacheSpec
from repro.apps.lcc import LCCApp
from repro.obs.events import RMA_FLUSH, RMA_GET, RMA_PUT, Event


def spec():
    return CacheSpec.clampi_fixed(256, 64 * 1024)


class TestAppsCleanUnderStrict:
    def test_lcc_is_violation_free(self):
        app = LCCApp(scale=5, edge_factor=8, seed=2)
        with sanitize(strict=True) as san:
            result = app.run(nprocs=4, spec=spec())
        assert san.violations == []
        assert san._seq > 100  # the sanitizer really saw the op stream
        assert result.lcc.shape == (app.nvertices,)

    def test_barnes_hut_is_violation_free(self):
        app = BarnesHutApp(nbodies=64, seed=3)
        with sanitize(strict=True) as san:
            result = app.run(nprocs=4, spec=spec())
        assert san.violations == []
        assert san._seq > 100
        assert result.forces.shape == (64, 3)


class TestReportCLI:
    def _write_capture(self, path, events):
        with open(path, "w", encoding="utf-8") as fh:
            for e in events:
                fh.write(e.to_json() + "\n")

    def test_racy_capture_reported(self, tmp_path, capsys):
        cap = tmp_path / "racy.jsonl"
        self._write_capture(
            cap,
            [
                Event(
                    RMA_PUT, 0, 0.0, 0, 1,
                    attrs={"target": 2, "base": 0, "span": 64, "nbytes": 64},
                ),
                Event(
                    RMA_GET, 1, 0.0, 0, 1,
                    attrs={"target": 2, "base": 32, "span": 64, "nbytes": 64},
                ),
            ],
        )
        assert main(["report", str(cap)]) == 1
        out = capsys.readouterr().out
        assert "race.put-get" in out and "1 violation" in out

    def test_clean_capture_reports_zero(self, tmp_path, capsys):
        cap = tmp_path / "clean.jsonl"
        self._write_capture(
            cap,
            [
                Event(
                    RMA_PUT, 0, 0.0, 0, 1,
                    attrs={"target": 2, "base": 0, "span": 64, "nbytes": 64},
                ),
                Event(RMA_FLUSH, 0, 0.0, 0, 1, attrs={"target": 2}),
                Event(
                    RMA_GET, 1, 0.0, 0, 1,
                    attrs={"target": 2, "base": 32, "span": 64, "nbytes": 64},
                ),
            ],
        )
        assert main(["report", str(cap)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_missing_capture_is_an_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestSmokeCLI:
    def test_small_strict_smoke_is_clean(self, tmp_path, capsys):
        report = tmp_path / "violations.jsonl"
        code = main(
            [
                "smoke", "--strict", "--nprocs", "2",
                "--scale", "4", "--nbodies", "32",
                "--report", str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lcc: clean" in out and "barnes-hut: clean" in out
        assert report.read_text() == ""  # artifact exists, holds no violations

    def test_violations_serialise_to_jsonl(self, tmp_path):
        # The artifact format: one Violation.to_dict object per line.
        from repro.analysis import Sanitizer
        from repro.obs.events import RMA_GET as G, RMA_PUT as P

        san = Sanitizer()
        san.handle(
            Event(P, 0, 0.0, 0, 1,
                  attrs={"target": 2, "base": 0, "span": 64, "nbytes": 64})
        )
        san.handle(
            Event(G, 1, 0.0, 0, 1,
                  attrs={"target": 2, "base": 0, "span": 64, "nbytes": 64})
        )
        line = json.dumps(san.violations[0].to_dict())
        back = json.loads(line)
        assert back["kind"] == "race.put-get"
        assert [op["op"] for op in back["ops"]] == ["put", "get"]
