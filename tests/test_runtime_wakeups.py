"""Targeted scheduler wakeups vs the legacy broadcast mode.

The dispatcher's *selection* rule (smallest ``(clock, rank)`` READY
process) is shared by both wakeup modes; only who gets woken differs.
These tests pin the invariant that makes the optimisation safe: the
``sched.switch`` trace — the exact ``(clock, rank)`` dispatch order — is
identical under ``wakeup="targeted"`` and ``wakeup="broadcast"``, and so
are the final virtual clocks.  Failure and deadlock propagation must also
survive the switch from notify_all() storms to single notifies.
"""

import pytest

from repro import obs
from repro.runtime.scheduler import DeadlockError, RankFailedError, SimWorld


def chatty_program(proc, rounds=6):
    """Unequal per-rank advances so the dispatch order actually varies."""
    for i in range(rounds):
        proc.advance(1e-6 * ((proc.rank * 7 + i * 3) % 5 + 1))
        proc.sync(payload=proc.rank)
    return proc.clock


def switch_trace(wakeup, nprocs=4, schedule="deterministic", seed=0):
    world = SimWorld(nprocs, schedule=schedule, seed=seed, wakeup=wakeup)
    with obs.capture() as sink:
        world.run(chatty_program)
    trace = [
        (e.time, e.rank, e.attrs["from"])
        for e in sink.events(kind=obs.SCHED_SWITCH)
    ]
    return trace, world.clocks


class TestTraceIdentity:
    def test_deterministic_schedule_identical_switch_order(self):
        targeted, clocks_t = switch_trace("targeted")
        broadcast, clocks_b = switch_trace("broadcast")
        assert len(targeted) > 4  # the workload really does switch
        assert targeted == broadcast
        assert clocks_t == clocks_b

    def test_random_schedule_identical_switch_order(self):
        # Same seed -> same RNG draws; wakeup mode must not perturb them.
        targeted, clocks_t = switch_trace("targeted", schedule="random", seed=7)
        broadcast, clocks_b = switch_trace("broadcast", schedule="random", seed=7)
        assert targeted == broadcast
        assert clocks_t == clocks_b

    def test_default_mode_is_targeted(self):
        world = SimWorld(2)
        assert world._wakeup == "targeted"
        assert world._rank_conds[0] is not world._rank_conds[1]

    def test_broadcast_mode_shares_one_condition(self):
        world = SimWorld(3, wakeup="broadcast")
        assert all(c is world._cond for c in world._rank_conds)

    def test_unknown_wakeup_mode_rejected(self):
        with pytest.raises(ValueError, match="wakeup"):
            SimWorld(2, wakeup="telepathy")


class TestFailurePropagation:
    def test_rank_failure_unwinds_targeted_world(self):
        def faulty(proc):
            proc.sync()
            if proc.rank == 1:
                raise RuntimeError("boom")
            proc.sync()

        world = SimWorld(3, wakeup="targeted", join_timeout=10.0)
        with pytest.raises(RankFailedError) as exc_info:
            world.run(faulty)
        assert exc_info.value.rank == 1

    def test_deadlock_detected_under_targeted_wakeups(self):
        def uneven(proc):
            if proc.rank == 0:
                return None  # finishes; rank 1's sync can never complete
            proc.sync()

        world = SimWorld(2, wakeup="targeted", join_timeout=10.0)
        with pytest.raises(DeadlockError):
            world.run(uneven)
