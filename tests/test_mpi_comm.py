"""Unit tests for simulated communicators and collectives."""

import pytest

from repro.mpi import ReduceOp, SimMPI


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestBasics:
    def test_rank_and_size(self):
        results, _ = run(4, lambda m: (m.comm_world.rank, m.comm_world.size))
        assert results == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_compute_charges_time(self):
        def program(m):
            m.compute(1e-3)
            return m.time

        results, _ = run(2, program)
        assert all(t >= 1e-3 for t in results)


class TestCollectives:
    def test_barrier_aligns_time(self):
        def program(m):
            m.compute(1e-6 * m.rank)
            m.comm_world.barrier()
            return m.time

        results, _ = run(4, program)
        assert len(set(results)) == 1
        assert results[0] > 3e-6  # at least the slowest rank's compute

    def test_allgather(self):
        def program(m):
            return m.comm_world.allgather(m.rank**2)

        results, _ = run(4, program)
        for r in results:
            assert r == [0, 1, 4, 9]

    def test_bcast_from_nonzero_root(self):
        def program(m):
            return m.comm_world.bcast("payload" if m.rank == 2 else None, root=2)

        results, _ = run(4, program)
        assert results == ["payload"] * 4

    def test_gather_only_root_receives(self):
        def program(m):
            return m.comm_world.gather(m.rank, root=1)

        results, _ = run(3, program)
        assert results[0] is None
        assert results[1] == [0, 1, 2]
        assert results[2] is None

    def test_allreduce_sum(self):
        def program(m):
            return m.comm_world.allreduce(m.rank + 1, ReduceOp.SUM)

        results, _ = run(4, program)
        assert results == [10] * 4

    def test_allreduce_max_min(self):
        def program(m):
            c = m.comm_world
            return c.allreduce(m.rank, ReduceOp.MAX), c.allreduce(m.rank, ReduceOp.MIN)

        results, _ = run(5, program)
        assert results == [(4, 0)] * 5

    def test_allreduce_logical(self):
        def program(m):
            c = m.comm_world
            return (
                c.allreduce(m.rank > 0, ReduceOp.LAND),
                c.allreduce(m.rank == 2, ReduceOp.LOR),
            )

        results, _ = run(3, program)
        assert results == [(False, True)] * 3

    def test_invalid_root(self):
        from repro.runtime import RankFailedError

        def program(m):
            m.comm_world.bcast(1, root=9)

        with pytest.raises(RankFailedError):
            run(2, program)

    def test_collective_cost_grows_with_ranks(self):
        def program(m):
            m.comm_world.barrier()
            return m.time

        _, mpi2 = run(2, program)
        _, mpi32 = run(32, program)
        assert mpi32.elapsed > mpi2.elapsed


class TestLauncher:
    def test_elapsed_before_run_raises(self):
        mpi = SimMPI(nprocs=2)
        with pytest.raises(RuntimeError):
            _ = mpi.elapsed

    def test_perf_mismatch_rejected(self):
        from repro.net import PerfModel

        with pytest.raises(ValueError):
            SimMPI(nprocs=4, perf=PerfModel.default(8))

    def test_clocks_exposed(self):
        _, mpi = run(3, lambda m: m.compute(1e-6))
        assert len(mpi.clocks) == 3
