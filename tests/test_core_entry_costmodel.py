"""Unit tests for cache entries, layout coverage and the cost model."""

import numpy as np
import pytest

from repro.core.costmodel import CostModel
from repro.core.entry import CacheEntry, payload_prefix_blocks
from repro.core.states import EntryState
from repro.mpi import BYTE, FLOAT64, INT32, Contiguous, Vector
from repro.net import MemoryModel


class TestPayloadPrefixBlocks:
    def test_exact_prefix(self):
        blocks = [(0, 10), (20, 10)]
        assert payload_prefix_blocks(blocks, 10) == [(0, 10)]

    def test_split_block(self):
        blocks = [(0, 10), (20, 10)]
        assert payload_prefix_blocks(blocks, 15) == [(0, 10), (20, 5)]

    def test_zero(self):
        assert payload_prefix_blocks([(0, 10)], 0) == []

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            payload_prefix_blocks([(0, 10)], 11)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            payload_prefix_blocks([], -1)


class TestCacheEntry:
    def test_key_is_trg_dsp(self):
        e = CacheEntry(3, 128, BYTE, 64)
        assert e.key == (3, 128)
        assert e.size == 64

    def test_size_uses_dtype(self):
        e = CacheEntry(0, 0, FLOAT64, 10)
        assert e.size == 80

    def test_covers_same_dtype_smaller_count(self):
        e = CacheEntry(0, 0, INT32, 100)
        assert e.covers(INT32, 50)
        assert e.covers(INT32, 100)
        assert not e.covers(INT32, 101)

    def test_covers_compatible_layout_different_dtype(self):
        # 50 int32 == 200 bytes == prefix of 100 int32 payload
        e = CacheEntry(0, 0, INT32, 100)
        assert e.covers(BYTE, 200)
        assert e.covers(Contiguous(25, INT32), 2)

    def test_covers_rejects_layout_mismatch(self):
        # entry holds a strided vector; a contiguous request of the same
        # payload size reads different target bytes
        strided = Vector(4, 1, 2, INT32)
        e = CacheEntry(0, 0, strided, 1)
        assert e.size == 16
        assert not e.covers(BYTE, 16)
        assert e.covers(strided, 1)

    def test_relayout(self):
        e = CacheEntry(0, 0, BYTE, 10)
        e.relayout(INT32, 30)
        assert e.size == 120
        assert e.dtype is INT32

    def test_transition_enforced(self):
        from repro.core.states import IllegalTransition

        e = CacheEntry(0, 0, BYTE, 1)
        with pytest.raises(IllegalTransition):
            e.transition(EntryState.CACHED)
        e.transition(EntryState.PENDING)
        e.transition(EntryState.CACHED)
        e.transition(EntryState.MISSING)


class TestCostModel:
    def test_accumulates_total(self):
        cm = CostModel(MemoryModel())
        cm.lookup()
        cm.copy(1024)
        cm.probes(4)
        assert cm.total > 0

    def test_sink_receives_charges(self):
        charges = []
        cm = CostModel(MemoryModel(), sink=charges.append)
        cm.lookup()
        cm.eviction_visits(10)
        assert len(charges) == 2
        assert sum(charges) == pytest.approx(cm.total)

    def test_lookup_constant(self):
        cm = CostModel(MemoryModel())
        cm.lookup()
        a = cm.total
        cm.lookup()
        assert cm.total == pytest.approx(2 * a)

    def test_copy_scales_with_size(self):
        mem = MemoryModel()
        cm = CostModel(mem)
        cm.copy(1024)
        small = cm.total
        cm2 = CostModel(mem)
        cm2.copy(1 << 20)
        assert cm2.total > 10 * small

    def test_invalidate_scales_with_entries(self):
        cm1 = CostModel(MemoryModel())
        cm1.invalidate(0)
        cm2 = CostModel(MemoryModel())
        cm2.invalidate(100_000)
        assert cm2.total > cm1.total

    def test_adjust_scales_with_new_sizes(self):
        cm1 = CostModel(MemoryModel())
        cm1.adjust(1024, 1 << 20)
        cm2 = CostModel(MemoryModel())
        cm2.adjust(1 << 20, 1 << 30)
        assert cm2.total > cm1.total

    def test_no_sink_is_fine(self):
        cm = CostModel()
        cm.descriptor_updates(3)
        cm.avl_steps(7)
        assert cm.total > 0
