"""Unit tests for simulated MPI-3 RMA windows: epochs, get/put, timing."""

import numpy as np
import pytest

from repro.mpi import (
    BYTE,
    EpochError,
    Indexed,
    SimMPI,
    Vector,
    Window,
    WindowError,
)
from repro.runtime import RankFailedError


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestCreation:
    def test_allocate_zero_initialised(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            return int(win.local_buffer.sum())

        results, _ = run(2, program)
        assert results == [0, 0]

    def test_create_over_existing_buffer(self):
        def program(m):
            buf = np.full(16, m.rank + 1, np.int32)
            win = Window.create(m.comm_world, buf)
            m.comm_world.barrier()
            win.lock(0)
            out = np.empty(16, np.int32)
            win.get(out, 0, 0)
            win.unlock(0)
            return out[0]

        results, _ = run(3, program)
        assert results == [1, 1, 1]

    def test_heterogeneous_sizes(self):
        def program(m):
            nbytes = 128 if m.rank == 0 else 0
            win = Window.allocate(m.comm_world, nbytes)
            return win.size_of(0), win.size_of(1)

        results, _ = run(2, program)
        assert results == [(128, 0), (128, 0)]

    def test_shared_win_id(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            return win.win_id

        results, _ = run(4, program)
        assert len(set(results)) == 1

    def test_info_per_rank(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8, info={"k": m.rank})
            return win.info["k"]

        results, _ = run(2, program)
        assert results == [0, 1]

    def test_negative_size_rejected(self):
        def program(m):
            Window.allocate(m.comm_world, -1)

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_free_then_use_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            win.free()
            win.lock_all()

        with pytest.raises(RankFailedError) as ei:
            run(2, program)
        assert isinstance(ei.value.original, WindowError)


class TestEpochRules:
    def test_get_outside_epoch_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            buf = np.empty(8, np.uint8)
            win.get(buf, 0, 0)

        with pytest.raises(RankFailedError) as ei:
            run(1, program)
        assert isinstance(ei.value.original, EpochError)

    def test_lock_wrong_target_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            win.lock(0)
            buf = np.empty(4, np.uint8)
            win.get(buf, 1, 0)  # locked 0, targeting 1

        with pytest.raises(RankFailedError) as ei:
            run(2, program)
        assert isinstance(ei.value.original, EpochError)

    def test_double_lock_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            win.lock(0)
            win.lock(0)

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_unlock_without_lock_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            win.unlock(0)

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_unlock_wrong_rank_message_names_rank_and_state(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            win.lock(1)
            try:
                win.unlock(0)
            except EpochError as exc:
                msg = str(exc)
            else:
                msg = "no error"
            win.unlock(1)
            return msg

        results, _ = run(2, program)
        assert "unlock(0)" in results[0]
        assert "not locked by rank 0" in results[0]
        assert "locked ranks [1]" in results[0]

    def test_unlock_all_without_lock_all_message(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            try:
                win.unlock_all()
            except EpochError as exc:
                return str(exc)
            return "no error"

        results, _ = run(2, program)
        assert "unlock_all on rank 0" in results[0]
        assert "unlock_all on rank 1" in results[1]
        assert "no epoch open" in results[0]

    def test_flush_outside_epoch_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            win.flush(0)

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_fence_inside_passive_epoch_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            win.lock_all()
            win.fence()

        with pytest.raises(RankFailedError):
            run(2, program)

    def test_epoch_counter_increments(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.lock_all()
            buf = np.empty(8, np.uint8)
            win.get(buf, 0, 0)
            win.flush(0)          # +1
            win.get(buf, 0, 0)
            win.flush_all()       # +1
            win.unlock_all()      # +1
            return win.eph

        results, _ = run(2, program)
        assert results == [3, 3]

    def test_epoch_close_hooks_fire(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            events = []
            win.add_epoch_close_hook(lambda w, t: events.append(t))
            win.lock(0)
            win.flush(0)
            win.unlock(0)
            return events

        results, _ = run(1, program)
        assert results[0] == [{0}, {0}]


class TestDataMovement:
    def test_put_then_get_roundtrip(self):
        def program(m):
            win = Window.allocate(m.comm_world, 256)
            win.lock_all()
            if m.rank == 0:
                data = np.arange(32, dtype=np.int64)
                win.put(data, 1, 0)
                win.flush(1)
            win.unlock_all()
            m.comm_world.barrier()
            win.lock_all()
            out = np.zeros(32, np.int64)
            win.get(out, 1, 0)
            win.flush(1)
            win.unlock_all()
            return out.tolist()

        results, _ = run(2, program)
        assert results[0] == list(range(32))
        assert results[1] == list(range(32))

    def test_disp_unit_scaling(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64, disp_unit=8)
            win.local_view(np.int64)[:] = np.arange(8) + 10 * m.rank
            m.comm_world.barrier()
            win.lock(1)
            out = np.empty(1, np.int64)
            win.get(out, 1, 3)  # element 3 of rank 1
            win.unlock(1)
            return int(out[0])

        results, _ = run(2, program)
        assert results == [13, 13]

    def test_strided_get_with_vector_type(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.local_view(np.int32)[:] = np.arange(16) + 100 * m.rank
            m.comm_world.barrier()
            win.lock(1)
            out = np.empty(3, np.int32)
            dt = Vector(3, 1, 4, __import__("repro.mpi", fromlist=["INT32"]).INT32)
            win.get(out, 1, 0, count=1, datatype=dt)
            win.unlock(1)
            return out.tolist()

        results, _ = run(2, program)
        assert results[0] == [100, 104, 108]

    def test_indexed_put_scatters(self):
        def program(m):
            win = Window.allocate(m.comm_world, 16)
            m.comm_world.barrier()
            if m.rank == 0:
                win.lock(1)
                dt = Indexed((2, 2), (0, 6), BYTE)
                win.put(np.array([1, 2, 3, 4], np.uint8), 1, 0, count=1, datatype=dt)
                win.unlock(1)
            m.comm_world.barrier()
            return win.local_buffer[:8].tolist()

        results, _ = run(2, program)
        assert results[1] == [1, 2, 0, 0, 0, 0, 3, 4]

    def test_out_of_bounds_get_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 16)
            win.lock_all()
            buf = np.empty(32, np.uint8)
            win.get(buf, 0, 0)

        with pytest.raises(RankFailedError) as ei:
            run(1, program)
        assert isinstance(ei.value.original, WindowError)

    def test_small_origin_buffer_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.lock_all()
            buf = np.empty(4, np.uint8)
            win.get(buf, 0, 0, count=16, datatype=BYTE)

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_bytes_transferred_accounting(self):
        def program(m):
            win = Window.allocate(m.comm_world, 128)
            win.lock_all()
            buf = np.empty(100, np.uint8)
            win.get(buf, 0, 0)
            win.put(buf[:28], 0, 100)
            win.unlock_all()
            return win.bytes_transferred

        results, _ = run(1, program)
        assert results == [128]

    def test_bytes_by_distance_accounting(self):
        from repro.net import Distance

        def program(m):
            win = Window.allocate(m.comm_world, 256)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            buf = np.empty(64, np.uint8)
            win.lock_all()
            win.get(buf, 0, 0)    # SELF
            win.get(buf, 1, 0)    # same node (2 ranks/node)
            win.get(buf[:32], 2, 0)  # different node, same chassis
            win.unlock_all()
            return win.bytes_by_distance

        results, _ = run(4, program, ranks_per_node=2)
        by_dist = results[0]
        assert by_dist[Distance.SELF] == 64
        assert by_dist[Distance.SAME_NODE] == 64
        assert by_dist[Distance.SAME_CHASSIS] == 32


class TestTiming:
    def test_remote_get_slower_than_local(self):
        def program(m):
            win = Window.allocate(m.comm_world, 4096)
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(1024, np.uint8)
            t0 = m.time
            win.get(buf, m.rank, 0)
            win.flush(m.rank)
            local = m.time - t0
            t0 = m.time
            win.get(buf, (m.rank + 1) % m.size, 0)
            win.flush((m.rank + 1) % m.size)
            remote = m.time - t0
            win.unlock_all()
            return local, remote

        results, _ = run(2, program)
        for local, remote in results:
            assert remote > 3 * local

    def test_concurrent_gets_overlap_on_the_wire(self):
        """k gets in one epoch cost ~1 transfer + k injections, not k transfers."""

        def program(m, k):
            win = Window.allocate(m.comm_world, 1 << 16)
            m.comm_world.barrier()
            if m.rank == 1:
                return 0.0
            win.lock(1)
            bufs = [np.empty(4096, np.uint8) for _ in range(k)]
            t0 = m.time
            for i, b in enumerate(bufs):
                win.get(b, 1, i * 4096)
            win.flush(1)
            dt = m.time - t0
            win.unlock(1)
            return dt

        r1, _ = run(2, lambda m: program(m, 1))
        r8, _ = run(2, lambda m: program(m, 8))
        assert r8[0] < 3 * r1[0]

    def test_larger_transfers_take_longer(self):
        def program(m, size):
            win = Window.allocate(m.comm_world, 1 << 20)
            m.comm_world.barrier()
            if m.rank == 1:
                return 0.0
            win.lock(1)
            buf = np.empty(size, np.uint8)
            t0 = m.time
            win.get(buf, 1, 0)
            win.flush(1)
            dt = m.time - t0
            win.unlock(1)
            return dt

        small, _ = run(2, lambda m: program(m, 64))
        large, _ = run(2, lambda m: program(m, 1 << 19))
        assert large[0] > 2 * small[0]
