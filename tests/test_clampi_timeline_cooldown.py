"""Tests for the epoch timeline recorder and the controller cooldown."""

import numpy as np
import pytest

from repro import clampi
from repro.apps.cachespec import CacheSpec
from repro.bench import make_micro_workload, run_micro
from repro.mpi import SimMPI
from repro.util import KiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestTimeline:
    def test_disabled_by_default(self):
        def program(m):
            win = clampi.window_allocate(m.comm_world, 1024)
            return win.timeline

        results, _ = run(1, program)
        assert results == [None]

    def test_samples_at_every_epoch_close(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world,
                4 * KiB,
                mode=clampi.Mode.ALWAYS_CACHE,
                config=clampi.Config(record_timeline=True),
            )
            m.comm_world.barrier()
            if m.rank != 0:
                return []
            buf = np.empty(64, np.uint8)
            win.lock_all()
            for _ in range(5):
                win.get_blocking(buf, 1, 0)
            win.unlock_all()
            return win.timeline

        results, _ = run(2, program)
        timeline = results[0]
        assert len(timeline) == 6  # 5 flushes + unlock_all
        ephs = [t[0] for t in timeline]
        assert ephs == sorted(ephs)
        gets = [t[1] for t in timeline]
        hits = [t[2] for t in timeline]
        assert gets[-1] == 5
        assert hits[-1] == 4  # everything after the first get hit

    def test_hit_ratio_rises_as_cache_warms(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world,
                16 * KiB,
                mode=clampi.Mode.ALWAYS_CACHE,
                config=clampi.Config(record_timeline=True),
            )
            m.comm_world.barrier()
            if m.rank != 0:
                return []
            rng = np.random.default_rng(1)
            buf = np.empty(64, np.uint8)
            win.lock_all()
            for _ in range(200):
                win.get_blocking(buf, 1, int(rng.integers(0, 32)) * 64)
            win.unlock_all()
            return win.timeline

        results, _ = run(2, program)
        timeline = results[0]
        early = timeline[20]
        late = timeline[-1]
        assert late[2] / late[1] > early[2] / early[1]


class TestCooldown:
    def _run_adaptive(self, cooldown):
        wl = make_micro_workload(n_distinct=600, z=6000, seed=2)
        spec = CacheSpec.clampi_adaptive(
            32,
            32 * KiB,
            adaptive_params=clampi.AdaptiveParams(
                check_interval=128, cooldown_intervals=cooldown
            ),
        )
        return run_micro(wl, spec)

    def test_cooldown_reduces_adjustment_count(self):
        eager = self._run_adaptive(0)
        damped = self._run_adaptive(4)
        assert damped.stats["adjustments"] <= eager.stats["adjustments"]
        assert damped.stats["adjustments"] >= 1  # still converges

    def test_cooldown_still_correct(self):
        res = self._run_adaptive(4)
        assert res.stats["gets"] == 6000

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            clampi.AdaptiveParams(cooldown_intervals=-1)
