"""Schedule-independence: programs must not depend on rank interleaving.

The random scheduling mode replaces the deterministic (clock, rank) pick
with a seeded-random choice among READY ranks.  Virtual times must be
unaffected (clocks are per-rank; collectives take the max), and the
applications must produce identical results under any interleaving.
"""

import numpy as np
import pytest

from repro.apps import LCCApp
from repro.apps.bfs import BFSApp
from repro.apps.cachespec import CacheSpec
from repro.mpi import SimMPI
from repro.net import PerfModel
from repro.runtime import SimWorld
from repro.util import MiB


class TestRuntimeMode:
    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            SimWorld(2, schedule="chaotic")

    def test_random_schedule_changes_interleaving(self):
        def program(p, log):
            for _ in range(5):
                p.sync()
                log.append(p.rank)

        def order(schedule, seed):
            log: list[int] = []
            SimWorld(4, schedule=schedule, seed=seed).run(program, log)
            return log

        det = order("deterministic", 0)
        randomised = [order("random", s) for s in range(6)]
        assert any(r != det for r in randomised), "random mode never deviated"

    def test_clocks_identical_across_schedules(self):
        def program(p):
            for i in range(4):
                p.advance(1e-6 * ((p.rank + i) % 3))
                p.sync(extra_time=1e-7)
            return p.clock

        base = SimWorld(4).run(program)
        for seed in range(4):
            rand = SimWorld(4, schedule="random", seed=seed).run(program)
            assert rand == base


class TestApplicationInvariance:
    def test_lcc_identical_under_random_schedules(self):
        app = LCCApp(scale=6, edge_factor=8, seed=2)
        base = app.run(3, CacheSpec.clampi_fixed(512, 1 * MiB))
        for seed in range(3):
            perf = PerfModel.spread(3)
            mpi_kwargs = dict(perf=perf)
            run = app.run(
                3,
                CacheSpec.clampi_fixed(512, 1 * MiB),
                perf=perf,
            )
            # direct re-run through a random-schedule SimMPI
            from repro.apps.lcc import _lcc_rank_program

            mpi = SimMPI(nprocs=3, perf=perf, schedule="random", schedule_seed=seed)
            src, dst = app._edges
            results = mpi.run(
                _lcc_rank_program,
                app.csr,
                src,
                dst,
                CacheSpec.clampi_fixed(512, 1 * MiB),
                False,
            )
            lcc = np.zeros(app.nvertices)
            for lo, hi, values, *_rest in results:
                lcc[lo:hi] = values
            assert np.array_equal(lcc, base.lcc), f"seed {seed}"
            assert max(r[3] for r in results) == pytest.approx(base.elapsed)

    def test_bfs_identical_under_random_schedules(self):
        from repro.apps.bfs import _bfs_rank_program

        app = BFSApp(scale=6, edge_factor=8, seed=2)
        base = app.run(3, [0, 9], CacheSpec.fompi())
        src, dst = app._edges
        for seed in range(3):
            mpi = SimMPI(
                nprocs=3,
                perf=PerfModel.spread(3),
                schedule="random",
                schedule_seed=seed,
            )
            results = mpi.run(
                _bfs_rank_program, app.csr, src, dst, [0, 9],
                CacheSpec.fompi(), False,
            )
            assert np.array_equal(results[0][0], base.distances), f"seed {seed}"


class TestCrashScheduleInvariance:
    """Crash-stop runs must also be schedule-independent.

    A planned crash fires at a *virtual* time, so which program point it
    hits is fixed by the clocks, not by dispatch order: the surviving
    forces, the per-rank virtual clocks and the crashed set must be
    bit-identical under every interleaving (this pins the
    barrier-atomicity rule — a sync that committed before the crash
    completes for every participant under any dispatch order).
    """

    def test_barnes_hut_with_crash_identical_across_schedules(self):
        from repro import clampi
        from repro.apps import BarnesHutApp
        from repro.apps.barnes_hut import _bh_rank_program
        from repro.faults import FaultPlan, FaultRule

        app = BarnesHutApp(nbodies=96, seed=11, theta=0.6)
        spec = CacheSpec.clampi_fixed(256, 1 * MiB)
        if spec.kind.value == "clampi":
            spec = spec.with_mode(clampi.Mode.USER_DEFINED)
        nprocs = 3
        perf = PerfModel.spread(nprocs)

        def run(schedule: str, seed: int, faults):
            mpi = SimMPI(
                nprocs=nprocs,
                perf=perf,
                faults=faults,
                schedule=schedule,
                schedule_seed=seed,
            )
            results = mpi.run(
                _bh_rank_program, app.tree, app.pos, app.mass, app.theta,
                spec, False, 1e-3,
            )
            forces = [None if r is None else r[2].copy() for r in results]
            return forces, list(mpi.clocks), mpi.crashed, mpi.elapsed

        # reference (no faults) fixes the makespan the crash time scales from
        _, _, _, makespan = run("deterministic", 0, None)

        def crash_plan():
            return FaultPlan.of(
                FaultRule(
                    "crash",
                    probability=1.0,
                    ranks=(nprocs - 1,),
                    t_start=0.45 * makespan,
                ),
                seed=5,
            )

        base_forces, base_clocks, base_crashed, _ = run(
            "deterministic", 0, crash_plan()
        )
        assert base_crashed == {nprocs - 1}
        assert base_forces[nprocs - 1] is None
        assert any(f is not None for f in base_forces[:-1])

        for seed in range(4):
            forces, clocks, crashed, _ = run("random", seed, crash_plan())
            assert crashed == base_crashed, f"seed {seed}"
            assert clocks == base_clocks, f"seed {seed}"
            for r, (got, want) in enumerate(zip(forces, base_forces)):
                if want is None:
                    assert got is None, f"seed {seed} rank {r}"
                else:
                    assert np.array_equal(got, want), f"seed {seed} rank {r}"
