"""Schedule-independence: programs must not depend on rank interleaving.

The random scheduling mode replaces the deterministic (clock, rank) pick
with a seeded-random choice among READY ranks.  Virtual times must be
unaffected (clocks are per-rank; collectives take the max), and the
applications must produce identical results under any interleaving.
"""

import numpy as np
import pytest

from repro.apps import LCCApp
from repro.apps.bfs import BFSApp
from repro.apps.cachespec import CacheSpec
from repro.mpi import SimMPI
from repro.net import PerfModel
from repro.runtime import SimWorld
from repro.util import MiB


class TestRuntimeMode:
    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            SimWorld(2, schedule="chaotic")

    def test_random_schedule_changes_interleaving(self):
        def program(p, log):
            for _ in range(5):
                p.sync()
                log.append(p.rank)

        def order(schedule, seed):
            log: list[int] = []
            SimWorld(4, schedule=schedule, seed=seed).run(program, log)
            return log

        det = order("deterministic", 0)
        randomised = [order("random", s) for s in range(6)]
        assert any(r != det for r in randomised), "random mode never deviated"

    def test_clocks_identical_across_schedules(self):
        def program(p):
            for i in range(4):
                p.advance(1e-6 * ((p.rank + i) % 3))
                p.sync(extra_time=1e-7)
            return p.clock

        base = SimWorld(4).run(program)
        for seed in range(4):
            rand = SimWorld(4, schedule="random", seed=seed).run(program)
            assert rand == base


class TestApplicationInvariance:
    def test_lcc_identical_under_random_schedules(self):
        app = LCCApp(scale=6, edge_factor=8, seed=2)
        base = app.run(3, CacheSpec.clampi_fixed(512, 1 * MiB))
        for seed in range(3):
            perf = PerfModel.spread(3)
            mpi_kwargs = dict(perf=perf)
            run = app.run(
                3,
                CacheSpec.clampi_fixed(512, 1 * MiB),
                perf=perf,
            )
            # direct re-run through a random-schedule SimMPI
            from repro.apps.lcc import _lcc_rank_program

            mpi = SimMPI(nprocs=3, perf=perf, schedule="random", schedule_seed=seed)
            src, dst = app._edges
            results = mpi.run(
                _lcc_rank_program,
                app.csr,
                src,
                dst,
                CacheSpec.clampi_fixed(512, 1 * MiB),
                False,
            )
            lcc = np.zeros(app.nvertices)
            for lo, hi, values, *_rest in results:
                lcc[lo:hi] = values
            assert np.array_equal(lcc, base.lcc), f"seed {seed}"
            assert max(r[3] for r in results) == pytest.approx(base.elapsed)

    def test_bfs_identical_under_random_schedules(self):
        from repro.apps.bfs import _bfs_rank_program

        app = BFSApp(scale=6, edge_factor=8, seed=2)
        base = app.run(3, [0, 9], CacheSpec.fompi())
        src, dst = app._edges
        for seed in range(3):
            mpi = SimMPI(
                nprocs=3,
                perf=PerfModel.spread(3),
                schedule="random",
                schedule_seed=seed,
            )
            results = mpi.run(
                _bfs_rank_program, app.csr, src, dst, [0, 9],
                CacheSpec.fompi(), False,
            )
            assert np.array_equal(results[0][0], base.distances), f"seed {seed}"
