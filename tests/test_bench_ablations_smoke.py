"""Fast smoke tests of the ablation studies (full runs live in benchmarks/)."""

import pytest

from repro.bench import ablations
from repro.bench.ablations import ALL_ABLATIONS
from repro.bench.reporting import FigureResult


def check_shape(fig: FigureResult):
    assert isinstance(fig, FigureResult)
    assert fig.rows
    for row in fig.rows:
        assert len(row) == len(fig.headers)
    assert fig.claims
    fig.render()


class TestRegistry:
    def test_all_registered_and_documented(self):
        assert len(ALL_ABLATIONS) == 5
        for fn in ALL_ABLATIONS.values():
            assert fn.__doc__


class TestTinyRuns:
    def test_a1_cuckoo(self):
        check_shape(ablations.ablation_cuckoo_hashes(n_distinct=120, z=1200, ps=[2, 4, 8]))

    def test_a2_sample(self):
        check_shape(ablations.ablation_sample_size(n_distinct=120, z=1500, ms=[1, 16, 64]))

    def test_a3_weak_caching(self):
        check_shape(
            ablations.ablation_weak_caching(n_distinct=120, z=1500, budgets=[0, 1, 16])
        )

    def test_a4_allocator(self):
        check_shape(ablations.ablation_allocator_fit(n_distinct=120, z=1500))

    def test_a5_block_size(self):
        check_shape(
            ablations.ablation_native_block_size(
                scale=8, nprocs=4, block_sizes=[128, 1024, 4096]
            )
        )
