"""Unit tests for the eviction engine (victim sampling and scoring)."""

import pytest

from repro.core.config import EvictionPolicy
from repro.core.cuckoo import CuckooIndex
from repro.core.entry import CacheEntry
from repro.core.eviction import EvictionEngine
from repro.core.states import EntryState
from repro.core.storage import Storage
from repro.mpi import BYTE


def cached_entry(idx, storage, trg, dsp, size, last=1):
    e = CacheEntry(trg, dsp, BYTE, size)
    e.last = last
    assert idx.insert(e).success
    e.desc = storage.allocate(size)
    assert e.desc is not None
    e.desc.entry = e
    e.state = EntryState.PENDING
    e.state = EntryState.CACHED
    return e


def make_engine(capacity=64, storage_bytes=8192, policy=EvictionPolicy.FULL, M=4):
    idx = CuckooIndex(capacity, seed=2)
    st = Storage(storage_bytes)
    return idx, st, EvictionEngine(idx, st, policy, sample_size=M, seed=3)


class TestSampling:
    def test_empty_index_returns_none(self):
        _idx, _st, ev = make_engine()
        res = ev.sample_capacity_victim(seq_index=1, avg_get_size=100)
        assert res.victim is None
        assert res.visited == 64  # scanned the whole table

    def test_finds_the_only_entry(self):
        idx, st, ev = make_engine()
        e = cached_entry(idx, st, 0, 0, 64)
        res = ev.sample_capacity_victim(10, 64.0)
        assert res.victim is e
        assert res.nonempty >= 1

    def test_visits_at_least_sample_size(self):
        idx, st, ev = make_engine(M=8)
        for i in range(16):
            cached_entry(idx, st, 0, i * 64, 64)
        res = ev.sample_capacity_victim(20, 64.0)
        assert res.visited >= 8

    def test_sparse_index_visits_more(self):
        idx, st, ev = make_engine(capacity=512, M=4)
        cached_entry(idx, st, 0, 0, 64)  # single entry in a big table
        res = ev.sample_capacity_victim(2, 64.0)
        assert res.visited > 4  # had to scan past empties

    def test_pending_entries_not_evictable(self):
        idx, st, ev = make_engine()
        e = CacheEntry(0, 0, BYTE, 64)
        e.last = 1
        idx.insert(e)
        e.desc = st.allocate(64)
        e.state = EntryState.PENDING
        res = ev.sample_capacity_victim(5, 64.0)
        assert res.victim is None
        assert res.nonempty >= 1  # it was visited, just not evictable

    def test_lowest_score_selected(self):
        idx, st, ev = make_engine(capacity=32, M=32)  # sample everything
        stale = cached_entry(idx, st, 0, 0, 64, last=1)
        fresh = cached_entry(idx, st, 0, 64, 64, last=99)
        res = ev.sample_capacity_victim(seq_index=100, avg_get_size=0.0)
        # ags == 0 neutralises the positional part: pure LRU decision
        assert res.victim is stale
        assert res.victim is not fresh


class TestPolicies:
    def test_temporal_ignores_position(self):
        idx, st, ev = make_engine(policy=EvictionPolicy.TEMPORAL)
        e = cached_entry(idx, st, 0, 0, 64, last=50)
        assert ev.score(e, 100, 1e9) == pytest.approx(0.5)

    def test_positional_ignores_time(self):
        idx, st, ev = make_engine(policy=EvictionPolicy.POSITIONAL)
        e = cached_entry(idx, st, 0, 0, 64, last=1)
        s1 = ev.score(e, 10, 100.0)
        e.last = 9
        assert ev.score(e, 10, 100.0) == s1

    def test_full_is_product(self):
        idx, st, ev_full = make_engine(policy=EvictionPolicy.FULL)
        e = cached_entry(idx, st, 0, 0, 64, last=5)
        ev_t = EvictionEngine(idx, st, EvictionPolicy.TEMPORAL, 4)
        ev_p = EvictionEngine(idx, st, EvictionPolicy.POSITIONAL, 4)
        assert ev_full.score(e, 10, 100.0) == pytest.approx(
            ev_t.score(e, 10, 100.0) * ev_p.score(e, 10, 100.0)
        )


class TestConflictVictim:
    def test_picks_lowest_score_on_path(self):
        idx, st, ev = make_engine()
        a = cached_entry(idx, st, 0, 0, 64, last=1)
        b = cached_entry(idx, st, 0, 64, 64, last=90)
        victim = ev.select_conflict_victim([a, b], 100, 0.0)
        assert victim is a

    def test_excludes_requested_entry(self):
        idx, st, ev = make_engine()
        a = cached_entry(idx, st, 0, 0, 64, last=1)
        b = cached_entry(idx, st, 0, 64, 64, last=90)
        victim = ev.select_conflict_victim([a, b], 100, 0.0, exclude=a)
        assert victim is b

    def test_skips_non_cached(self):
        idx, st, ev = make_engine()
        pending = CacheEntry(0, 0, BYTE, 64)
        pending.state = EntryState.PENDING
        assert ev.select_conflict_victim([pending], 10, 0.0) is None

    def test_empty_path(self):
        _idx, _st, ev = make_engine()
        assert ev.select_conflict_victim([], 10, 0.0) is None
