"""Unit tests for the micro-benchmark workload generator and runner."""

import numpy as np
import pytest

from repro.apps.cachespec import CacheSpec
from repro.bench import make_micro_workload, run_micro
from repro.util import KiB, MiB


class TestWorkloadGenerator:
    def test_shapes(self):
        wl = make_micro_workload(n_distinct=100, z=500, seed=1)
        assert wl.n_distinct == 100
        assert wl.length == 500
        assert wl.sizes.size == wl.displacements.size == 100

    def test_sizes_are_powers_of_two_in_range(self):
        wl = make_micro_workload(n_distinct=300, z=300, seed=2, max_exp=16)
        assert np.all(wl.sizes >= 1)
        assert np.all(wl.sizes <= 2**16)
        assert all((s & (s - 1)) == 0 for s in wl.sizes.tolist())

    def test_displacements_disjoint(self):
        wl = make_micro_workload(n_distinct=200, z=200, seed=3)
        order = np.argsort(wl.displacements)
        d = wl.displacements[order]
        s = wl.sizes[order]
        for i in range(len(d) - 1):
            assert d[i] + s[i] <= d[i + 1]
        assert d[-1] + s[-1] <= wl.window_bytes

    def test_sequence_normal_centered(self):
        """Sampling ~ N(N/2, N/4): the middle gets dominate (paper Sec IV-A)."""
        wl = make_micro_workload(n_distinct=1000, z=50_000, seed=4)
        mid = np.sum((wl.sequence > 250) & (wl.sequence < 750))
        assert mid / wl.length > 0.6
        assert wl.sequence.min() >= 0
        assert wl.sequence.max() < 1000

    def test_deterministic(self):
        a = make_micro_workload(50, 100, seed=9)
        b = make_micro_workload(50, 100, seed=9)
        assert np.array_equal(a.sequence, b.sequence)
        assert np.array_equal(a.sizes, b.sizes)

    def test_z_smaller_than_n_rejected(self):
        with pytest.raises(ValueError):
            make_micro_workload(n_distinct=100, z=50)

    def test_uniform_distribution_flat(self):
        wl = make_micro_workload(500, 50_000, seed=5, distribution="uniform")
        counts = np.bincount(wl.sequence, minlength=500)
        assert counts.max() < 3 * counts.mean()

    def test_zipf_distribution_skewed(self):
        wl = make_micro_workload(500, 50_000, seed=5, distribution="zipf")
        counts = np.bincount(wl.sequence, minlength=500)
        assert counts.max() > 20 * max(np.median(counts), 1)

    def test_zipf_more_cacheable_than_uniform(self):
        """Skewed reuse is exactly what a small cache exploits."""
        from repro.apps.cachespec import CacheSpec
        from repro.util import KiB

        kw = dict(n_distinct=400, z=3000, seed=5)
        spec = CacheSpec.clampi_fixed(256, 256 * KiB)
        uni = run_micro(make_micro_workload(distribution="uniform", **kw), spec)
        zipf = run_micro(make_micro_workload(distribution="zipf", **kw), spec)

        def hits(res):
            s = res.stats
            return (s["hit_full"] + s["hit_pending"] + s["hit_partial"]) / s["gets"]

        assert hits(zipf) > hits(uni)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            make_micro_workload(100, 200, distribution="pareto")


class TestRunner:
    @pytest.fixture(scope="class")
    def wl(self):
        return make_micro_workload(n_distinct=64, z=600, seed=5)

    def test_every_get_classified(self, wl):
        res = run_micro(wl, CacheSpec.clampi_fixed(256, 4 * MiB))
        assert len(res.access_types) == wl.length
        assert "unknown" not in res.access_types

    def test_ample_cache_mostly_hits(self, wl):
        res = run_micro(wl, CacheSpec.clampi_fixed(256, 16 * MiB))
        assert res.count("hit_full") + res.count("hit_pending") > 0.7 * wl.length
        assert res.count("direct") <= wl.n_distinct

    def test_tight_cache_produces_misses(self, wl):
        res = run_micro(wl, CacheSpec.clampi_fixed(8, 16 * KiB))
        assert res.count("conflicting") + res.count("capacity") + res.count("failing") > 0

    def test_uncached_run(self, wl):
        res = run_micro(wl, CacheSpec.fompi())
        assert set(res.access_types) == {"uncached"}
        assert res.stats == {}

    def test_latencies_positive_and_monotone_with_size(self, wl):
        res = run_micro(wl, CacheSpec.fompi())
        assert np.all(res.latencies > 0)
        small = res.median_latency("uncached", int(wl.sizes.min()))
        large = res.median_latency("uncached", int(wl.sizes.max()))
        assert large > small

    def test_median_latency_missing_returns_none(self, wl):
        res = run_micro(wl, CacheSpec.fompi())
        assert res.median_latency("hit_full") is None

    def test_occupancy_recording(self, wl):
        res = run_micro(
            wl, CacheSpec.clampi_fixed(256, 64 * KiB), record_occupancy=True
        )
        assert res.occupancy is not None
        assert res.occupancy.shape == (wl.length,)
        assert np.all((res.occupancy >= 0) & (res.occupancy <= 1))

    def test_completion_time_sums_latencies_roughly(self, wl):
        res = run_micro(wl, CacheSpec.fompi())
        assert res.completion_time == pytest.approx(res.latencies.sum(), rel=1e-6)

    def test_hits_make_completion_faster(self, wl):
        cached = run_micro(wl, CacheSpec.clampi_fixed(256, 16 * MiB))
        uncached = run_micro(wl, CacheSpec.fompi())
        assert cached.completion_time < uncached.completion_time
