"""The golden invariant: caching must never change what a get returns.

For any sequence of gets, under any mode, eviction policy, cache sizing,
invalidation pattern and adaptive resizing, a CachedWindow must return
byte-identical data to a plain window.  This is the property that makes
CLaMPI *transparent*.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import clampi
from repro.mpi import SimMPI
from repro.util import KiB

NBYTES = 16 * KiB


def _golden_program(m, ops, config, mode):
    cached = clampi.window_allocate(m.comm_world, NBYTES, mode=mode, config=config)
    cached.local_view(np.uint8)[:] = ((np.arange(NBYTES) * (m.rank + 7)) % 253).astype(
        np.uint8
    )
    m.comm_world.barrier()
    cached.lock_all()
    ok = True
    for kind, trg, dsp, n in ops:
        trg %= m.size
        dsp %= NBYTES
        n = max(1, n % (NBYTES - dsp))
        expected = ((np.arange(dsp, dsp + n) * (trg + 7)) % 253).astype(np.uint8)
        buf = np.empty(n, np.uint8)
        if kind == 0:
            cached.get(buf, trg, dsp)
            cached.flush(trg)
        elif kind == 1:  # get without immediate flush (pending window)
            cached.get(buf, trg, dsp)
            cached.flush_all()
        else:  # invalidate then get
            cached.invalidate()
            cached.get_blocking(buf, trg, dsp)
        if not np.array_equal(buf, expected):
            ok = False
            break
        cached.check_invariants()  # full structural audit after every op
    cached.unlock_all()
    cached.check_invariants()
    return ok


ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),          # op kind
        st.integers(0, 3),          # target rank (mod size)
        st.integers(0, NBYTES - 1),  # displacement
        st.integers(1, 4 * KiB),    # length
    ),
    min_size=1,
    max_size=40,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=ops_strategy,
    mode=st.sampled_from(list(clampi.Mode)),
    policy=st.sampled_from(list(clampi.EvictionPolicy)),
    index_entries=st.sampled_from([4, 64, 1024]),
    storage_kib=st.sampled_from([1, 8, 64]),
    adaptive=st.booleans(),
)
def test_property_cached_equals_uncached(
    ops, mode, policy, index_entries, storage_kib, adaptive
):
    config = clampi.Config(
        index_entries=index_entries,
        storage_bytes=storage_kib * KiB,
        policy=policy,
        adaptive=adaptive,
        adaptive_params=clampi.AdaptiveParams(
            check_interval=8, min_storage_bytes=KiB, min_index_entries=4
        ),
    )
    results = SimMPI(nprocs=2).run(_golden_program, ops, config, mode)
    assert all(results), "cached gets diverged from ground truth"


@pytest.mark.parametrize("policy", list(clampi.EvictionPolicy))
def test_long_random_workload_stays_correct(policy):
    """A longer deterministic soak per eviction policy."""

    def program(m):
        config = clampi.Config(
            index_entries=64, storage_bytes=4 * KiB, policy=policy
        )
        win = clampi.window_allocate(
            m.comm_world, NBYTES, mode=clampi.Mode.ALWAYS_CACHE, config=config
        )
        win.local_view(np.uint8)[:] = ((np.arange(NBYTES) * (m.rank + 7)) % 253).astype(
            np.uint8
        )
        m.comm_world.barrier()
        rng = np.random.default_rng(m.rank)
        win.lock_all()
        for _ in range(500):
            trg = int(rng.integers(0, m.size))
            dsp = int(rng.integers(0, NBYTES - 1))
            n = int(rng.integers(1, min(2 * KiB, NBYTES - dsp) + 1))
            expected = ((np.arange(dsp, dsp + n) * (trg + 7)) % 253).astype(np.uint8)
            buf = np.empty(n, np.uint8)
            win.get_blocking(buf, trg, dsp)
            assert np.array_equal(buf, expected)
        win.check_invariants()
        win.unlock_all()
        return win.stats.snapshot()

    results = SimMPI(nprocs=3).run(program)
    # sanity: the workload actually exercised the cache machinery
    merged = {
        k: sum(r[k] for r in results)
        for k, v in results[0].items()
        if isinstance(v, (int, float)) and k != "schema_version"
    }
    assert merged["gets"] == 1500
    assert merged["hits" if "hits" in merged else "hit_full"] >= 0
    assert merged["evictions"] > 0
