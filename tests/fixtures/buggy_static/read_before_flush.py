"""Seeded ANL010: a get's result is consumed before any flush.

`total += buf[0]` reads the destination while the get is still in
flight; MPI-3 leaves the buffer contents undefined until the epoch is
flushed or closed.
"""

import numpy as np


def sum_remote(mpi, win, peers):
    buf = np.empty(8, dtype=np.float64)
    total = 0.0
    with win.lock_all_epoch():
        for peer in peers:
            win.get(buf, peer, 0)
            total += buf[0]
        win.flush_all()
    return total
