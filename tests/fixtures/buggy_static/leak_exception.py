"""Seeded ANL009: the lock_all epoch leaks when validation raises.

The `raise` on the short-read path escapes before `unlock_all` runs, so
on that path the passive-target epoch is never closed.  The fix is a
`with win.lock_all_epoch():` block (or try/finally).
"""

import numpy as np


def gather_halo(mpi, spec, counts):
    local = np.zeros(64, dtype=np.float64)
    win = spec.make_window(mpi.comm_world, local)
    out = np.empty(64, dtype=np.float64)
    win.lock_all()
    for peer, n in counts.items():
        if n > 64:
            raise ValueError(f"halo from {peer} too large: {n}")
        win.get(out, peer, 0)
        win.flush(peer)
    win.unlock_all()
    return out
