"""Clean control fixture: correct epoch/flush discipline throughout.

Exercises the patterns the verifier must NOT flag: scoped epoch context
managers (exception-safe by construction), flush-before-read, explicit
lock/unlock balanced on every path including the early return, a
`recovery.retrying` bound-method helper, and request-completion via
`Request.wait()`.
"""

import numpy as np

from repro import recovery


def halo_exchange(mpi, spec):
    local = np.zeros(64, dtype=np.float64)
    win = spec.make_window(mpi.comm_world, local)
    buf = np.empty(64, dtype=np.float64)
    with win.lock_all_epoch():
        win.get(buf, (mpi.rank + 1) % mpi.nprocs, 0)
        win.flush_all()
        acc = float(buf.sum())
    return acc


def balanced_paths(mpi, win, skip):
    buf = np.empty(8, dtype=np.float64)
    win.lock(0)
    if skip:
        win.unlock(0)
        return None
    win.get(buf, 0, 0)
    win.flush(0)
    out = buf[0]
    win.unlock(0)
    return out


def retry_helpers(mpi, win, peer):
    buf = np.empty(4, dtype=np.float64)
    with win.lock_all_epoch():
        win.get(buf, peer, 0)
        recovery.retrying(win.flush_all)
        return float(buf[0])


def request_completion(mpi, win, peer):
    buf = np.empty(4, dtype=np.float64)
    with win.lock_all_epoch():
        req = win.rget(buf, peer, 0)
        req.wait()
        return float(buf[0])
