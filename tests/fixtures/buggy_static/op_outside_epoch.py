"""Seeded ANL012: an RMA op issued on a path with no open epoch.

The early-peek branch calls `win.get` before `lock_all` ever runs; on
that path no epoch is provably open and the MPI runtime would raise
`RMA synchronization error`.
"""

import numpy as np


def fetch_with_peek(mpi, spec, peek_first):
    local = np.zeros(32, dtype=np.float64)
    win = spec.make_window(mpi.comm_world, local)
    buf = np.empty(32, dtype=np.float64)
    if peek_first:
        win.get(buf, 0, 0)
    win.lock_all()
    win.get(buf, 0, 0)
    win.flush_all()
    win.unlock_all()
    return buf
