"""Seeded ANL011: a put's origin buffer is overwritten before flush.

The second loop iteration rewrites `stage` while the previous put may
still be reading from it; the transfer can ship a mix of old and new
bytes.  Flush (or double-buffer) between puts.
"""

import numpy as np


def scatter_updates(mpi, win, updates):
    stage = np.zeros(16, dtype=np.float64)
    with win.lock_all_epoch():
        for peer, value in updates:
            stage[:] = value
            win.put(stage, peer, 0)
        win.flush_all()
