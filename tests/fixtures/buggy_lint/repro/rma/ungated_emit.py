"""Seeded ANL014 fixture: ungated Event construction on a hot path.

This file deliberately violates the kind-gated telemetry discipline —
the lint gate must keep flagging it (see tests/test_analysis_lint.py and
the CI analysis job).  It lives under a ``repro/rma/`` path so the
hot-path scoping of ANL014 applies.
"""

from repro.obs import RMA_GET, Event, get_bus


def issue_get(rank, clock):
    # BUG: constructs the Event unconditionally — allocates per op even
    # when no sink subscribes to RMA_GET.  Must be wrapped in a
    # wants()-gated _emit* helper.
    get_bus().emit(Event(RMA_GET, rank, clock))
    return 0
