"""Unit tests for 1-D partitioning and the distributed CSR graph."""

import numpy as np
import pytest

from repro.apps.cachespec import CacheSpec
from repro.graph import BlockPartition, CSRGraph, DistributedGraph, rmat_graph
from repro.mpi import SimMPI


class TestBlockPartition:
    def test_even_split(self):
        p = BlockPartition(100, 4)
        assert [p.size_of(i) for i in range(4)] == [25, 25, 25, 25]

    def test_uneven_split_last_smaller(self):
        p = BlockPartition(10, 3)
        assert [p.size_of(i) for i in range(3)] == [4, 4, 2]

    def test_more_parts_than_items(self):
        p = BlockPartition(2, 5)
        assert [p.size_of(i) for i in range(5)] == [1, 1, 0, 0, 0]

    def test_owner_roundtrip(self):
        p = BlockPartition(97, 8)
        for item in range(97):
            owner = p.owner(item)
            lo, hi = p.range_of(owner)
            assert lo <= item < hi

    def test_owners_vectorised_matches_scalar(self):
        p = BlockPartition(57, 5)
        items = np.arange(57)
        assert all(p.owners(items)[i] == p.owner(i) for i in range(57))

    def test_local_index(self):
        p = BlockPartition(30, 3)
        assert p.local_index(0) == 0
        assert p.local_index(10) == 0
        assert p.local_index(29) == 9

    def test_ranges_cover_everything(self):
        p = BlockPartition(41, 7)
        covered = []
        for i in range(7):
            lo, hi = p.range_of(i)
            covered.extend(range(lo, hi))
        assert covered == list(range(41))

    def test_out_of_range(self):
        p = BlockPartition(10, 2)
        with pytest.raises(ValueError):
            p.owner(10)
        with pytest.raises(ValueError):
            p.range_of(2)


class TestDistributedGraph:
    @staticmethod
    def _build_and_fetch(nprocs, scale=6, spec=None):
        spec = spec or CacheSpec.fompi()
        src, dst = rmat_graph(scale, 600, seed=8)
        csr = CSRGraph.from_edges(src, dst, 1 << scale)

        def program(mpi):
            g = DistributedGraph.build(
                mpi.comm_world, src, dst, csr.nvertices,
                lambda comm, buf: spec.make_window(comm, buf), csr=csr,
            )
            mpi.comm_world.barrier()
            g.window.lock_all()
            fetched = {}
            for v in range(csr.nvertices):
                deg = g.degree(v)
                buf = np.empty(deg, np.int64)
                owner, count = g.fetch_adjacency(v, buf)
                if owner != mpi.rank:
                    g.window.flush(owner)
                fetched[v] = buf.copy()
                assert count == deg
            g.window.unlock_all()
            return fetched

        return csr, SimMPI(nprocs=nprocs).run(program)

    def test_remote_adjacency_matches_csr(self):
        csr, results = self._build_and_fetch(4)
        for fetched in results:
            for v, adj in fetched.items():
                assert np.array_equal(adj, csr.neighbors(v)), f"vertex {v}"

    def test_with_clampi_cache(self):
        from repro.util import MiB

        csr, results = self._build_and_fetch(
            3, spec=CacheSpec.clampi_fixed(1024, 1 * MiB)
        )
        for fetched in results:
            for v, adj in fetched.items():
                assert np.array_equal(adj, csr.neighbors(v))

    def test_local_vertices_partitioned(self):
        src, dst = rmat_graph(5, 100, seed=8)
        csr = CSRGraph.from_edges(src, dst, 32)

        def program(mpi):
            g = DistributedGraph.build(
                mpi.comm_world, src, dst, 32,
                lambda comm, buf: CacheSpec.fompi().make_window(comm, buf), csr=csr,
            )
            return list(g.local_vertices)

        results = SimMPI(nprocs=4).run(program)
        merged = [v for r in results for v in r]
        assert merged == list(range(32))

    def test_local_adjacency_rejects_remote_vertex(self):
        from repro.runtime import RankFailedError

        src, dst = rmat_graph(5, 100, seed=8)
        csr = CSRGraph.from_edges(src, dst, 32)

        def program(mpi):
            g = DistributedGraph.build(
                mpi.comm_world, src, dst, 32,
                lambda comm, buf: CacheSpec.fompi().make_window(comm, buf), csr=csr,
            )
            other = (g.hi + 1) % 32
            if not (g.lo <= other < g.hi):
                g.local_adjacency(other)

        with pytest.raises(RankFailedError):
            SimMPI(nprocs=2).run(program)
