"""Unit + property tests for the size-keyed AVL tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.avl import AVLTree


class TestBasics:
    def test_empty(self):
        t = AVLTree()
        assert len(t) == 0
        key, val, _steps = t.ceiling(1)
        assert key is None and val is None

    def test_insert_and_ceiling_exact(self):
        t = AVLTree()
        t.insert((100, 0), "a")
        key, val, _ = t.ceiling(100)
        assert key == (100, 0) and val == "a"

    def test_ceiling_best_fit_smallest_sufficient(self):
        t = AVLTree()
        t.insert((64, 0), "small")
        t.insert((128, 64), "mid")
        t.insert((512, 192), "big")
        key, val, _ = t.ceiling(100)
        assert val == "mid"

    def test_ceiling_ties_broken_by_offset(self):
        t = AVLTree()
        t.insert((128, 500), "late")
        t.insert((128, 100), "early")
        _key, val, _ = t.ceiling(128)
        assert val == "early"

    def test_ceiling_nothing_fits(self):
        t = AVLTree()
        t.insert((64, 0), "x")
        key, _val, _ = t.ceiling(65)
        assert key is None

    def test_remove(self):
        t = AVLTree()
        t.insert((10, 0), "a")
        t.insert((20, 10), "b")
        t.remove((10, 0))
        assert len(t) == 1
        assert not t.contains((10, 0))
        assert t.contains((20, 10))

    def test_remove_missing_raises(self):
        t = AVLTree()
        with pytest.raises(KeyError):
            t.remove((1, 1))

    def test_duplicate_insert_raises(self):
        t = AVLTree()
        t.insert((5, 5), "x")
        with pytest.raises(KeyError):
            t.insert((5, 5), "y")

    def test_items_sorted(self):
        t = AVLTree()
        keys = [(30, 1), (10, 2), (20, 3), (10, 1)]
        for k in keys:
            t.insert(k, None)
        assert [k for k, _ in t.items()] == sorted(keys)

    def test_steps_reported_positive(self):
        t = AVLTree()
        assert t.insert((1, 1), None) >= 1
        _k, _v, steps = t.ceiling(1)
        assert steps >= 1
        assert t.remove((1, 1)) >= 1


class TestBalance:
    def test_sequential_inserts_stay_logarithmic(self):
        t = AVLTree()
        n = 1024
        for i in range(n):
            t.insert((i, 0), i)
        t.check_invariants()
        # height <= 1.44 log2(n+2): check via steps of a ceiling query
        _k, _v, steps = t.ceiling(n - 1)
        assert steps <= 20

    def test_random_mix_keeps_invariants(self):
        rnd = random.Random(99)
        t = AVLTree()
        live = set()
        for _ in range(2000):
            if live and rnd.random() < 0.4:
                k = rnd.choice(sorted(live))
                t.remove(k)
                live.discard(k)
            else:
                k = (rnd.randrange(100), rnd.randrange(10000))
                if k not in live:
                    t.insert(k, None)
                    live.add(k)
        t.check_invariants()
        assert len(t) == len(live)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(1, 50), st.integers(0, 200)),
        max_size=200,
    )
)
def test_property_avl_matches_reference_model(ops):
    """AVL behaves like a sorted-dict reference under random insert/remove."""
    t = AVLTree()
    model: dict = {}
    for is_remove, size, off in ops:
        key = (size, off)
        if is_remove and key in model:
            t.remove(key)
            del model[key]
        elif not is_remove and key not in model:
            t.insert(key, size * 1000 + off)
            model[key] = size * 1000 + off
    t.check_invariants()
    assert dict(t.items()) == model
    # ceiling agrees with brute force for a few probes
    for want in (1, 10, 25, 51):
        key, _val, _ = t.ceiling(want)
        expected = min((k for k in model if k[0] >= want), default=None)
        assert key == expected
