"""Epoch-consistent cache recovery after crash-stop failures.

The ``CacheRecovery`` stage (docs/resilience.md) reacts to an observed
rank death under one of two modes: ``invalidate`` drops the dead rank's
entries (gets then fail with ``TargetFailedError``), ``serve-stale`` pins
epoch-consistent entries read-only so the data stays servable from cache.
Pinned entries are never eviction victims and survive TRANSPARENT
epoch-close invalidation; explicit ``clampi.invalidate`` still drops them.
"""

import numpy as np
import pytest

from repro import clampi, recovery
from repro.faults import FaultPlan, FaultRule
from repro.mpi.errors import TargetFailedError
from repro.mpi.simmpi import SimMPI

VICTIM = 1
DEATH = 1e-2


def _crash_plan() -> FaultPlan:
    return FaultPlan.of(
        FaultRule("crash", probability=1.0, ranks=(VICTIM,), t_start=DEATH),
        seed=3,
    )


def _fill_and_die(mpi, win):
    """Victim half of every program: expose data, then die mid-epoch."""
    win.local_view(np.float64)[:] = 7.25
    recovery.barrier(mpi.comm_world)
    mpi.compute(1.0)  # dies at t=DEATH on the way


def _run(program, nprocs=3):
    return SimMPI(nprocs=nprocs, faults=_crash_plan()).run(program)


class TestServeStale:
    def test_pinned_entries_keep_serving(self):
        def program(mpi):
            cfg = clampi.Config(
                index_entries=32,
                storage_bytes=4096,
                mode=clampi.Mode.ALWAYS_CACHE,
                recovery="serve-stale",
            )
            win = clampi.window_allocate(mpi.comm_world, 64, config=cfg)
            if mpi.rank == VICTIM:
                _fill_and_die(mpi, win)
                return None
            win.local_view(np.float64)[:] = float(mpi.rank)
            recovery.barrier(mpi.comm_world)
            buf = np.zeros(4)
            win.lock_all()
            win.get(buf, VICTIM, 0)  # cached pre-crash
            win.flush(VICTIM)
            pre = buf.copy()
            mpi.compute(2e-2)  # move causally past the death
            buf[:] = 0.0
            win.get(buf, VICTIM, 0)  # served from the pinned entry
            win.flush(VICTIM)
            win.unlock_all()
            assert np.array_equal(buf, pre)
            assert np.all(buf == 7.25)
            return clampi.stats(win).snapshot()

        for snap in filter(None, _run(program)):
            assert snap["rank_failures"] == 1
            assert snap["recovery_pinned"] == 1
            assert snap["recovered_gets"] == 1
            assert snap["failed_target_gets"] == 0
            assert snap["recovery_dropped"] == 0

    def test_uncached_range_still_fails(self):
        """serve-stale only serves what was cached at the death."""

        def program(mpi):
            cfg = clampi.Config(
                index_entries=32,
                storage_bytes=4096,
                mode=clampi.Mode.ALWAYS_CACHE,
                recovery="serve-stale",
            )
            win = clampi.window_allocate(mpi.comm_world, 64, config=cfg)
            if mpi.rank == VICTIM:
                _fill_and_die(mpi, win)
                return None
            recovery.barrier(mpi.comm_world)
            win.lock_all()
            mpi.compute(2e-2)
            buf = np.zeros(4)
            with pytest.raises(TargetFailedError):
                win.get(buf, VICTIM, 0)  # never cached: unrecoverable
            win.unlock_all()
            snap = clampi.stats(win).snapshot()
            assert snap["failed_target_gets"] == 1
            assert snap["recovered_gets"] == 0
            return True

        assert _run(program) == [True, None, True]

    def test_pinned_survive_transparent_epoch_close(self):
        def program(mpi):
            cfg = clampi.Config(
                index_entries=32,
                storage_bytes=4096,
                mode=clampi.Mode.TRANSPARENT,
                recovery="serve-stale",
            )
            win = clampi.window_allocate(mpi.comm_world, 64, config=cfg)
            if mpi.rank == VICTIM:
                _fill_and_die(mpi, win)
                return None
            recovery.barrier(mpi.comm_world)
            buf = np.zeros(4)
            win.lock_all()
            # No flush before the death: in TRANSPARENT mode a flush(T)
            # closes T's consistency epoch and invalidates its entries, so
            # only the *open* epoch's entry is epoch-consistent at the
            # crash — exactly what serve-stale pins.
            win.get(buf, VICTIM, 0)  # PENDING entry
            mpi.compute(2e-2)
            buf2 = np.zeros(4)
            win.get(buf2, VICTIM, 0)  # pinned + recovered while pending
            win.unlock_all()  # close: pinned pending materialises, survives
            win.lock_all()
            buf3 = np.zeros(4)
            win.get(buf3, VICTIM, 0)  # still served in the next epoch
            win.flush(VICTIM)  # close T's epoch again: the pin is spared
            buf4 = np.zeros(4)
            win.get(buf4, VICTIM, 0)
            win.unlock_all()
            for b in (buf, buf2, buf3, buf4):
                assert np.all(b == 7.25)
            snap = clampi.stats(win).snapshot()
            assert snap["recovered_gets"] == 3
            assert snap["failed_target_gets"] == 0
            assert snap["recovery_pinned"] == 1
            return True

        assert _run(program) == [True, None, True]

    def test_pinned_never_eviction_victims(self):
        """Capacity pressure must evict around pinned entries."""

        def program(mpi):
            cfg = clampi.Config(
                index_entries=8,
                storage_bytes=256,  # tight: lots of evictions below
                mode=clampi.Mode.ALWAYS_CACHE,
                recovery="serve-stale",
            )
            win = clampi.window_allocate(mpi.comm_world, 512, config=cfg)
            if mpi.rank == VICTIM:
                _fill_and_die(mpi, win)
                return None
            peer = 2 if mpi.rank == 0 else 0
            recovery.barrier(mpi.comm_world)
            buf = np.zeros(4)
            win.lock_all()
            win.get(buf, VICTIM, 0)
            win.flush(VICTIM)
            mpi.compute(2e-2)
            # Hammer distinct ranges of a live peer: far beyond capacity,
            # so victims are selected over and over.
            big = np.zeros(8)
            for disp in range(0, 448, 64):
                win.get(big, peer, disp)
                win.flush(peer)
            buf[:] = 0.0
            win.get(buf, VICTIM, 0)  # the pin outlived the pressure
            win.flush(VICTIM)
            win.unlock_all()
            assert np.all(buf == 7.25)
            snap = clampi.stats(win).snapshot()
            assert snap["evictions"] > 0
            assert snap["recovered_gets"] == 1
            return True

        assert _run(program) == [True, None, True]

    def test_explicit_invalidate_drops_pinned(self):
        def program(mpi):
            cfg = clampi.Config(
                index_entries=32,
                storage_bytes=4096,
                mode=clampi.Mode.ALWAYS_CACHE,
                recovery="serve-stale",
            )
            win = clampi.window_allocate(mpi.comm_world, 64, config=cfg)
            if mpi.rank == VICTIM:
                _fill_and_die(mpi, win)
                return None
            recovery.barrier(mpi.comm_world)
            buf = np.zeros(4)
            win.lock_all()
            win.get(buf, VICTIM, 0)
            win.flush(VICTIM)
            mpi.compute(2e-2)
            win.get(buf, VICTIM, 0)  # recovered once
            win.flush(VICTIM)
            clampi.invalidate(win)  # user said drop everything: pins too
            with pytest.raises(TargetFailedError):
                win.get(buf, VICTIM, 0)
            win.unlock_all()
            return True

        assert _run(program) == [True, None, True]


class TestInvalidateMode:
    def test_entries_dropped_and_gets_fail(self):
        def program(mpi):
            cfg = clampi.Config(
                index_entries=32,
                storage_bytes=4096,
                mode=clampi.Mode.ALWAYS_CACHE,
                recovery="invalidate",
            )
            win = clampi.window_allocate(mpi.comm_world, 64, config=cfg)
            if mpi.rank == VICTIM:
                _fill_and_die(mpi, win)
                return None
            recovery.barrier(mpi.comm_world)
            buf = np.zeros(4)
            win.lock_all()
            win.get(buf, VICTIM, 0)
            win.flush(VICTIM)
            mpi.compute(2e-2)
            with pytest.raises(TargetFailedError):
                win.get(buf, VICTIM, 0)  # the cached copy was dropped
            win.unlock_all()
            return clampi.stats(win).snapshot()

        for snap in filter(None, _run(program)):
            assert snap["rank_failures"] == 1
            assert snap["recovery_dropped"] == 1
            assert snap["recovery_pinned"] == 0
            assert snap["failed_target_gets"] == 1
            assert snap["recovered_gets"] == 0


class TestConfigChannels:
    def test_schema_v4_counters_present(self):
        def program(mpi):
            win = clampi.window_allocate(mpi.comm_world, 64)
            return clampi.stats(win).snapshot()

        snap = SimMPI(nprocs=2).run(program)[0]
        assert snap["schema_version"] == 4
        for key in (
            "rank_failures",
            "failed_target_gets",
            "recovered_gets",
            "recovery_pinned",
            "recovery_dropped",
        ):
            assert snap[key] == 0

    def test_default_mode_is_invalidate(self):
        assert clampi.Config(index_entries=8, storage_bytes=512).recovery == (
            "invalidate"
        )

    def test_recovery_kwarg_and_info_channels(self):
        def program(mpi):
            by_kwarg = clampi.window_allocate(
                mpi.comm_world, 64, recovery="serve-stale"
            )
            by_info = clampi.window_allocate(
                mpi.comm_world, 64, info={clampi.INFO_RECOVERY_KEY: "serve-stale"}
            )
            # info wins over the kwarg, mirroring mode/policy resolution
            both = clampi.window_allocate(
                mpi.comm_world,
                64,
                recovery="serve-stale",
                info={clampi.INFO_RECOVERY_KEY: "invalidate"},
            )
            return (
                by_kwarg.recovery_mode,
                by_info.recovery_mode,
                both.recovery_mode,
            )

        results = SimMPI(nprocs=2).run(program)
        assert results[0] == ("serve-stale", "serve-stale", "invalidate")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="recovery"):
            clampi.Config(index_entries=8, storage_bytes=512, recovery="undo")
