"""White-box tests for rarely-taken paths: conflict fallbacks, pending-only
conflicts, fence through the cache, freeing, CLI entry points."""

import numpy as np
import pytest

from repro import clampi
from repro.mpi import SimMPI
from repro.util import KiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestConflictFallbacks:
    def test_conflict_with_all_pending_path(self):
        """A cuckoo cycle whose insertion path holds only PENDING entries:
        nothing is evictable, the homeless entry is dropped, yet data stays
        correct and the structures stay consistent."""

        def program(m):
            cfg = clampi.Config(
                index_entries=4, num_hashes=2, max_insert_iterations=4,
                storage_bytes=64 * KiB,
            )
            win = clampi.window_allocate(
                m.comm_world, 64 * KiB, mode=clampi.Mode.ALWAYS_CACHE, config=cfg
            )
            win.local_view(np.uint8)[:] = (np.arange(64 * KiB) % 251).astype(np.uint8)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            expected = (np.arange(64 * KiB) % 251).astype(np.uint8)
            win.lock_all()
            bufs = []
            # issue many gets in ONE epoch: every inserted entry stays
            # PENDING, so conflict eviction has no CACHED victim
            for i in range(40):
                buf = np.empty(64, np.uint8)
                win.get(buf, 1, i * 64)
                bufs.append((i, buf))
            win.flush(1)
            win.check_invariants()
            for i, buf in bufs:
                assert np.array_equal(buf, expected[i * 64 : i * 64 + 64]), i
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["gets"] == 40
        # with 4 slots, most inserts fail without an evictable victim
        assert s["failing"] > 0

    def test_single_slot_index(self):
        def program(m):
            cfg = clampi.Config(index_entries=1, storage_bytes=64 * KiB)
            win = clampi.window_allocate(
                m.comm_world, 16 * KiB, mode=clampi.Mode.ALWAYS_CACHE, config=cfg
            )
            win.local_view(np.uint8)[:] = (np.arange(16 * KiB) % 251).astype(np.uint8)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            expected = (np.arange(16 * KiB) % 251).astype(np.uint8)
            win.lock_all()
            buf = np.empty(64, np.uint8)
            for i in range(20):
                win.get_blocking(buf, 1, (i % 5) * 64)
                assert np.array_equal(buf, expected[(i % 5) * 64 :][:64])
            win.check_invariants()
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        assert results[0]["gets"] == 20


class TestMoreCacheSemantics:
    def test_fence_closes_epoch_through_cache(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world, 1024, mode=clampi.Mode.TRANSPARENT
            )
            win.local_view(np.uint8)[:] = m.rank + 1
            m.comm_world.barrier()
            win.fence()
            buf = np.empty(64, np.uint8)
            peer = (m.rank + 1) % m.size
            # active-target epoch: get between fences
            win.raw.lock_all()  # simulate access epoch via passive for gets
            win.get_blocking(buf, peer, 0)
            win.unlock_all()
            assert np.all(buf == peer + 1)
            return win.eph

        results, _ = run(2, program)
        assert all(e >= 2 for e in results)

    def test_free_through_cache(self):
        from repro.mpi import WindowError
        from repro.runtime import RankFailedError

        def program(m):
            win = clampi.window_allocate(m.comm_world, 256)
            win.free()
            win.lock_all()  # must fail: window freed

        with pytest.raises(RankFailedError) as ei:
            run(2, program)
        assert isinstance(ei.value.original, WindowError)

    def test_partial_hit_when_storage_cannot_extend(self):
        """Extension fails (storage full): the old smaller entry survives
        and keeps serving; the bigger get is still correct."""

        def program(m):
            cfg = clampi.Config(index_entries=64, storage_bytes=1 * KiB)
            win = clampi.window_allocate(
                m.comm_world, 16 * KiB, mode=clampi.Mode.ALWAYS_CACHE, config=cfg
            )
            win.local_view(np.uint8)[:] = (np.arange(16 * KiB) % 251).astype(np.uint8)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            expected = (np.arange(16 * KiB) % 251).astype(np.uint8)
            small = np.empty(512, np.uint8)
            big = np.empty(8 * KiB, np.uint8)  # larger than all of S_w
            win.lock_all()
            win.get_blocking(small, 1, 0)
            win.get_blocking(big, 1, 0)  # partial hit, extension impossible
            assert np.array_equal(big, expected[: 8 * KiB])
            win.get_blocking(small, 1, 0)  # old entry still serves
            assert np.array_equal(small, expected[:512])
            win.check_invariants()
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["hit_partial"] == 1
        assert s["hit_full"] == 1


class TestStatsHelpers:
    def test_nondefault_confidence_bisection(self):
        from repro.util import confidence_interval_median

        samples = sorted(float(i) for i in range(101))
        lo80, hi80 = confidence_interval_median(samples, confidence=0.80)
        lo99, hi99 = confidence_interval_median(samples, confidence=0.99)
        assert (hi80 - lo80) < (hi99 - lo99)

    def test_subcommunicators_rejected(self):
        from repro.mpi.comm import Communicator
        from repro.runtime import RankFailedError

        def program(m):
            Communicator(m.proc, m.perf, ranks=[0])

        with pytest.raises(RankFailedError):
            run(2, program)


class TestCLIs:
    def test_apps_cli_lcc(self, capsys):
        from repro.apps.__main__ import main

        rc = main(["lcc", "--scale", "6", "--procs", "2", "--cache", "clampi"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hit ratio" in out

    def test_apps_cli_bh_none(self, capsys):
        from repro.apps.__main__ import main

        rc = main(["bh", "--bodies", "64", "--procs", "2", "--cache", "none"])
        assert rc == 0
        assert "time/body" in capsys.readouterr().out

    def test_apps_cli_bfs_trace(self, capsys):
        from repro.apps.__main__ import main

        rc = main(
            ["bfs", "--scale", "6", "--procs", "2", "--cache", "adaptive", "--trace"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "advisor recommendation" in out

    def test_bench_cli_unknown_figure(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
