"""ULFM-style failure handling at the MPI layer.

Crash-stop failures surface to RMA users in three ways (docs/resilience.md):
ops targeting a dead rank fail fast with ``TargetFailedError`` (raised by
the ``Recovery`` interceptor before any cost is charged), a revoked window
refuses every op with ``WindowRevokedError``, and the survivors rebuild via
``agree_failures``/``shrink`` — looped through the :mod:`repro.recovery`
helpers, which own the ``RankRevokedError`` retry pattern (ANL008).
"""

import numpy as np
import pytest

from repro import recovery
from repro.faults import FaultPlan, FaultRule
from repro.mpi import SimMPI, Window
from repro.mpi.errors import TargetFailedError, WindowRevokedError


def _crash_plan(victim: int, t_start: float) -> FaultPlan:
    return FaultPlan.of(
        FaultRule("crash", probability=1.0, ranks=(victim,), t_start=t_start),
        seed=1,
    )


class TestTargetFailedFastFail:
    def test_ops_to_dead_target_fail_fast(self):
        plan = _crash_plan(victim=1, t_start=1e-2)

        def program(mpi):
            win = Window.allocate(mpi.comm_world, 256)
            recovery.barrier(mpi.comm_world)
            if mpi.rank == 1:
                mpi.compute(1.0)  # dies at t=1e-2 on the way
                return None
            mpi.compute(2e-2)  # move causally past the victim's death
            assert mpi.comm_world.failed_ranks == frozenset({1})
            with pytest.raises(TargetFailedError):
                win.lock(1)  # lock epoch to a dead target: refused
            win.lock_all()
            buf = np.zeros(4)
            t0 = mpi.time
            with pytest.raises(TargetFailedError) as ei:
                win.get(buf, 1, 0)
            assert ei.value.target == 1
            with pytest.raises(TargetFailedError):
                win.put(buf, 1, 0)
            # Fail-fast means fail-free: no virtual time was charged.
            assert mpi.time == t0
            # Completion syncs naming the dead target pass through — a
            # serve-stale cache hit still completes its epoch.
            win.flush(1)
            # Ops between survivors are unaffected.
            peer = 2 if mpi.rank == 0 else 0
            win.get(buf, peer, 0)
            win.flush(peer)
            win.unlock_all()
            return True

        mpi = SimMPI(nprocs=3, faults=plan)
        assert mpi.run(program) == [True, None, True]
        assert mpi.crashed == frozenset({1})


class TestWindowRevocation:
    def test_revoked_window_refuses_ops(self):
        def program(mpi):
            win = Window.allocate(mpi.comm_world, 64)
            mpi.comm_world.barrier()
            win.lock_all()
            buf = np.zeros(2)
            win.get(buf, (mpi.rank + 1) % mpi.size, 0)  # pre-revoke: fine
            win.flush_all()
            mpi.comm_world.barrier()  # everyone past the pre-revoke ops
            if mpi.rank == 0:
                win.revoke()  # non-collective, shared flag
            mpi.comm_world.barrier()
            assert win.revoked
            with pytest.raises(WindowRevokedError):
                win.get(buf, (mpi.rank + 1) % mpi.size, 0)
            with pytest.raises(WindowRevokedError):
                win.flush_all()
            return True

        assert SimMPI(nprocs=2).run(program) == [True, True]

    def test_revoke_is_idempotent(self):
        def program(mpi):
            win = Window.allocate(mpi.comm_world, 64)
            mpi.comm_world.barrier()
            win.revoke()
            win.revoke()
            return win.revoked

        assert SimMPI(nprocs=2).run(program) == [True, True]


class TestAgreementAndShrink:
    def test_agree_shrink_and_continue_on_survivors(self):
        plan = _crash_plan(victim=1, t_start=1e-2)

        def program(mpi):
            comm = mpi.comm_world
            win = Window.allocate(comm, 8)
            win.local_view(np.float64)[:] = float(mpi.rank)
            recovery.barrier(comm)
            if mpi.rank == 1:
                mpi.compute(1.0)
                return None
            mpi.compute(2e-2)
            assert recovery.failed_ranks(comm) == frozenset({1})
            assert recovery.agree_failures(comm) == frozenset({1})
            assert recovery.survivors(comm) == (0, 2)
            new_win = recovery.shrink_window(win)
            assert win.revoked  # the old window was revoked on the way
            assert set(new_win.comm.ranks) == {0, 2}
            # Survivors keep their world numbering on the shrunk window.
            peer = 2 if mpi.rank == 0 else 0
            buf = np.zeros(1)
            new_win.lock_all()
            new_win.get(buf, peer, 0)
            new_win.flush(peer)
            new_win.unlock_all()
            assert buf[0] == float(peer)
            return True

        mpi = SimMPI(nprocs=3, faults=plan)
        assert mpi.run(program) == [True, None, True]

    def test_shrunk_comm_rejects_dead_member(self):
        plan = _crash_plan(victim=2, t_start=1e-2)

        def program(mpi):
            comm = mpi.comm_world
            recovery.barrier(comm)
            if mpi.rank == 2:
                mpi.compute(1.0)
                return None
            mpi.compute(2e-2)
            new_comm = recovery.shrink(comm)
            assert new_comm.ranks == (0, 1)
            assert not new_comm.contains(2)
            assert new_comm.allreduce(1) == 2  # collectives span survivors
            return True

        assert SimMPI(nprocs=3, faults=plan).run(program) == [True, True, None]


class TestRecoveryHelpers:
    def test_completed_reports_revocation(self):
        plan = _crash_plan(victim=1, t_start=1e-2)

        def program(mpi):
            comm = mpi.comm_world
            recovery.barrier(comm)
            if mpi.rank == 1:
                mpi.compute(1.0)
                return None
            # First post-crash sync is revoked exactly once; completed()
            # absorbs it, the retry then spans only the survivors.
            first = recovery.completed(comm.barrier)
            second = recovery.completed(comm.barrier)
            return (first, second)

        results = SimMPI(nprocs=3, faults=plan).run(program)
        assert results[0] == (False, True)
        assert results[2] == (False, True)
