"""Unit tests for repro.faults: plans, rules, injectors, retry policies."""

import math

import pytest

from repro.faults import (
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    make_injectors,
)
from repro.mpi.errors import FaultError, StorageFault


class TestFaultRule:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown fault op"):
            FaultRule("teleport")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultRule("get", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule("get", probability=-0.1)

    def test_invalid_time_window(self):
        with pytest.raises(ValueError):
            FaultRule("get", t_start=5.0, t_end=1.0)
        with pytest.raises(ValueError):
            FaultRule("get", t_start=-1.0)

    def test_jitter_needs_stall(self):
        with pytest.raises(ValueError, match="jitter"):
            FaultRule("jitter")
        FaultRule("jitter", stall=1e-6)  # ok
        FaultRule("jitter", stall_factor=0.5)  # ok

    def test_filters_are_frozen(self):
        r = FaultRule("get", ranks=[1, 2], targets={0})
        assert r.ranks == frozenset({1, 2})
        assert r.targets == frozenset({0})

    def test_matches_site_filters(self):
        r = FaultRule("get", ranks={1}, targets={2}, t_start=1.0, t_end=2.0)
        assert r.matches("get", 1, 2, 1.5)
        assert not r.matches("put", 1, 2, 1.5)       # wrong op
        assert not r.matches("get", 0, 2, 1.5)       # wrong source
        assert not r.matches("get", 1, 3, 1.5)       # wrong target
        assert not r.matches("get", 1, 2, 0.5)       # before window
        assert not r.matches("get", 1, 2, 2.0)       # t_end exclusive

    def test_none_target_matches_any_filter(self):
        """flush_all / alloc sites have no single target."""
        r = FaultRule("flush", targets={3})
        assert r.matches("flush", 0, None, 0.0)


class TestFaultPlan:
    def test_of_and_with_rules(self):
        p = FaultPlan.of(FaultRule("get"), seed=9)
        q = p.with_rules(FaultRule("flush"))
        assert p.seed == q.seed == 9
        assert len(p.rules) == 1 and len(q.rules) == 2
        assert q.rules_for("flush") == (q.rules[1],)

    def test_transient_gets_constructor(self):
        p = FaultPlan.transient_gets(0.05, seed=3, ranks=[0], targets=[1])
        (r,) = p.rules
        assert r.op == "get" and r.probability == 0.05
        assert r.ranks == frozenset({0}) and r.targets == frozenset({1})


class TestFaultInjector:
    def _inj(self, plan, rank=0, t=0.0):
        return FaultInjector(plan, rank, lambda: t)

    def test_deterministic_across_instances(self):
        plan = FaultPlan.transient_gets(0.3, seed=7)
        a = self._inj(plan)
        b = self._inj(plan)
        seq_a = [a.fire("get", 1) is not None for _ in range(200)]
        seq_b = [b.fire("get", 1) is not None for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_streams_differ_by_rank_and_op(self):
        plan = FaultPlan.of(
            FaultRule("get", probability=0.5),
            FaultRule("put", probability=0.5),
            seed=1,
        )
        r0 = [self._inj(plan, rank=0).fire("get", 1) is not None for _ in range(64)]
        r1 = [self._inj(plan, rank=1).fire("get", 1) is not None for _ in range(64)]
        assert r0 != r1
        inj = self._inj(plan)
        gets = [inj.fire("get", 1) is not None for _ in range(64)]
        puts = [inj.fire("put", 1) is not None for _ in range(64)]
        assert gets != puts

    def test_draws_only_consumed_by_matching_rules(self):
        """A time-gated rule outside its window must not consume draws."""
        gated = FaultPlan.of(
            FaultRule("get", probability=0.5, t_start=100.0), seed=5
        )
        open_ = FaultPlan.of(FaultRule("get", probability=0.5), seed=5)
        gi = self._inj(gated, t=0.0)
        oi = self._inj(open_, t=0.0)
        assert all(gi.fire("get", 1) is None for _ in range(32))
        # The gated stream is untouched: firing later replays the open one.
        gi._clock = lambda: 200.0
        late = [gi.fire("get", 1) is not None for _ in range(32)]
        fresh = [oi.fire("get", 1) is not None for _ in range(32)]
        assert late == fresh

    def test_injected_and_consulted_counters(self):
        plan = FaultPlan.transient_gets(1.0, seed=0)
        inj = self._inj(plan)
        for _ in range(5):
            inj.fire("get", 1)
        inj.fire("put", 1)  # no rule: not even consulted
        assert inj.consulted == {"get": 5}
        assert inj.injected == {"get": 5}
        assert inj.total_injected == 5

    def test_stall_for_sums_matching_rules(self):
        plan = FaultPlan.of(
            FaultRule("jitter", probability=1.0, stall=1e-6),
            FaultRule("jitter", probability=1.0, stall_factor=0.5),
            seed=2,
        )
        inj = self._inj(plan)
        assert inj.stall_for(1, 2e-6) == pytest.approx(1e-6 + 1e-6)
        assert inj.injected["jitter"] == 1

    def test_storage_hook_raises_storage_fault(self):
        inj = self._inj(FaultPlan.of(FaultRule("alloc", probability=1.0), seed=0))
        with pytest.raises(StorageFault) as ei:
            inj.storage_hook(4096)
        assert isinstance(ei.value, FaultError)
        quiet = self._inj(FaultPlan.of(seed=0))
        quiet.storage_hook(4096)  # no rule, no raise

    def test_make_injectors(self):
        plan = FaultPlan.of(seed=0)
        injs = make_injectors(plan, 3, [lambda: 0.0] * 3)
        assert [i.rank for i in injs] == [0, 1, 2]
        with pytest.raises(ValueError):
            make_injectors(plan, 3, [lambda: 0.0] * 2)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(op_timeout=0.0)

    def test_disabled(self):
        p = RetryPolicy.disabled()
        assert p.max_attempts == 1 and not p.enabled
        assert DEFAULT_RETRY_POLICY.enabled

    def test_delay_exponential_and_capped(self):
        p = RetryPolicy(base_delay=1e-6, multiplier=2.0, max_delay=5e-6, jitter=0.0)
        assert p.delay(1) == pytest.approx(1e-6)
        assert p.delay(2) == pytest.approx(2e-6)
        assert p.delay(3) == pytest.approx(4e-6)
        assert p.delay(4) == pytest.approx(5e-6)  # capped
        assert p.delay(20) == pytest.approx(5e-6)

    def test_delay_jitter_bounds(self):
        p = RetryPolicy(base_delay=1e-6, jitter=0.25)
        lo = p.delay(1, u=0.0)
        mid = p.delay(1, u=0.5)
        hi = p.delay(1, u=1.0)
        assert lo == pytest.approx(0.75e-6)
        assert mid == pytest.approx(1e-6)
        assert hi == pytest.approx(1.25e-6)
        assert all(math.isfinite(x) and x > 0 for x in (lo, mid, hi))

    def test_with_timeout(self):
        p = RetryPolicy().with_timeout(1e-3)
        assert p.op_timeout == 1e-3


class TestCrashRules:
    def test_crash_needs_finite_t_start(self):
        with pytest.raises(ValueError, match="finite t_start"):
            FaultRule("crash", probability=1.0, ranks=(1,), t_start=math.inf)

    def test_crash_rejects_target_filter(self):
        with pytest.raises(ValueError, match="cannot filter"):
            FaultRule("crash", probability=1.0, ranks=(1,), targets=(0,), t_start=1e-3)

    def test_crash_rejects_stall(self):
        with pytest.raises(ValueError, match="meaningless for crash"):
            FaultRule("crash", probability=1.0, ranks=(1,), t_start=1e-3, stall=1e-6)

    def test_overlapping_crash_rules_rejected(self):
        a = FaultRule("crash", probability=1.0, ranks=(1, 2), t_start=1e-3)
        b = FaultRule("crash", probability=0.5, ranks=(2, 3), t_start=2e-3)
        with pytest.raises(ValueError, match="overlapping crash rules"):
            FaultPlan.of(a, b)

    def test_unscoped_crash_rule_overlaps_everything(self):
        a = FaultRule("crash", probability=0.1, t_start=1e-3)  # all ranks
        b = FaultRule("crash", probability=1.0, ranks=(5,), t_start=2e-3)
        with pytest.raises(ValueError, match="all ranks"):
            FaultPlan.of(a, b)

    def test_disjoint_crash_rules_allowed(self):
        a = FaultRule("crash", probability=1.0, ranks=(1,), t_start=1e-3)
        b = FaultRule("crash", probability=1.0, ranks=(2,), t_start=2e-3)
        plan = FaultPlan.of(a, b)
        assert plan.crash_times(4) == {1: 1e-3, 2: 2e-3}

    def test_crash_times_certain_and_scoped(self):
        plan = FaultPlan.of(
            FaultRule("crash", probability=1.0, ranks=(2,), t_start=5e-4), seed=9
        )
        assert plan.crash_times(4) == {2: 5e-4}
        assert plan.crash_times(2) == {}  # victim outside the job

    def test_crash_times_deterministic_across_instances(self):
        mk = lambda: FaultPlan.of(  # noqa: E731
            FaultRule("crash", probability=0.5, t_start=1e-3), seed=11
        )
        assert mk().crash_times(16) == mk().crash_times(16)

    def test_no_crash_rules_no_times(self):
        assert FaultPlan.of(FaultRule("get", probability=0.1)).crash_times(8) == {}
